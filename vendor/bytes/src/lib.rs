//! Offline vendored subset of the `bytes` crate: a growable byte buffer
//! ([`BytesMut`]) and the big-endian `put_*` writer methods of [`BufMut`],
//! implemented over `Vec<u8>`. Only the surface this workspace's wire
//! encoding uses is provided.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Trait for buffers that accept appended primitive values.
///
/// All multi-byte writes are big-endian, matching the `bytes` crate's
/// default `put_u32`/`put_f32` behavior.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A unique, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer, returning the underlying bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32(3);
        buf.put_f32(1.5);
        assert_eq!(&buf[..4], &[0, 0, 0, 3]);
        assert_eq!(&buf[4..], 1.5f32.to_be_bytes());
        assert_eq!(buf.len(), 8);
    }
}
