//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] with the 0.9 method names
//!   (`random`, `random_range`, `random_bool`),
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (matching `seed_from_u64`'s contract: same seed, same
//!   stream — but *not* bit-compatible with upstream `StdRng`),
//! - [`seq::SliceRandom`] (Fisher–Yates `shuffle`) and
//!   [`seq::IndexedRandom`] (`choose`, `choose_multiple`).
//!
//! Everything is deterministic and reproducible; nothing here is suitable
//! for cryptography.

#![forbid(unsafe_code)]

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 so
    /// that low-entropy seeds still produce well-mixed states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an `RngCore`
/// (the `StandardUniform` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 bits of mantissa → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 bits of mantissa → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Ranges that can produce a uniform sample (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (floats uniform in `[0, 1)`, integers over the full domain).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (which is
    /// ChaCha12), but offers the same contract the workspace relies on:
    /// identical seeds yield identical streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for call sites that ask for a small fast generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers (`shuffle`, `choose`, `choose_multiple`).
pub mod seq {
    use super::Rng;

    /// Mutating slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Non-mutating random selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Item;

        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements (all of them if
        /// `amount >= len`), in random order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> impl Iterator<Item = &Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> impl Iterator<Item = &T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots are a uniform
            // sample without replacement.
            for i in 0..amount {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices.into_iter().map(move |i| &self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let f: f32 = r.random_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: i64 = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = r.random::<f32>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut r = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut r, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "sample must be without replacement");
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }
}
