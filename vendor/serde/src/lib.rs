//! Offline vendored skeleton of the `serde` trait system.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serializes data (there is no `serde_json`/`bincode`
//! backend anywhere); the crates only *derive* `Serialize`/`Deserialize`
//! so their types stay serialization-ready. This stub keeps those derives
//! and any hand-written impls compiling with the real `serde` signatures.
//! Attempting to drive a real serialization through it returns an error
//! from the stub derive impls rather than producing data.

#![forbid(unsafe_code)]

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error plumbing.
pub mod ser {
    use super::Display;

    /// Error type constructible from a message, as in real `serde`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error plumbing.
pub mod de {
    use super::Display;

    /// Error type constructible from a message, as in real `serde`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize values (stub: shape only).
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;
}

/// A data format that can deserialize values (stub: shape only).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;
}

/// A value serializable into any supported format.
pub trait Serialize {
    /// Serializes `self` with `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value deserializable from any supported format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}
