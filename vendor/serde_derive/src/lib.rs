//! Offline vendored stub of `serde_derive`.
//!
//! Emits trait impls whose bodies error at runtime instead of real
//! serialization code. The workspace never drives a serialization backend
//! (no `serde_json`/`bincode` anywhere), so the derives only need to make
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes
//! compile. Works without `syn`/`quote`: it only extracts the type name,
//! which is sufficient because no deriving type in this workspace is
//! generic.

use proc_macro::TokenStream;

/// Extracts the type identifier from a `struct`/`enum` definition,
/// skipping attributes and visibility modifiers.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(ident) = &tt {
            let s = ident.to_string();
            if s == "struct" || s == "enum" {
                for next in tokens.by_ref() {
                    if let proc_macro::TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name in derive input");
}

/// Stub `#[derive(Serialize)]`: the impl exists so bounds and method
/// resolution work, but serializing through it returns an error.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 Err(<S::Error as serde::ser::Error>::custom(\n\
                     \"vendored serde stub: no serialization backend is available offline\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// Stub `#[derive(Deserialize)]`: mirror of the `Serialize` stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {{\n\
                 Err(<D::Error as serde::de::Error>::custom(\n\
                     \"vendored serde stub: no serialization backend is available offline\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}
