//! Offline vendored minimal bench harness with criterion's API shape.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `Throughput` and the `criterion_group!`/`criterion_main!` macros so the
//! workspace's benches compile and run without crates.io access. Each
//! benchmark runs a short calibrated loop and prints mean wall-clock time
//! per iteration — useful for coarse comparisons, without criterion's
//! statistical machinery.

// Vendored bench harness: wall-clock timing is the measurement itself.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Label for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value, criterion-style `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation; accepted and echoed, not analyzed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes in decimal units.
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` in a calibrated loop and records mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then enough iterations to fill a small
        // but non-trivial measurement window.
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                self.elapsed = elapsed;
                self.iters = iters;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("bench {label:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "bench {label:<50} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            self.iters
        );
    }
}

/// Top-level bench context, one per `criterion_group!` function list.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.label);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub harness self-calibrates.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
