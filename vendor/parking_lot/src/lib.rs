//! Offline vendored facade over `std::sync` with `parking_lot`'s
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! instead of `Result`s. Poisoned std locks (a holder panicked) are
//! recovered transparently, matching `parking_lot`'s behavior of never
//! poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
