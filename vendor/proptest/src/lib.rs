//! Offline vendored miniature property-testing engine.
//!
//! Implements the `proptest` macro surface this workspace uses —
//! `proptest! { #[test] fn f(x in strategy, ...) { ... } }`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `ProptestConfig`,
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, and [`collection::vec`] — on top of the vendored
//! deterministic `rand`.
//!
//! Differences from real proptest, deliberate for an offline build:
//! inputs are drawn from a per-test seed derived from the test's fully
//! qualified name (fully deterministic across runs and machines), and
//! failing cases are reported with their case number but not shrunk.

// Vendored test harness: PROPTEST_CASES is deliberate ambient
// configuration (CI raises it for the determinism suites).
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Per-test configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Derives a stable 64-bit seed from a test's fully qualified name.
/// (FNV-1a: no std hasher is guaranteed stable across releases.)
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RNG for one case of one property test.
pub fn case_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Resolves the case count for one property: the `PROPTEST_CASES`
/// environment variable overrides the per-test configuration, mirroring
/// real proptest's behaviour so CI can crank the count up without touching
/// source (unparsable values fall back to the configured count).
pub fn cases_from_env(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(configured)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, Strategy};

    /// Length specification for [`vec()`](fn@vec): an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut super::StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                (self.size.lo..self.size.hi_exclusive).sample_single(rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, test_seed,
        Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (The body of each case runs in its own closure, so `return` exits just
/// the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..$crate::cases_from_env(__cfg.cases) {
                let mut __rng = $crate::case_rng(__seed, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run_case = move || $body;
                __run_case();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Mapped and flat-mapped strategies compose.
        #[test]
        fn combinators_compose(v in (1usize..5).prop_flat_map(|n| collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn env_override_parses_or_falls_back() {
        // The env var is process-global, so exercise the parsing helper on
        // the fallback path only (CI sets the variable for whole jobs).
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => {
                let expected = v.trim().parse().unwrap_or(7);
                assert_eq!(crate::cases_from_env(7), expected);
            }
            Err(_) => assert_eq!(crate::cases_from_env(7), 7),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let seed = test_seed("some::test");
        let a: u32 = Strategy::generate(&(0u32..1000), &mut case_rng(seed, 3));
        let b: u32 = Strategy::generate(&(0u32..1000), &mut case_rng(seed, 3));
        assert_eq!(a, b);
    }
}
