//! Message-passing implementation of the search protocol on the
//! discrete-event simulator.
//!
//! [`crate::walk`] executes the paper's node operations in-process; this
//! module runs the *same* protocol as real messages over
//! [`gdsearch_sim::Network`], including the response backtracking of §IV-C
//! ("when their TTL expires, a response message is returned to the querying
//! nodes via backtracking"). It exists to demonstrate the scheme end to end
//! under latency, loss and churn, and to pin the fast path's semantics: for
//! the deterministic greedy policy both implementations visit the same
//! nodes (see the workspace integration tests).
//!
//! Message bookkeeping: every query hop is a fresh message id; each node
//! records, per received query message, who sent it and which child
//! messages it spawned. Responses reference the message id they answer, so
//! results merge hop by hop back to the origin. Only direct neighbors ever
//! learn of each other — matching the paper's privacy argument for keeping
//! visited-node memory at nodes instead of inside messages.
//!
//! Loss and churn caveat: a lost query or response message orphans its
//! subtree, so the origin never sees a completion for that query (a real
//! deployment would add timeouts). Under loss, drive the network with
//! [`gdsearch_sim::Network::run_until`] and read partial state.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gdsearch_diffusion::Signal;
use gdsearch_embed::topk::TopK;
use gdsearch_embed::Embedding;
use gdsearch_graph::{Graph, NodeId};
use gdsearch_sim::trace::Trace;
use gdsearch_sim::{
    NetStats, Network, NetworkConfig, NodeApi, NodeHandler, Reactor, SimError, TransportConfig,
    WireMessage,
};

use crate::forwarding::{self, ForwardContext};
use crate::{DocId, PolicyKind, SearchError, SearchNetwork};

/// A query or response message of the search protocol.
#[derive(Debug, Clone)]
pub enum SearchMessage {
    /// A forwarded query (paper Fig. 1 input).
    Query {
        /// Query identifier (unique per issued query).
        query_id: u64,
        /// Unique id of this hop's message.
        msg_id: u64,
        /// The query embedding.
        embedding: Embedding,
        /// Remaining hops.
        ttl: u32,
        /// Hops taken so far.
        hop: u32,
    },
    /// A backtracking response carrying gathered results.
    Response {
        /// Query identifier.
        query_id: u64,
        /// The query message this answers.
        answers_msg: u64,
        /// Results gathered in the answered subtree:
        /// `(doc, score, found-at-hop)`.
        results: Vec<(DocId, f32, u32)>,
    },
}

impl WireMessage for SearchMessage {
    fn wire_size(&self) -> usize {
        match self {
            // query_id + msg_id (16) + ttl + hop (8) + length-prefixed f32s.
            SearchMessage::Query { embedding, .. } => 24 + 4 + 4 * embedding.dim(),
            // query_id + answers_msg (16) + count (4) + triples (4+4+4 each).
            SearchMessage::Response { results, .. } => 20 + 12 * results.len(),
        }
    }
}

/// Per-message state a node keeps while the subtree below it is still
/// being explored.
#[derive(Debug)]
struct PendingMessage {
    /// Who sent this query message (`None` at the origin).
    from: Option<NodeId>,
    /// Child messages still owed a response.
    pending_children: usize,
    /// Results merged so far (own documents + children's responses).
    gathered: Vec<(DocId, f32, u32)>,
}

/// Final outcome of a query at its origin node.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedQuery {
    /// The query id.
    pub query_id: u64,
    /// Results merged from the whole walk tree, best-first, truncated to
    /// the configured top-k: `(doc, score, found-at-hop)`.
    pub results: Vec<(DocId, f32, u32)>,
}

/// Node handler implementing the paper's protocol (Fig. 1) over the
/// simulator.
#[derive(Debug)]
pub struct SearchNode {
    node: NodeId,
    /// Local documents: `(doc id, embedding)`.
    docs: Vec<(DocId, Embedding)>,
    /// Diffused embeddings — stands in for the neighbor embeddings every
    /// node stores after diffusion (§IV-B: nodes keep "track of the
    /// embeddings of the one-hop neighbors"). A node only ever reads its
    /// neighbors' rows.
    embeddings: Arc<Signal>,
    graph: Arc<Graph>,
    policy: PolicyKind,
    fanout: usize,
    top_k: usize,
    /// Per-query memory of neighbors exchanged with (received-from ∪
    /// sent-to, §IV-C).
    /// Ordered maps/sets throughout: protocol replay must be bit-identical
    /// across processes, and hash iteration order is seeded per process.
    used: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Response bookkeeping per received query message.
    pending: BTreeMap<u64, PendingMessage>,
    /// Maps child message ids we created to the received message they
    /// continue.
    child_to_parent: BTreeMap<u64, u64>,
    /// Local message counter, combined with the node id for global
    /// uniqueness.
    next_msg: u64,
    /// Queries completed at this node (it was their origin).
    completed: Vec<CompletedQuery>,
}

impl SearchNode {
    /// Queries completed at this node so far.
    pub fn completed(&self) -> &[CompletedQuery] {
        &self.completed
    }

    fn fresh_msg_id(&mut self) -> u64 {
        let id = (u64::from(self.node.as_u32()) << 32) | self.next_msg;
        self.next_msg += 1;
        id
    }

    /// Local retrieval: scores of all local documents for `query`.
    fn local_results(&self, query: &Embedding, hop: u32) -> Vec<(DocId, f32, u32)> {
        self.docs
            .iter()
            .map(|(doc, emb)| {
                let score = gdsearch_embed::similarity::dot(query, emb)
                    .expect("protocol messages carry corpus-dimension embeddings");
                (*doc, score, hop)
            })
            .collect()
    }

    /// If `msg_id` has no outstanding children, responds towards the
    /// origin (or records completion when this node *is* the origin).
    fn settle(&mut self, msg_id: u64, query_id: u64, api: &mut NodeApi<'_, SearchMessage>) {
        let done = matches!(self.pending.get(&msg_id), Some(r) if r.pending_children == 0);
        if !done {
            return;
        }
        let Some(record) = self.pending.remove(&msg_id) else {
            return; // unreachable: `done` implies the entry exists
        };
        match record.from {
            Some(parent) => api.send(
                parent,
                SearchMessage::Response {
                    query_id,
                    answers_msg: msg_id,
                    results: record.gathered,
                },
            ),
            None => {
                // Origin: dedup by document (a revisited host reports its
                // documents once per visit; keep the earliest hop), then
                // fold into the final top-k. BTreeMap keeps tie order
                // deterministic.
                let mut best: std::collections::BTreeMap<DocId, (f32, u32)> =
                    std::collections::BTreeMap::new();
                for (doc, score, hop) in record.gathered {
                    best.entry(doc)
                        .and_modify(|e| e.1 = e.1.min(hop))
                        .or_insert((score, hop));
                }
                let mut top = TopK::new(self.top_k);
                for (doc, (score, hop)) in best {
                    top.push(score, (doc, hop));
                }
                let results = top
                    .into_sorted()
                    .into_iter()
                    .map(|s| (s.item.0, s.score, s.item.1))
                    .collect();
                self.completed.push(CompletedQuery { query_id, results });
                self.used.remove(&query_id);
            }
        }
    }
}

impl NodeHandler<SearchMessage> for SearchNode {
    fn handle(
        &mut self,
        from: Option<NodeId>,
        msg: SearchMessage,
        api: &mut NodeApi<'_, SearchMessage>,
    ) {
        match msg {
            SearchMessage::Query {
                query_id,
                msg_id,
                embedding,
                ttl,
                hop,
            } => {
                // Remember whom we received from (paper §IV-C memory).
                if let Some(p) = from {
                    self.used.entry(query_id).or_default().insert(p);
                }
                // 1. Local retrieval.
                let gathered = self.local_results(&embedding, hop);
                // 2-4. TTL check, candidate filtering, policy decision.
                let mut targets: Vec<NodeId> = Vec::new();
                if ttl > 0 {
                    let neighbors = self.graph.neighbor_slice(self.node);
                    if !neighbors.is_empty() {
                        let used = self.used.entry(query_id).or_default();
                        let fresh: Vec<NodeId> = neighbors
                            .iter()
                            .copied()
                            .filter(|v| !used.contains(v))
                            .collect();
                        // Footnote 9: never waste the forwarding chance.
                        let candidates = if fresh.is_empty() {
                            neighbors.to_vec()
                        } else {
                            fresh
                        };
                        // Fanout applies at the querying node only (hop 0);
                        // relays forward a single copy — see walk.rs.
                        let effective_fanout = if hop == 0 { self.fanout } else { 1 };
                        let ctx = ForwardContext {
                            node: self.node,
                            candidates: &candidates,
                            query: &embedding,
                            node_embeddings: &self.embeddings,
                            graph: &self.graph,
                            fanout: effective_fanout,
                            scores: None,
                        };
                        targets = forwarding::select_next_hops(self.policy, &ctx, api.rng());
                    }
                }
                self.pending.insert(
                    msg_id,
                    PendingMessage {
                        from,
                        pending_children: targets.len(),
                        gathered,
                    },
                );
                for v in targets {
                    self.used.entry(query_id).or_default().insert(v);
                    let child_id = self.fresh_msg_id();
                    self.child_to_parent.insert(child_id, msg_id);
                    api.send(
                        v,
                        SearchMessage::Query {
                            query_id,
                            msg_id: child_id,
                            embedding: embedding.clone(),
                            ttl: ttl - 1,
                            hop: hop + 1,
                        },
                    );
                }
                // Leaf (TTL expired or no forwarding): respond immediately.
                self.settle(msg_id, query_id, api);
            }
            SearchMessage::Response {
                query_id,
                answers_msg,
                results,
            } => {
                let Some(parent_msg) = self.child_to_parent.remove(&answers_msg) else {
                    return; // stale response (e.g. after loss); drop
                };
                if let Some(record) = self.pending.get_mut(&parent_msg) {
                    record.gathered.extend(results);
                    record.pending_children -= 1;
                }
                self.settle(parent_msg, query_id, api);
            }
        }
    }
}

/// Builds the per-node protocol handlers for `network`'s state
/// (documents, diffused embeddings, policy) — shared by both transport
/// backends.
fn make_handlers(network: &SearchNetwork<'_>) -> Vec<SearchNode> {
    let graph = Arc::new(network.graph().clone());
    let embeddings = Arc::new(network.embeddings().clone());
    let config = network.config();
    network
        .graph()
        .node_ids()
        .map(|u| SearchNode {
            node: u,
            docs: network
                .docs_at(u)
                .iter()
                .map(|&d| (d, network.doc_embedding(d).clone()))
                .collect(),
            embeddings: embeddings.clone(),
            graph: graph.clone(),
            policy: config.policy(),
            fanout: config.fanout(),
            top_k: config.top_k(),
            used: BTreeMap::new(),
            pending: BTreeMap::new(),
            child_to_parent: BTreeMap::new(),
            next_msg: 0,
            completed: Vec::new(),
        })
        .collect()
}

/// Builds a simulator [`Network`] whose handlers run the search protocol
/// with the state of `network` (documents, diffused embeddings, policy).
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn build_protocol_network(
    network: &SearchNetwork<'_>,
    sim_config: NetworkConfig,
) -> Result<Network<SearchMessage, SearchNode>, SearchError> {
    let handlers = make_handlers(network);
    Ok(Network::new(network.graph().clone(), handlers, sim_config)?)
}

/// Builds a bandwidth-aware [`Reactor`] whose handlers run the search
/// protocol; messages serialize over bounded finite-bandwidth links
/// (queueing delay, saturation, backpressure drops).
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn build_protocol_reactor(
    network: &SearchNetwork<'_>,
    transport: TransportConfig,
) -> Result<Reactor<SearchMessage, SearchNode>, SearchError> {
    let handlers = make_handlers(network);
    Ok(Reactor::new(network.graph().clone(), handlers, transport)?)
}

/// Which transport backend runs the message-passing protocol.
///
/// The instant event loop is the default everywhere (all hop-count and
/// accuracy experiments are bandwidth-agnostic); pick the bounded reactor
/// to study the regimes the paper's bandwidth argument is about — link
/// saturation, queueing delay and backpressure.
#[derive(Debug, Clone, Default)]
pub enum SimBackend {
    /// Instant delivery over infinitely wide links
    /// ([`gdsearch_sim::Network`]), with optional latency/loss/churn.
    #[default]
    Instant,
    /// As [`SimBackend::Instant`] with an explicit simulator
    /// configuration.
    InstantWith(NetworkConfig),
    /// Bounded finite-bandwidth links ([`gdsearch_sim::Reactor`]); the
    /// [`TransportConfig`] sets bytes/tick, queue bounds and worker
    /// threads.
    Bounded(TransportConfig),
}

/// A protocol network over either transport backend, with a common
/// driving surface — what the bandwidth experiments iterate over.
///
/// # Example
///
/// ```
/// use gdsearch::protocol::{ProtocolNetwork, SimBackend};
/// use gdsearch::{Placement, SchemeConfig, SearchNetwork};
/// use gdsearch_sim::TransportConfig;
/// # use gdsearch_embed::synthetic::SyntheticCorpus;
/// # use gdsearch_graph::generators;
/// # use rand::SeedableRng;
/// # use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut rng = StdRng::seed_from_u64(5);
/// # let graph = generators::social_circles_like_scaled(30, &mut rng)?;
/// # let corpus = SyntheticCorpus::builder().vocab_size(60).dim(8).generate(&mut rng)?;
/// # let words = vec![gdsearch_embed::WordId::new(0)];
/// # let placement = Placement::uniform(&graph, &words, &mut rng)?;
/// # let cfg = SchemeConfig::builder().ttl(5).build()?;
/// # let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng)?;
/// let backend = SimBackend::Bounded(TransportConfig::default().with_bandwidth(1_000)?);
/// let mut net = ProtocolNetwork::build(&scheme, backend)?;
/// let origin = gdsearch_graph::NodeId::new(3);
/// net.issue_query(origin, 1, corpus.embedding(gdsearch_embed::WordId::new(1)).clone(), 5)?;
/// net.run_to_completion(100_000)?;
/// assert_eq!(net.completed(origin)?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub enum ProtocolNetwork {
    /// Instant-delivery event loop.
    Instant(Box<Network<SearchMessage, SearchNode>>),
    /// Bandwidth-aware reactor.
    Bounded(Box<Reactor<SearchMessage, SearchNode>>),
}

impl ProtocolNetwork {
    /// Builds the protocol network over the selected backend.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn build(network: &SearchNetwork<'_>, backend: SimBackend) -> Result<Self, SearchError> {
        Ok(match backend {
            SimBackend::Instant => ProtocolNetwork::Instant(Box::new(build_protocol_network(
                network,
                NetworkConfig::default(),
            )?)),
            SimBackend::InstantWith(cfg) => {
                ProtocolNetwork::Instant(Box::new(build_protocol_network(network, cfg)?))
            }
            SimBackend::Bounded(cfg) => {
                ProtocolNetwork::Bounded(Box::new(build_protocol_reactor(network, cfg)?))
            }
        })
    }

    /// Issues a query at `origin` (see [`issue_query`]).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Sim`] for unknown origins.
    pub fn issue_query(
        &mut self,
        origin: NodeId,
        query_id: u64,
        embedding: Embedding,
        ttl: u32,
    ) -> Result<(), SearchError> {
        let msg_id = self.handler_mut(origin)?.fresh_msg_id();
        let msg = SearchMessage::Query {
            query_id,
            msg_id,
            embedding,
            ttl,
            hop: 0,
        };
        match self {
            ProtocolNetwork::Instant(net) => net.inject(origin, msg)?,
            ProtocolNetwork::Bounded(net) => net.inject(origin, msg)?,
        }
        Ok(())
    }

    /// Drains the network: `budget` counts events on the instant backend
    /// and ticks on the bounded one.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Sim`] on budget exhaustion with work
    /// remaining (e.g. when drops orphaned a walk subtree — inspect
    /// handlers and [`ProtocolNetwork::stats`] in that case).
    pub fn run_to_completion(&mut self, budget: usize) -> Result<(), SearchError> {
        match self {
            ProtocolNetwork::Instant(net) => {
                net.run_to_completion(budget)?;
            }
            ProtocolNetwork::Bounded(net) => {
                net.run_to_completion(budget as u64)?;
            }
        }
        Ok(())
    }

    /// The queries completed at `origin` so far.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Sim`] for unknown origins.
    pub fn completed(&self, origin: NodeId) -> Result<Vec<CompletedQuery>, SearchError> {
        Ok(self.handler(origin)?.completed().to_vec())
    }

    /// Transport statistics so far (the bounded backend additionally
    /// fills the queue-depth/-delay and backpressure fields).
    pub fn stats(&self) -> &NetStats {
        match self {
            ProtocolNetwork::Instant(net) => net.stats(),
            ProtocolNetwork::Bounded(net) => net.stats(),
        }
    }

    /// The transport-event ring buffer (sends, deliveries, drops) both
    /// backends record — drivers convert it into flight-recorder tick
    /// events for Chrome-trace export.
    pub fn trace(&self) -> &Trace {
        match self {
            ProtocolNetwork::Instant(net) => net.trace(),
            ProtocolNetwork::Bounded(net) => net.trace(),
        }
    }

    /// Current virtual time, in seconds (= ticks on the bounded backend).
    pub fn now_secs(&self) -> f64 {
        match self {
            ProtocolNetwork::Instant(net) => net.now().as_secs(),
            ProtocolNetwork::Bounded(net) => net.now().as_secs(),
        }
    }

    /// Shared access to a node's protocol handler.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Sim`] for unknown nodes.
    pub fn handler(&self, node: NodeId) -> Result<&SearchNode, SearchError> {
        Ok(match self {
            ProtocolNetwork::Instant(net) => net.handler(node)?,
            ProtocolNetwork::Bounded(net) => net.handler(node)?,
        })
    }

    /// Mutable access to a node's protocol handler.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Sim`] for unknown nodes.
    pub fn handler_mut(&mut self, node: NodeId) -> Result<&mut SearchNode, SearchError> {
        Ok(match self {
            ProtocolNetwork::Instant(net) => net.handler_mut(node)?,
            ProtocolNetwork::Bounded(net) => net.handler_mut(node)?,
        })
    }
}

/// Issues a query into a protocol network at `origin`.
///
/// # Errors
///
/// Returns [`SearchError::Sim`] for unknown origins.
pub fn issue_query(
    net: &mut Network<SearchMessage, SearchNode>,
    origin: NodeId,
    query_id: u64,
    embedding: Embedding,
    ttl: u32,
) -> Result<(), SearchError> {
    let msg_id = net.handler_mut(origin)?.fresh_msg_id();
    net.inject(
        origin,
        SearchMessage::Query {
            query_id,
            msg_id,
            embedding,
            ttl,
            hop: 0,
        },
    )?;
    Ok(())
}

/// Drains the simulator and returns the queries completed at `origin`.
///
/// # Errors
///
/// Returns [`SearchError::Sim`] on event-budget exhaustion (e.g. when loss
/// orphaned a walk subtree — use [`gdsearch_sim::Network::run_until`] and
/// inspect handlers directly in that case) or for unknown origins.
pub fn run_and_collect(
    net: &mut Network<SearchMessage, SearchNode>,
    origin: NodeId,
    max_events: usize,
) -> Result<Vec<CompletedQuery>, SearchError> {
    net.run_to_completion(max_events).map_err(|e| match e {
        SimError::EventBudgetExhausted { processed } => {
            SearchError::Sim(SimError::EventBudgetExhausted { processed })
        }
        other => SearchError::Sim(other),
    })?;
    Ok(net.handler(origin)?.completed().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placement, SchemeConfig};
    use gdsearch_embed::querygen::{self, QueryGenConfig};
    use gdsearch_embed::synthetic::SyntheticCorpus;
    use gdsearch_embed::Corpus;
    use gdsearch_graph::generators;
    use gdsearch_sim::LatencyModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn corpus(seed: u64) -> Corpus {
        SyntheticCorpus::builder()
            .vocab_size(150)
            .dim(24)
            .num_topics(6)
            .topic_noise(0.4)
            .generate(&mut rng(seed))
            .unwrap()
    }

    #[test]
    fn single_walk_completes_and_finds_adjacent_gold() {
        let mut r = rng(1);
        let g = generators::social_circles_like_scaled(60, &mut r).unwrap();
        let c = corpus(2);
        let queries = querygen::generate(
            &c,
            QueryGenConfig {
                num_queries: 3,
                min_cosine: 0.6,
            },
            &mut r,
        )
        .unwrap();
        assert!(!queries.is_empty());
        let pair = queries.pairs()[0];
        let mut words = vec![pair.gold];
        words.extend(queries.irrelevant().iter().copied().take(4));
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder().ttl(20).build().unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        // Start adjacent to the gold host.
        let host = p.host(0);
        let start = g.neighbor_slice(host)[0];
        let mut net = build_protocol_network(&scheme, NetworkConfig::default()).unwrap();
        issue_query(&mut net, start, 7, c.embedding(pair.query).clone(), 20).unwrap();
        let completed = run_and_collect(&mut net, start, 100_000).unwrap();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].query_id, 7);
        assert!(
            completed[0].results.iter().any(|(d, _, _)| *d == 0),
            "gold one hop away must be retrieved: {:?}",
            completed[0].results
        );
    }

    #[test]
    fn response_backtracks_under_latency() {
        let mut r = rng(3);
        let g = generators::ring(12).unwrap();
        let c = corpus(4);
        let words = vec![gdsearch_embed::WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder().ttl(5).build().unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        let sim_cfg = NetworkConfig::default()
            .with_latency(LatencyModel::constant(0.1).unwrap())
            .with_seed(5);
        let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
        let origin = NodeId::new(3);
        issue_query(
            &mut net,
            origin,
            1,
            c.embedding(gdsearch_embed::WordId::new(1)).clone(),
            5,
        )
        .unwrap();
        let completed = run_and_collect(&mut net, origin, 10_000).unwrap();
        assert_eq!(
            completed.len(),
            1,
            "origin must receive the backtracked response"
        );
        // 5 forwards out + 5 responses back at 0.1s each, plus instant
        // injection: total virtual time 1.0s.
        assert!((net.now().as_secs() - 1.0).abs() < 1e-9);
        // Forward query messages are larger than responses here; count both.
        assert_eq!(net.stats().sent, 10);
    }

    #[test]
    fn fanout_tree_merges_all_branches() {
        let mut r = rng(6);
        let g = generators::complete(8);
        let c = corpus(7);
        let words: Vec<_> = (0..6).map(gdsearch_embed::WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder()
            .ttl(2)
            .fanout(3)
            .top_k(4)
            .build()
            .unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        let mut net = build_protocol_network(&scheme, NetworkConfig::default()).unwrap();
        let origin = NodeId::new(0);
        issue_query(
            &mut net,
            origin,
            9,
            c.embedding(gdsearch_embed::WordId::new(10)).clone(),
            2,
        )
        .unwrap();
        let completed = run_and_collect(&mut net, origin, 100_000).unwrap();
        assert_eq!(completed.len(), 1);
        assert!(completed[0].results.len() <= 4);
        // Every result's hop is within the TTL.
        for (_, _, hop) in &completed[0].results {
            assert!(*hop <= 2);
        }
    }

    #[test]
    fn lost_messages_orphan_the_walk() {
        let mut r = rng(8);
        let g = generators::ring(6).unwrap();
        let c = corpus(9);
        let words = vec![gdsearch_embed::WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder().ttl(4).build().unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        let sim_cfg = NetworkConfig::default().with_loss_probability(1.0).unwrap();
        let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
        let origin = NodeId::new(0);
        issue_query(
            &mut net,
            origin,
            2,
            c.embedding(gdsearch_embed::WordId::new(1)).clone(),
            4,
        )
        .unwrap();
        let completed = run_and_collect(&mut net, origin, 10_000).unwrap();
        // The first forward is lost; with everything dropped the origin
        // never completes (documented protocol limitation without timers).
        assert!(completed.is_empty());
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn bounded_backend_agrees_with_instant_for_deterministic_policy() {
        // PprGreedy consumes no randomness and both backends run the same
        // handlers, so under ample bandwidth the walk tree — and thus the
        // message count and final results — must coincide exactly.
        let mut r = rng(21);
        let g = generators::social_circles_like_scaled(50, &mut r).unwrap();
        let c = corpus(22);
        let words: Vec<_> = (0..5).map(gdsearch_embed::WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder().ttl(12).top_k(3).build().unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        let origin = NodeId::new(7);
        let query = c.embedding(gdsearch_embed::WordId::new(8)).clone();
        let run = |backend: SimBackend| {
            let mut net = ProtocolNetwork::build(&scheme, backend).unwrap();
            net.issue_query(origin, 4, query.clone(), 12).unwrap();
            net.run_to_completion(1_000_000).unwrap();
            let stats = *net.stats();
            (net.completed(origin).unwrap(), stats)
        };
        let (instant_done, instant_stats) = run(SimBackend::Instant);
        let bounded = SimBackend::Bounded(
            TransportConfig::default()
                .with_bandwidth(1 << 20)
                .unwrap()
                .with_threads(4)
                .unwrap(),
        );
        let (bounded_done, bounded_stats) = run(bounded);
        assert_eq!(instant_done, bounded_done);
        assert_eq!(instant_stats.sent, bounded_stats.sent);
        assert_eq!(instant_stats.delivered, bounded_stats.delivered);
        assert_eq!(instant_stats.bytes_sent, bounded_stats.bytes_sent);
        assert_eq!(bounded_stats.dropped_total(), 0);
    }

    #[test]
    fn saturated_links_backpressure_flooding() {
        // Flooding a narrow-link network must saturate queues: either
        // messages wait (queue delay) or overflow (backpressure drops).
        let mut r = rng(31);
        let g = generators::social_circles_like_scaled(40, &mut r).unwrap();
        let c = corpus(32);
        let words: Vec<_> = (0..4).map(gdsearch_embed::WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let cfg = SchemeConfig::builder()
            .ttl(4)
            .policy(crate::PolicyKind::Flooding)
            .build()
            .unwrap();
        let scheme = SearchNetwork::build(&g, &c, &p, &cfg, &mut r).unwrap();
        let transport = TransportConfig::default()
            .with_bandwidth(64)
            .unwrap()
            .with_queue_capacity(3)
            .unwrap();
        let mut net = ProtocolNetwork::build(&scheme, SimBackend::Bounded(transport)).unwrap();
        let origin = NodeId::new(0);
        net.issue_query(
            origin,
            1,
            c.embedding(gdsearch_embed::WordId::new(5)).clone(),
            4,
        )
        .unwrap();
        net.run_to_completion(1_000_000).unwrap();
        let stats = net.stats();
        assert!(
            stats.queue_delay.sum() > 0 || stats.dropped_backpressure > 0,
            "narrow links must queue or drop: {stats:?}"
        );
        assert!(stats.max_queue_depth > 1);
    }

    #[test]
    fn wire_sizes_are_consistent() {
        let q = SearchMessage::Query {
            query_id: 1,
            msg_id: 2,
            embedding: Embedding::zeros(16),
            ttl: 5,
            hop: 0,
        };
        assert_eq!(q.wire_size(), 24 + 4 + 64);
        let r = SearchMessage::Response {
            query_id: 1,
            answers_msg: 2,
            results: vec![(0, 1.0, 3), (1, 0.5, 2)],
        };
        assert_eq!(r.wire_size(), 20 + 24);
    }
}
