//! Document placement over the network.
//!
//! The paper's experiments "distribute the documents over the graph's nodes
//! uniformly" (§V-B) — [`Placement::uniform`]. The conclusion conjectures
//! that "more realistic document distributions … naturally exhibit spatial
//! correlation" and would aid diffusion; [`Placement::topic_correlated`]
//! implements such a distribution for the `ablation_placement` experiment:
//! similar documents are pulled towards graph-nearby hosts.

use std::collections::BTreeMap;

use gdsearch_embed::{similarity, Corpus, WordId};
use gdsearch_graph::algo::bfs;
use gdsearch_graph::{Graph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SearchError;

/// Index of a placed document within a [`Placement`] (0-based; the
/// experiment harnesses place the gold document at index 0 by convention).
pub type DocId = usize;

/// An assignment of corpus words (documents) to hosting nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    words: Vec<WordId>,
    hosts: Vec<NodeId>,
}

impl Placement {
    /// Places each document on an independently uniform random node
    /// (the paper's distribution).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::InvalidParameter`] for an empty graph or an
    /// empty document list.
    pub fn uniform<R: Rng + ?Sized>(
        graph: &Graph,
        words: &[WordId],
        rng: &mut R,
    ) -> Result<Self, SearchError> {
        validate(graph, words)?;
        let n = graph.num_nodes() as u32;
        let hosts = words
            .iter()
            .map(|_| NodeId::new(rng.random_range(0..n)))
            .collect();
        Ok(Placement {
            words: words.to_vec(),
            hosts,
        })
    }

    /// Places documents with *spatial correlation*: the first document of
    /// each similarity cluster lands uniformly; each subsequent document,
    /// with probability `locality`, lands within `radius` hops of the host
    /// of the most similar already-placed document, and uniformly
    /// otherwise.
    ///
    /// With `locality = 0` this degenerates to [`Placement::uniform`].
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::InvalidParameter`] for an empty graph/word
    /// list, `locality` outside `[0, 1]` or words outside the corpus.
    pub fn topic_correlated<R: Rng + ?Sized>(
        graph: &Graph,
        corpus: &Corpus,
        words: &[WordId],
        locality: f64,
        radius: u32,
        rng: &mut R,
    ) -> Result<Self, SearchError> {
        validate(graph, words)?;
        if !(0.0..=1.0).contains(&locality) || locality.is_nan() {
            return Err(SearchError::invalid_parameter(
                "locality must lie in [0, 1]",
            ));
        }
        for w in words {
            if corpus.get(*w).is_none() {
                return Err(SearchError::invalid_parameter(format!(
                    "word {w} not in corpus"
                )));
            }
        }
        let n = graph.num_nodes() as u32;
        let mut hosts: Vec<NodeId> = Vec::with_capacity(words.len());
        for (i, w) in words.iter().enumerate() {
            let anchored = i > 0 && rng.random_bool(locality);
            let host = if anchored {
                // Most similar already-placed document. `>= on total_cmp`
                // keeps the last maximum, matching `Iterator::max_by`.
                let emb = corpus.embedding(*w);
                let mut best: Option<(usize, f32)> = None;
                for (j, prev) in words[..i].iter().enumerate() {
                    let sim = similarity::cosine(emb, corpus.embedding(*prev))?;
                    if best.is_none_or(|(_, s)| sim.total_cmp(&s).is_ge()) {
                        best = Some((j, sim));
                    }
                }
                match best {
                    Some((best_idx, _)) => {
                        let anchor = hosts[best_idx];
                        // Uniform node within `radius` hops of the anchor.
                        let ring = bfs::distance_rings(graph, anchor, radius);
                        let ball: Vec<NodeId> = ring.into_iter().flatten().collect();
                        ball[rng.random_range(0..ball.len())]
                    }
                    // Unreachable (`anchored` implies `i > 0`); place
                    // uniformly rather than panic if that ever drifts.
                    None => NodeId::new(rng.random_range(0..n)),
                }
            } else {
                NodeId::new(rng.random_range(0..n))
            };
            hosts.push(host);
        }
        Ok(Placement {
            words: words.to_vec(),
            hosts,
        })
    }

    /// Number of placed documents.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no documents are placed (never true for a constructed
    /// placement).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The corpus word of document `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn word(&self, doc: DocId) -> WordId {
        self.words[doc]
    }

    /// The hosting node of document `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn host(&self, doc: DocId) -> NodeId {
        self.hosts[doc]
    }

    /// Iterates over `(doc id, word, host)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, WordId, NodeId)> + '_ {
        self.words
            .iter()
            .zip(&self.hosts)
            .enumerate()
            .map(|(i, (w, h))| (i, *w, *h))
    }

    /// Groups documents by hosting node.
    pub fn docs_by_host(&self) -> BTreeMap<NodeId, Vec<DocId>> {
        let mut map: BTreeMap<NodeId, Vec<DocId>> = BTreeMap::new();
        for (doc, host) in self.hosts.iter().enumerate() {
            map.entry(*host).or_default().push(doc);
        }
        map
    }

    /// The distinct hosting nodes.
    pub fn hosts(&self) -> Vec<NodeId> {
        let mut hosts: Vec<NodeId> = self.hosts.clone();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }
}

fn validate(graph: &Graph, words: &[WordId]) -> Result<(), SearchError> {
    if graph.num_nodes() == 0 {
        return Err(SearchError::invalid_parameter(
            "cannot place documents on an empty graph",
        ));
    }
    if words.is_empty() {
        return Err(SearchError::invalid_parameter(
            "placement needs at least one document",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_embed::synthetic::SyntheticCorpus;
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn words(n: u32) -> Vec<WordId> {
        (0..n).map(WordId::new).collect()
    }

    #[test]
    fn uniform_places_every_document() {
        let g = generators::ring(10).unwrap();
        let p = Placement::uniform(&g, &words(25), &mut rng(1)).unwrap();
        assert_eq!(p.len(), 25);
        for (_, _, host) in p.iter() {
            assert!(host.index() < 10);
        }
        let by_host = p.docs_by_host();
        let total: usize = by_host.values().map(Vec::len).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let g = generators::ring(10).unwrap();
        let p = Placement::uniform(&g, &words(5000), &mut rng(2)).unwrap();
        let by_host = p.docs_by_host();
        for host_docs in by_host.values() {
            // Expected 500 per node; 5 sigma ≈ 106.
            assert!((host_docs.len() as f64 - 500.0).abs() < 150.0);
        }
    }

    #[test]
    fn validation_errors() {
        let g = generators::ring(5).unwrap();
        assert!(Placement::uniform(&g, &[], &mut rng(3)).is_err());
        let empty = gdsearch_graph::Graph::empty(0);
        assert!(Placement::uniform(&empty, &words(3), &mut rng(3)).is_err());
    }

    #[test]
    fn correlated_zero_locality_is_uniform_like() {
        let g = generators::grid(6, 6);
        let corpus = SyntheticCorpus::builder()
            .vocab_size(50)
            .dim(16)
            .generate(&mut rng(4))
            .unwrap();
        let p = Placement::topic_correlated(&g, &corpus, &words(30), 0.0, 2, &mut rng(5)).unwrap();
        assert_eq!(p.len(), 30);
    }

    #[test]
    fn correlated_placement_shrinks_same_topic_distance() {
        // Build a corpus with tight clusters and compare the mean graph
        // distance between similar-document hosts under uniform vs.
        // correlated placement.
        let mut r = rng(6);
        let g = generators::social_circles_like_scaled(120, &mut r).unwrap();
        let corpus = SyntheticCorpus::builder()
            .vocab_size(60)
            .dim(24)
            .num_topics(4)
            .topic_noise(0.3)
            .background_fraction(0.0)
            .generate(&mut r)
            .unwrap();
        let ws = words(60);
        let mean_similar_distance = |p: &Placement| {
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..ws.len() {
                // Find the most similar other document.
                let (best, _) = ws
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(j, w)| {
                        (
                            j,
                            similarity::cosine(corpus.embedding(ws[i]), corpus.embedding(*w))
                                .unwrap(),
                        )
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                let d = bfs::distances(&g, p.host(i))[p.host(best).index()];
                if let Some(d) = d {
                    total += d as f64;
                    count += 1;
                }
            }
            total / count as f64
        };
        let uniform = Placement::uniform(&g, &ws, &mut rng(7)).unwrap();
        let correlated =
            Placement::topic_correlated(&g, &corpus, &ws, 0.9, 1, &mut rng(7)).unwrap();
        assert!(
            mean_similar_distance(&correlated) < mean_similar_distance(&uniform),
            "correlated placement should put similar docs closer"
        );
    }

    #[test]
    fn correlated_validates_inputs() {
        let g = generators::ring(5).unwrap();
        let corpus = SyntheticCorpus::builder()
            .vocab_size(10)
            .dim(8)
            .generate(&mut rng(8))
            .unwrap();
        assert!(Placement::topic_correlated(&g, &corpus, &words(5), 1.5, 2, &mut rng(9)).is_err());
        assert!(
            Placement::topic_correlated(&g, &corpus, &[WordId::new(99)], 0.5, 2, &mut rng(9))
                .is_err()
        );
    }

    #[test]
    fn accessors() {
        let g = generators::ring(6).unwrap();
        let p = Placement::uniform(&g, &words(4), &mut rng(10)).unwrap();
        assert_eq!(p.word(2), WordId::new(2));
        assert!(!p.is_empty());
        assert!(p.hosts().len() <= 4);
        assert!(p.hosts().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::ring(8).unwrap();
        let a = Placement::uniform(&g, &words(20), &mut rng(11)).unwrap();
        let b = Placement::uniform(&g, &words(20), &mut rng(11)).unwrap();
        assert_eq!(a, b);
    }
}
