//! Assembly of the diffusion-search network (paper §IV).
//!
//! [`SearchNetwork::build`] performs the scheme's setup phase end to end:
//! personalization vectors from placed documents (§IV-A), PPR diffusion of
//! those vectors (§IV-B) with the configured engine, and the per-node
//! document indexes that serve local retrieval. The result answers queries
//! through [`SearchNetwork::query`] (§IV-C).

use gdsearch_diffusion::{gossip, per_source, power, push, sharded, Signal};
use gdsearch_embed::{similarity, Corpus, Embedding};
use gdsearch_graph::{Graph, NodeId};
use gdsearch_obs::Observer;
use rand::Rng;

use crate::personalization;
use crate::walk::{self, WalkOutcome};
use crate::{DiffusionEngine, DocId, Placement, SchemeConfig, SearchError};

/// Unwraps an iterative diffusion outcome, turning budget exhaustion into
/// [`SearchError::Diffusion`].
fn require_converged(out: power::DiffusionResult) -> Result<Signal, SearchError> {
    if !out.converged {
        return Err(SearchError::Diffusion(
            gdsearch_diffusion::DiffusionError::NotConverged {
                iterations: out.iterations,
                residual: out.residual,
            },
        ));
    }
    Ok(out.signal)
}

/// Copies the distributed exchange's plain-data transport ledger into the
/// observer's sink (the `dist` crate itself stays free of obs types; its
/// own [`gdsearch_dist::ExchangeStats`] ledger is authoritative and
/// cross-checked per epoch inside the exchange).
fn record_exchange_stats(obs: &mut Observer<'_>, stats: &gdsearch_dist::ExchangeStats) {
    let sink = obs.sink();
    sink.add("dist.exchange.epochs", stats.epochs);
    sink.add("dist.exchange.frames", stats.frames);
    sink.add("dist.exchange.frame_bytes", stats.frame_bytes);
    sink.add(
        "dist.exchange.retransmitted_frames",
        stats.retransmitted_frames,
    );
    sink.add("dist.exchange.retransmit_rounds", stats.retransmit_rounds);
    sink.add("dist.exchange.ticks", stats.ticks);
    // Replay the epoch barriers into the flight recorder on the virtual
    // timebase (no-ops without an attached trace log).
    for &tick in &stats.epoch_ticks {
        obs.trace_tick("dist.exchange.epoch", None, tick);
    }
}

/// A fully prepared diffusion-search network: graph + placed documents +
/// diffused node embeddings.
///
/// Borrows the graph (experiments reuse one graph across hundreds of
/// placements); owns everything placement-specific.
#[derive(Debug, Clone)]
pub struct SearchNetwork<'g> {
    graph: &'g Graph,
    config: SchemeConfig,
    dim: usize,
    /// Diffused node embeddings `E` (Eq. 6), one row per node.
    embeddings: Signal,
    /// Embedding of each placed document (by `DocId`).
    doc_embeddings: Vec<Embedding>,
    /// Host of each placed document.
    doc_hosts: Vec<NodeId>,
    /// Documents hosted at each node.
    docs_at: Vec<Vec<DocId>>,
}

impl<'g> SearchNetwork<'g> {
    /// Builds the network: computes personalization vectors, runs the
    /// configured diffusion engine, and indexes documents per node.
    ///
    /// `rng` drives the gossip engine's asynchrony; the deterministic
    /// engines ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::InvalidParameter`] for placements referencing
    /// words outside `corpus`, plus any substrate failure (shape mismatch,
    /// non-convergence).
    pub fn build<R: Rng + ?Sized>(
        graph: &'g Graph,
        corpus: &Corpus,
        placement: &Placement,
        config: &SchemeConfig,
        rng: &mut R,
    ) -> Result<Self, SearchError> {
        Self::build_observed(
            graph,
            corpus,
            placement,
            config,
            rng,
            &mut Observer::disabled(),
        )
    }

    /// [`SearchNetwork::build`] with end-to-end observability: the setup
    /// phases (personalization → diffusion) open wall-clock spans on the
    /// observer's profiler (when one is attached), and the deterministic
    /// engines record work units — sweeps, pushes, halo bytes, residual
    /// curves — through the observer's write-only sink. Instrumentation
    /// never perturbs the result: the network is bit-identical to the
    /// unobserved build.
    ///
    /// Metrics (scheme level): `scheme.build.docs` / `.hosting_nodes`
    /// (counters), plus everything the engines record (`diffusion.*`,
    /// `graph.sharded.*`) and, for the distributed engine, the transport
    /// ledger (`dist.exchange.*`).
    ///
    /// # Errors
    ///
    /// As [`SearchNetwork::build`].
    pub fn build_observed<R: Rng + ?Sized>(
        graph: &'g Graph,
        corpus: &Corpus,
        placement: &Placement,
        config: &SchemeConfig,
        rng: &mut R,
        obs: &mut Observer<'_>,
    ) -> Result<Self, SearchError> {
        let dim = corpus.dim();
        let n = graph.num_nodes();
        let personalization_span = obs.enter("scheme.personalization");
        obs.trace_begin("scheme.personalization");
        // Index documents per node and collect their embeddings.
        let mut docs_at: Vec<Vec<DocId>> = vec![Vec::new(); n];
        let mut doc_embeddings = Vec::with_capacity(placement.len());
        let mut doc_hosts = Vec::with_capacity(placement.len());
        for (doc, word, host) in placement.iter() {
            let emb = corpus.get(word).ok_or_else(|| {
                SearchError::invalid_parameter(format!("placed word {word} not in corpus"))
            })?;
            graph.check_node(host)?;
            docs_at[host.index()].push(doc);
            doc_embeddings.push(emb.clone());
            doc_hosts.push(host);
        }
        // Personalization rows for hosting nodes only (sparse E0).
        let grouped: Vec<(NodeId, Vec<&Embedding>)> = docs_at
            .iter()
            .enumerate()
            .filter(|(_, docs)| !docs.is_empty())
            .map(|(u, docs)| {
                (
                    NodeId::new(u as u32),
                    docs.iter().map(|&d| &doc_embeddings[d]).collect(),
                )
            })
            .collect();
        let rows =
            personalization::personalization_rows(graph, dim, &grouped, config.aggregation())?;
        obs.trace_end("scheme.personalization");
        obs.exit(personalization_span);
        obs.sink().add("scheme.build.docs", placement.len() as u64);
        obs.sink()
            .add("scheme.build.hosting_nodes", grouped.len() as u64);
        // Diffuse with the configured engine, routing work-unit recording
        // into the observer's sink where the engine supports it.
        let ppr = config.ppr_config()?;
        let diffusion_span = obs.enter("scheme.diffusion");
        obs.trace_begin("scheme.diffusion");
        let embeddings = match config.engine() {
            DiffusionEngine::Auto => per_source::auto_diffuse(graph, dim, &rows, &ppr)?,
            DiffusionEngine::PerSource => per_source::diffuse_sparse(graph, dim, &rows, &ppr)?,
            DiffusionEngine::Dense { threads } => {
                let e0 = Signal::from_sparse_rows(n, dim, &rows)?;
                require_converged(power::diffuse_threaded_observed(
                    graph,
                    &e0,
                    &ppr,
                    threads,
                    obs.sink(),
                )?)?
            }
            DiffusionEngine::Push { rmax, threads } => {
                let push_cfg = push::PushConfig::new(ppr)
                    .with_rmax(rmax)?
                    .with_threads(threads)?;
                push::diffuse_sparse_observed(graph, dim, &rows, &push_cfg, obs.sink())?
            }
            DiffusionEngine::Sharded { shards, threads } => {
                let scfg = sharded::ShardedConfig::new(ppr)
                    .with_shards(shards)?
                    .with_threads(threads)?;
                // Same sparse/dense crossover as Auto: column-wise push for
                // genuinely sparse personalizations, partitioned power
                // sweep otherwise.
                if rows.len() < dim / 4 {
                    sharded::diffuse_sparse_observed(graph, dim, &rows, &scfg, obs.sink())?
                } else {
                    let e0 = Signal::from_sparse_rows(n, dim, &rows)?;
                    require_converged(sharded::diffuse_observed(graph, &e0, &scfg, obs.sink())?)?
                }
            }
            DiffusionEngine::Distributed {
                shards,
                threads,
                transport,
            } => {
                let scfg = sharded::ShardedConfig::new(ppr)
                    .with_shards(shards)?
                    .with_threads(threads)?;
                let dcfg = gdsearch_dist::DistConfig::new(scfg)
                    .with_transport(transport.to_transport_config()?);
                // Same sparse/dense crossover as the sharded engine; halo
                // columns / residual mass move over simulated links. The
                // dist crate stays free of obs types (its own plain-data
                // ledger is authoritative); the driver copies the ledger
                // into the sink after the fact.
                let (signal, stats) = if rows.len() < dim / 4 {
                    gdsearch_dist::diffuse_sparse(graph, dim, &rows, &dcfg)?
                } else {
                    let e0 = Signal::from_sparse_rows(n, dim, &rows)?;
                    let (out, stats) = gdsearch_dist::diffuse(graph, &e0, &dcfg)?;
                    (require_converged(out)?, stats)
                };
                record_exchange_stats(obs, &stats);
                signal
            }
            DiffusionEngine::Gossip => {
                let e0 = Signal::from_sparse_rows(n, dim, &rows)?;
                let out = gossip::diffuse(graph, &e0, &gossip::GossipConfig::new(ppr), rng)?;
                if !out.converged {
                    return Err(SearchError::Diffusion(
                        gdsearch_diffusion::DiffusionError::NotConverged {
                            iterations: out.updates,
                            residual: f32::NAN,
                        },
                    ));
                }
                obs.sink()
                    .add("diffusion.gossip.updates", out.updates as u64);
                out.signal
            }
        };
        obs.trace_end("scheme.diffusion");
        obs.exit(diffusion_span);
        Ok(SearchNetwork {
            graph,
            config: config.clone(),
            dim,
            embeddings,
            doc_embeddings,
            doc_hosts,
            docs_at,
        })
    }

    /// Executes a query from `start`, following the paper's forwarding
    /// protocol. See [`walk::run`].
    ///
    /// # Migration
    ///
    /// This is the low-level single-query entry point, kept as a thin shim
    /// over [`walk::run`]. New callers should prefer
    /// [`QueryEngine`](crate::engine::QueryEngine) — submit through
    /// [`QueryEngine::submit`](crate::engine::QueryEngine::submit) /
    /// [`QueryEngine::execute`](crate::engine::QueryEngine::execute) to get
    /// admission control, batched dispatch and hot-column caching with
    /// bitwise-identical results.
    ///
    /// # Errors
    ///
    /// As [`walk::run`].
    pub fn query<R: Rng + ?Sized>(
        &self,
        query: &Embedding,
        start: NodeId,
        rng: &mut R,
    ) -> Result<WalkOutcome, SearchError> {
        walk::run(self, query, start, rng)
    }

    /// [`SearchNetwork::query`] with observability: the walk runs under a
    /// wall-clock span (when a profiler is attached) and its cost lands in
    /// the sink — `scheme.walk.queries` / `.hops` (counters),
    /// `scheme.walk.unique_nodes` / `.results` (histograms, one sample per
    /// query). The outcome is identical to the unobserved query.
    ///
    /// # Migration
    ///
    /// As with [`SearchNetwork::query`], prefer
    /// [`QueryEngine::execute_observed`](crate::engine::QueryEngine::execute_observed),
    /// which adds cache spans and per-query trace correlation on top of the
    /// same walk instrumentation.
    ///
    /// # Errors
    ///
    /// As [`SearchNetwork::query`].
    pub fn query_observed<R: Rng + ?Sized>(
        &self,
        query: &Embedding,
        start: NodeId,
        rng: &mut R,
        obs: &mut Observer<'_>,
    ) -> Result<WalkOutcome, SearchError> {
        self.query_scored_observed(query, start, rng, None, obs)
    }

    /// [`SearchNetwork::query_observed`] with an optional precomputed score
    /// column (see [`walk::run_scored`]); the engine's cached path lands
    /// here so the walk instrumentation has exactly one implementation.
    pub(crate) fn query_scored_observed<R: Rng + ?Sized>(
        &self,
        query: &Embedding,
        start: NodeId,
        rng: &mut R,
        scores: Option<&[f32]>,
        obs: &mut Observer<'_>,
    ) -> Result<WalkOutcome, SearchError> {
        let walk_span = obs.enter("scheme.walk");
        obs.trace_begin("scheme.walk");
        let out = walk::run_scored(self, query, start, rng, scores);
        obs.trace_end("scheme.walk");
        obs.exit(walk_span);
        if let Ok(out) = &out {
            let sink = obs.sink();
            sink.add("scheme.walk.queries", 1);
            sink.add("scheme.walk.hops", u64::from(out.hops));
            sink.record("scheme.walk.unique_nodes", out.unique_nodes as u64);
            sink.record("scheme.walk.results", out.results.len() as u64);
        }
        out
    }

    /// The overlay graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The diffused node embeddings `E`.
    pub fn embeddings(&self) -> &Signal {
        &self.embeddings
    }

    /// The diffused embedding of one node, as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_embedding(&self, node: NodeId) -> Embedding {
        self.embeddings.row_embedding(node.index())
    }

    /// Number of placed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_embeddings.len()
    }

    /// The documents hosted at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn docs_at(&self, node: NodeId) -> &[DocId] {
        &self.docs_at[node.index()]
    }

    /// The hosting node of a document.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn doc_host(&self, doc: DocId) -> NodeId {
        self.doc_hosts[doc]
    }

    /// The embedding of a placed document.
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range.
    pub fn doc_embedding(&self, doc: DocId) -> &Embedding {
        &self.doc_embeddings[doc]
    }

    /// Relevance score of `doc` for `query` (dot product, §III-A).
    ///
    /// # Panics
    ///
    /// Panics if `doc` is out of range or dimensions disagree (callers
    /// validate the query once per walk).
    pub fn doc_score(&self, query: &Embedding, doc: DocId) -> f32 {
        similarity::dot(query, &self.doc_embeddings[doc])
            .expect("query dimension is validated by walk::run")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use gdsearch_embed::querygen::{self, QueryGenConfig};
    use gdsearch_embed::synthetic::SyntheticCorpus;
    use gdsearch_embed::WordId;
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn corpus(seed: u64) -> Corpus {
        SyntheticCorpus::builder()
            .vocab_size(200)
            .dim(24)
            .num_topics(8)
            .topic_noise(0.4)
            .background_fraction(0.2)
            .generate(&mut rng(seed))
            .unwrap()
    }

    #[test]
    fn build_indexes_documents_per_node() {
        let g = generators::ring(8).unwrap();
        let c = corpus(1);
        let words: Vec<WordId> = (0..10).map(WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut rng(2)).unwrap();
        let net = SearchNetwork::build(&g, &c, &p, &SchemeConfig::default(), &mut rng(3)).unwrap();
        assert_eq!(net.num_docs(), 10);
        let total: usize = g.node_ids().map(|u| net.docs_at(u).len()).sum();
        assert_eq!(total, 10);
        for doc in 0..10 {
            assert!(net.docs_at(net.doc_host(doc)).contains(&doc));
        }
    }

    #[test]
    fn engines_agree_on_embeddings() {
        let g = generators::social_circles_like_scaled(60, &mut rng(4)).unwrap();
        let c = corpus(5);
        let words: Vec<WordId> = (0..6).map(WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut rng(6)).unwrap();
        let build = |engine: DiffusionEngine, seed: u64| {
            let cfg = SchemeConfig::builder()
                .engine(engine)
                .tolerance(1e-6)
                .build()
                .unwrap();
            SearchNetwork::build(&g, &c, &p, &cfg, &mut rng(seed)).unwrap()
        };
        let dense = build(DiffusionEngine::dense(1), 7);
        let per_source = build(DiffusionEngine::PerSource, 8);
        let auto = build(DiffusionEngine::Auto, 9);
        let gossip = build(DiffusionEngine::Gossip, 10);
        let push = build(DiffusionEngine::push(2), 11);
        let sharded = build(DiffusionEngine::sharded(3, 2), 12);
        assert!(
            dense
                .embeddings()
                .max_abs_diff(per_source.embeddings())
                .unwrap()
                < 1e-3
        );
        assert!(dense.embeddings().max_abs_diff(auto.embeddings()).unwrap() < 1e-3);
        assert!(
            dense.embeddings().max_abs_diff(push.embeddings()).unwrap() < 1e-3,
            "push engine diverged"
        );
        assert!(
            dense
                .embeddings()
                .max_abs_diff(sharded.embeddings())
                .unwrap()
                < 1e-3,
            "sharded engine diverged"
        );
        // The dense sweep is bitwise thread-count independent end to end.
        let dense4 = build(DiffusionEngine::dense(4), 13);
        assert_eq!(dense.embeddings(), dense4.embeddings());
        // The distributed engine reproduces the in-process sharded result
        // bit for bit, whatever the interconnect bandwidth.
        let distributed = build(DiffusionEngine::distributed(3, 2), 14);
        assert_eq!(sharded.embeddings(), distributed.embeddings());
        let narrow = build(
            DiffusionEngine::Distributed {
                shards: 3,
                threads: 2,
                transport: crate::TransportProfile::default().with_bandwidth(2048),
            },
            15,
        );
        assert_eq!(sharded.embeddings(), narrow.embeddings());
        assert!(
            dense
                .embeddings()
                .max_abs_diff(gossip.embeddings())
                .unwrap()
                < 1e-2,
            "gossip engine diverged"
        );
    }

    #[test]
    fn observed_build_and_query_match_unobserved() {
        use gdsearch_obs::{MetricValue, MetricsRegistry, Observer, Profiler};
        let g = generators::grid(5, 5);
        let c = corpus(21);
        let words: Vec<WordId> = (0..4).map(WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut rng(22)).unwrap();
        let cfg = SchemeConfig::builder()
            .engine(DiffusionEngine::sharded(3, 2))
            .build()
            .unwrap();
        let reference = SearchNetwork::build(&g, &c, &p, &cfg, &mut rng(23)).unwrap();
        let mut registry = MetricsRegistry::new();
        let mut profiler = Profiler::new();
        let mut obs = Observer::new(Some(&mut registry), Some(&mut profiler));
        let net = SearchNetwork::build_observed(&g, &c, &p, &cfg, &mut rng(23), &mut obs).unwrap();
        assert_eq!(
            net.embeddings(),
            reference.embeddings(),
            "instrumentation must not perturb the build"
        );
        let q = c.embedding(WordId::new(0));
        let ref_out = reference.query(q, NodeId::new(3), &mut rng(24)).unwrap();
        let out = net
            .query_observed(q, NodeId::new(3), &mut rng(24), &mut obs)
            .unwrap();
        assert_eq!(out.path, ref_out.path);
        assert_eq!(out.hops, ref_out.hops);
        // Work units landed in the registry...
        match registry.get("scheme.build.docs") {
            Some(MetricValue::Counter(docs)) => assert_eq!(*docs, 4),
            other => panic!("docs: expected counter, got {other:?}"),
        }
        assert!(
            registry.get("diffusion.sharded.sweeps").is_some()
                || registry.get("diffusion.sharded.pushes").is_some(),
            "the sharded engine must have recorded work"
        );
        match registry.get("scheme.walk.hops") {
            Some(MetricValue::Counter(h)) => assert_eq!(*h, u64::from(out.hops)),
            other => panic!("hops: expected counter, got {other:?}"),
        }
        // ...and the wall-clock phases landed on the profiler.
        let tree = profiler.tree();
        let names: Vec<&str> = tree.roots.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["scheme.personalization", "scheme.diffusion", "scheme.walk"]
        );
    }

    #[test]
    fn diffused_signal_peaks_at_host() {
        let g = generators::grid(5, 5);
        let c = corpus(11);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(12)).unwrap();
        let net = SearchNetwork::build(&g, &c, &p, &SchemeConfig::default(), &mut rng(13)).unwrap();
        // The host's diffused embedding must score the document's own query
        // highest among all nodes.
        let q = c.embedding(WordId::new(0));
        let scores: Vec<f32> = g
            .node_ids()
            .map(|u| similarity::dot(q, &net.node_embedding(u)).unwrap())
            .collect();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(NodeId::new(best as u32), p.host(0));
    }

    #[test]
    fn end_to_end_gold_retrieval_beats_blind_walk() {
        // The headline claim, in miniature: PPR-guided walks find nearby
        // gold documents more often than blind random walks.
        let mut r = rng(14);
        let g = generators::social_circles_like_scaled(150, &mut r).unwrap();
        let c = corpus(15);
        let queries = querygen::generate(
            &c,
            QueryGenConfig {
                num_queries: 12,
                min_cosine: 0.6,
            },
            &mut r,
        )
        .unwrap();
        assert!(queries.len() >= 6, "need enough query pairs");
        let ttl = 15u32;
        let mut guided_hits = 0;
        let mut blind_hits = 0;
        for (i, pair) in queries.pairs().iter().enumerate() {
            let mut words = vec![pair.gold];
            words.extend(queries.irrelevant().iter().copied().take(9));
            let p = Placement::uniform(&g, &words, &mut rng(20 + i as u64)).unwrap();
            let start = NodeId::new((i as u32 * 13) % 150);
            for (policy, hits) in [
                (PolicyKind::PprGreedy, &mut guided_hits),
                (PolicyKind::RandomWalk, &mut blind_hits),
            ] {
                let cfg = SchemeConfig::builder()
                    .policy(policy)
                    .ttl(ttl)
                    .build()
                    .unwrap();
                let net = SearchNetwork::build(&g, &c, &p, &cfg, &mut rng(30 + i as u64)).unwrap();
                let out = net
                    .query(c.embedding(pair.query), start, &mut rng(40 + i as u64))
                    .unwrap();
                if out.contains(0) {
                    *hits += 1;
                }
            }
        }
        assert!(
            guided_hits >= blind_hits,
            "guided {guided_hits} vs blind {blind_hits}"
        );
        assert!(guided_hits > 0, "guided search must find something");
    }

    #[test]
    fn build_rejects_foreign_words() {
        let g = generators::ring(5).unwrap();
        let c = corpus(16);
        // Craft a placement over a larger corpus, then build with a smaller one.
        let big = corpus(17);
        let words = vec![WordId::new((big.len() - 1) as u32)];
        let p = Placement::uniform(&g, &words, &mut rng(18)).unwrap();
        let small = Corpus::from_embeddings(c.embeddings()[..50].to_vec()).unwrap();
        assert!(
            SearchNetwork::build(&g, &small, &p, &SchemeConfig::default(), &mut rng(19)).is_err()
        );
    }
}
