//! `gdsearch` — decentralized content search with Personalized PageRank
//! graph diffusion.
//!
//! This crate is a from-scratch reproduction of *"A Graph Diffusion Scheme
//! for Decentralized Content Search based on Personalized PageRank"*
//! (Giatsoglou, Krasanakis, Papadopoulos, Kompatsiaris — ICDCS 2022,
//! arXiv:2204.12902), built on four substrates:
//! [`gdsearch_graph`] (P2P topology), [`gdsearch_embed`] (dense retrieval),
//! [`gdsearch_diffusion`] (graph filters) and [`gdsearch_sim`]
//! (discrete-event networking).
//!
//! # The scheme in one paragraph
//!
//! Every node sums the embeddings of its local documents into a
//! *personalization vector* (§IV-A, [`personalization`]); the network
//! diffuses those vectors with a decentralized Personalized PageRank filter
//! (§IV-B, [`gdsearch_diffusion`]); a query then walks the overlay guided
//! by the diffused neighbor embeddings — dot-product-greedy over unvisited
//! neighbors, with a TTL and response backtracking (§IV-C, [`walk`] for the
//! fast in-process executor and [`protocol`] for the full message-passing
//! version). Baseline policies (blind random walk, flooding, degree-biased,
//! ε-greedy hybrid) live in [`forwarding`].
//!
//! # Reproducing the paper
//!
//! The [`experiment`] module regenerates every figure and table of the
//! evaluation: [`experiment::accuracy`] for Fig. 3 (hit accuracy vs.
//! query-to-gold distance) and [`experiment::hops`] for Table I (hop-count
//! analysis); see `EXPERIMENTS.md` for measured outputs.
//!
//! # Quickstart
//!
//! ```
//! use gdsearch::{Placement, SchemeConfig, SearchNetwork};
//! use gdsearch_embed::synthetic::SyntheticCorpus;
//! use gdsearch_embed::querygen::{self, QueryGenConfig};
//! use gdsearch_graph::generators;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(42);
//! let graph = generators::social_circles_like_scaled(200, &mut rng)?;
//! let corpus = SyntheticCorpus::builder().vocab_size(400).dim(32).generate(&mut rng)?;
//! let queries = querygen::generate(&corpus, QueryGenConfig { num_queries: 5, min_cosine: 0.6 }, &mut rng)?;
//! let pair = queries.pairs()[0];
//!
//! // Place the gold document plus nine irrelevant ones uniformly.
//! let docs: Vec<_> = std::iter::once(pair.gold)
//!     .chain(queries.irrelevant().iter().copied().take(9))
//!     .collect();
//! let placement = Placement::uniform(&graph, &docs, &mut rng)?;
//! let network = SearchNetwork::build(&graph, &corpus, &placement, &SchemeConfig::default(), &mut rng)?;
//!
//! // Walk from some node towards the gold document.
//! let start = gdsearch_graph::NodeId::new(17);
//! let outcome = network.query(corpus.embedding(pair.query), start, &mut rng)?;
//! println!("found {} documents in {} hops", outcome.results.len(), outcome.hops);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod engine;
mod error;
pub mod experiment;
pub mod forwarding;
pub mod metrics;
pub mod personalization;
mod placement;
pub mod protocol;
mod scheme;
pub mod walk;

pub use config::{DiffusionEngine, SchemeConfig, TransportProfile, VisitedMemory};
pub use engine::{
    CacheCapacity, CacheVerdict, ConfigError, EngineConfig, EngineError, QueryEngine, QueryRequest,
    QueryResponse,
};
pub use error::SearchError;
pub use forwarding::PolicyKind;
pub use personalization::Aggregation;
pub use placement::{DocId, Placement};
pub use scheme::SearchNetwork;
pub use walk::{FoundDoc, WalkOutcome};
