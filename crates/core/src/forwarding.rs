//! Forwarding policies: how a node picks next hops for a query.
//!
//! The paper's scheme (§IV-C) matches the query embedding against the
//! *diffused* embeddings of candidate neighbors by dot product and forwards
//! to the best — a biased random walk. The other variants are the blind
//! baselines the related-work section positions the scheme against
//! (flooding, uniform random walks) plus two common heuristics
//! (degree-biased, ε-greedy hybrid) used in the ablation benches.

use gdsearch_diffusion::Signal;
use gdsearch_embed::Embedding;
use gdsearch_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The available forwarding policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PolicyKind {
    /// The paper's policy: forward to the `fanout` candidates whose
    /// diffused embeddings score highest (dot product) against the query.
    #[default]
    PprGreedy,
    /// Blind uniform random walk (classic baseline).
    RandomWalk,
    /// Forward to the highest-degree candidates (hub-seeking heuristic).
    DegreeBiased,
    /// Forward to *every* candidate (Gnutella-style flooding; TTL-bounded).
    Flooding,
    /// ε-greedy: with probability `epsilon` act like [`PolicyKind::RandomWalk`],
    /// otherwise like [`PolicyKind::PprGreedy`]. Trades exploitation for
    /// exploration.
    Hybrid {
        /// Exploration probability in `[0, 1]`.
        epsilon: f32,
    },
}

/// Everything a policy may consult when choosing next hops.
#[derive(Debug)]
pub struct ForwardContext<'a> {
    /// The node making the decision.
    pub node: NodeId,
    /// Eligible next hops (unvisited neighbors, or all neighbors as the
    /// paper's footnote-9 fallback).
    pub candidates: &'a [NodeId],
    /// The query embedding.
    pub query: &'a Embedding,
    /// Diffused node embeddings (`E` of Eq. 6), indexed by node.
    pub node_embeddings: &'a Signal,
    /// The overlay graph (for degree lookups).
    pub graph: &'a Graph,
    /// How many next hops to select (ignored by flooding, which takes all).
    pub fanout: usize,
    /// Precomputed query-vs-embedding scores for *every* node (indexed by
    /// node id), or `None` to compute dot products inline. When present,
    /// entries must equal [`score_column`] of the same query and
    /// embeddings — the serving engine's hot-column cache relies on this
    /// so cached and uncached walks stay bitwise identical.
    pub scores: Option<&'a [f32]>,
}

/// The scheme's scoring kernel: dot product of the query with one diffused
/// embedding row. Single source of truth for [`candidate_score`] and
/// [`score_column`], so a cached column reproduces the inline computation
/// bit for bit.
fn dot_row(query: &Embedding, emb: &[f32]) -> f32 {
    query.as_slice().iter().zip(emb).map(|(q, e)| q * e).sum()
}

/// Scores a candidate exactly as the paper's nodes do: dot product of the
/// query with the candidate's diffused embedding. Served from
/// [`ForwardContext::scores`] when a precomputed column is attached.
pub fn candidate_score(ctx: &ForwardContext<'_>, candidate: NodeId) -> f32 {
    match ctx.scores.and_then(|s| s.get(candidate.index())).copied() {
        Some(score) => score,
        None => dot_row(ctx.query, ctx.node_embeddings.row(candidate.index())),
    }
}

/// The full score column of one query against every node's diffused
/// embedding, computed with the exact per-candidate kernel of
/// [`candidate_score`]. A walk that reads this column through
/// [`ForwardContext::scores`] makes bitwise-identical forwarding
/// decisions to one that computes dot products inline.
#[must_use]
pub fn score_column(query: &Embedding, node_embeddings: &Signal) -> Vec<f32> {
    (0..node_embeddings.num_nodes())
        .map(|u| dot_row(query, node_embeddings.row(u)))
        .collect()
}

/// Selects next hops under the given policy. Returns at most
/// `ctx.fanout` hops (all candidates for flooding); an empty slice of
/// candidates yields an empty selection.
///
/// Deterministic for [`PolicyKind::PprGreedy`] and
/// [`PolicyKind::DegreeBiased`] (ties broken by ascending node id);
/// randomized policies consume from `rng`.
pub fn select_next_hops<R: Rng + ?Sized>(
    kind: PolicyKind,
    ctx: &ForwardContext<'_>,
    rng: &mut R,
) -> Vec<NodeId> {
    if ctx.candidates.is_empty() || ctx.fanout == 0 {
        return Vec::new();
    }
    match kind {
        PolicyKind::PprGreedy => top_by_quantized(ctx, |c| candidate_score(ctx, c)),
        PolicyKind::DegreeBiased => top_by(ctx, |c| ctx.graph.degree(c) as f32),
        PolicyKind::RandomWalk => {
            let mut picks: Vec<NodeId> = ctx.candidates.to_vec();
            picks.shuffle(rng);
            picks.truncate(ctx.fanout);
            picks
        }
        PolicyKind::Flooding => ctx.candidates.to_vec(),
        PolicyKind::Hybrid { epsilon } => {
            let explore = epsilon > 0.0 && rng.random_bool(f64::from(epsilon.clamp(0.0, 1.0)));
            if explore {
                select_next_hops(PolicyKind::RandomWalk, ctx, rng)
            } else {
                select_next_hops(PolicyKind::PprGreedy, ctx, rng)
            }
        }
    }
}

/// Relative resolution below which two diffused-embedding scores count as
/// a tie.
///
/// The diffusion engines (dense, per-source, auto) converge to the same
/// fixed point along different floating-point paths, so their scores can
/// disagree by noise up to roughly the configured tolerance. Ranking on
/// raw floats would let any sub-tolerance gap flip a forwarding decision
/// between engines; quantizing to this grid (four orders of magnitude
/// coarser than typical engine noise) turns near-ties into explicit
/// protocol ties resolved by ascending node id. Scores can still straddle
/// a grid boundary, so cross-engine agreement is overwhelmingly likely
/// rather than guaranteed — bit-exact agreement is unattainable for
/// independently converging float iterations.
const SCORE_TIE_RESOLUTION: f32 = 1e-4;

/// Top-`fanout` candidates by quantized score: scores within
/// [`SCORE_TIE_RESOLUTION`] (relative to the largest magnitude) tie and
/// are broken by ascending node id. Used for diffused-embedding scores,
/// which carry engine-dependent float noise; exact scores (integer
/// degrees) go through [`top_by`] instead.
fn top_by_quantized<F: Fn(NodeId) -> f32>(ctx: &ForwardContext<'_>, score: F) -> Vec<NodeId> {
    let scored: Vec<(f32, NodeId)> = ctx.candidates.iter().map(|&c| (score(c), c)).collect();
    let scale = scored.iter().map(|(s, _)| s.abs()).fold(0.0f32, f32::max);
    let quantum = (scale * SCORE_TIE_RESOLUTION).max(f32::MIN_POSITIVE);
    rank_and_take(
        scored
            .into_iter()
            .map(|(s, c)| ((s / quantum).round(), c))
            .collect(),
        ctx.fanout,
    )
}

/// Top-`fanout` candidates by exact `score`, ties broken by ascending
/// node id.
fn top_by<F: Fn(NodeId) -> f32>(ctx: &ForwardContext<'_>, score: F) -> Vec<NodeId> {
    rank_and_take(
        ctx.candidates.iter().map(|&c| (score(c), c)).collect(),
        ctx.fanout,
    )
}

/// Sorts `(score, id)` pairs by descending score then ascending id and
/// returns the first `fanout` ids.
fn rank_and_take(mut scored: Vec<(f32, NodeId)>, fanout: usize) -> Vec<NodeId> {
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(fanout).map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A star graph whose leaf embeddings encode their ids, plus a query
    /// aligned with leaf 3.
    fn fixture() -> (gdsearch_graph::Graph, Signal, Embedding, Vec<NodeId>) {
        let g = generators::star(5); // hub 0, leaves 1..4
        let mut e = Signal::zeros(5, 4);
        for leaf in 1..5 {
            e.row_mut(leaf)[leaf - 1] = 1.0;
        }
        let query = Embedding::new(vec![0.0, 0.0, 1.0, 0.0]); // matches node 3
        let candidates: Vec<NodeId> = (1..5).map(NodeId::new).collect();
        (g, e, query, candidates)
    }

    #[test]
    fn greedy_picks_best_scoring_candidate() {
        let (g, e, q, cands) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: None,
        };
        let picks = select_next_hops(PolicyKind::PprGreedy, &ctx, &mut rng(1));
        assert_eq!(picks, vec![NodeId::new(3)]);
    }

    #[test]
    fn greedy_fanout_orders_by_score() {
        let (g, mut e, q, cands) = fixture();
        // Give node 1 a partial match so ranking is 3 > 1 > others.
        e.row_mut(1)[2] = 0.5;
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 2,
            scores: None,
        };
        let picks = select_next_hops(PolicyKind::PprGreedy, &ctx, &mut rng(1));
        assert_eq!(picks, vec![NodeId::new(3), NodeId::new(1)]);
    }

    #[test]
    fn greedy_tie_breaks_by_id() {
        let (g, _, _, cands) = fixture();
        let e = Signal::zeros(5, 4); // all scores equal (zero)
        let q = Embedding::new(vec![1.0, 1.0, 1.0, 1.0]);
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 2,
            scores: None,
        };
        let picks = select_next_hops(PolicyKind::PprGreedy, &ctx, &mut rng(1));
        assert_eq!(picks, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn random_walk_stays_within_candidates_and_fanout() {
        let (g, e, q, cands) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 2,
            scores: None,
        };
        let mut r = rng(2);
        for _ in 0..20 {
            let picks = select_next_hops(PolicyKind::RandomWalk, &ctx, &mut r);
            assert_eq!(picks.len(), 2);
            assert!(picks.iter().all(|p| cands.contains(p)));
            assert_ne!(picks[0], picks[1], "picks must be distinct");
        }
    }

    #[test]
    fn random_walk_is_uniform_ish() {
        let (g, e, q, cands) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: None,
        };
        let mut counts = [0usize; 5];
        let mut r = rng(3);
        for _ in 0..4000 {
            let picks = select_next_hops(PolicyKind::RandomWalk, &ctx, &mut r);
            counts[picks[0].index()] += 1;
        }
        for (leaf, &count) in counts.iter().enumerate().skip(1) {
            assert!(
                (count as f64 - 1000.0).abs() < 150.0,
                "leaf {leaf}: {count}"
            );
        }
    }

    #[test]
    fn degree_biased_prefers_hubs() {
        // Path 0-1-2 plus extra edges on node 2 making it the hub.
        let g = gdsearch_graph::Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
        let e = Signal::zeros(5, 2);
        let q = Embedding::zeros(2);
        let cands = vec![NodeId::new(0), NodeId::new(2)];
        let ctx = ForwardContext {
            node: NodeId::new(1),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: None,
        };
        let picks = select_next_hops(PolicyKind::DegreeBiased, &ctx, &mut rng(4));
        assert_eq!(picks, vec![NodeId::new(2)]);
    }

    #[test]
    fn flooding_takes_everyone() {
        let (g, e, q, cands) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1, // ignored
            scores: None,
        };
        let picks = select_next_hops(PolicyKind::Flooding, &ctx, &mut rng(5));
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn hybrid_extremes_match_components() {
        let (g, e, q, cands) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: None,
        };
        // epsilon = 0 -> always greedy.
        for seed in 0..10 {
            let picks = select_next_hops(PolicyKind::Hybrid { epsilon: 0.0 }, &ctx, &mut rng(seed));
            assert_eq!(picks, vec![NodeId::new(3)]);
        }
        // epsilon = 1 -> random: must deviate from greedy at least once.
        let mut deviated = false;
        for seed in 0..20 {
            let picks = select_next_hops(PolicyKind::Hybrid { epsilon: 1.0 }, &ctx, &mut rng(seed));
            if picks != vec![NodeId::new(3)] {
                deviated = true;
            }
        }
        assert!(deviated);
    }

    #[test]
    fn precomputed_column_matches_inline_scoring_bitwise() {
        let (g, mut e, q, cands) = fixture();
        // Perturb rows so scores are distinct and irrational-ish.
        for u in 0..5 {
            for (i, x) in e.row_mut(u).iter_mut().enumerate() {
                *x += (u as f32 + 1.0) * 0.137 + i as f32 * 0.011;
            }
        }
        let column = score_column(&q, &e);
        let inline_ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 2,
            scores: None,
        };
        let cached_ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 2,
            scores: Some(&column),
        };
        for &c in &cands {
            assert_eq!(
                candidate_score(&inline_ctx, c).to_bits(),
                candidate_score(&cached_ctx, c).to_bits(),
                "column entry for {c:?} must reproduce the inline kernel"
            );
        }
        assert_eq!(
            select_next_hops(PolicyKind::PprGreedy, &inline_ctx, &mut rng(7)),
            select_next_hops(PolicyKind::PprGreedy, &cached_ctx, &mut rng(7)),
        );
    }

    #[test]
    fn short_column_falls_back_to_inline_scoring() {
        // A column that does not cover a candidate's index must not panic:
        // scoring falls back to the inline dot product.
        let (g, e, q, cands) = fixture();
        let short = vec![0.0f32; 2]; // covers nodes 0..2 only
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: Some(&short),
        };
        let inline_ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &cands,
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 1,
            scores: None,
        };
        // Node 3 (index 3) is past the short column's end.
        assert_eq!(
            candidate_score(&ctx, NodeId::new(3)).to_bits(),
            candidate_score(&inline_ctx, NodeId::new(3)).to_bits(),
        );
    }

    #[test]
    fn empty_candidates_select_nothing() {
        let (g, e, q, _) = fixture();
        let ctx = ForwardContext {
            node: NodeId::new(0),
            candidates: &[],
            query: &q,
            node_embeddings: &e,
            graph: &g,
            fanout: 3,
            scores: None,
        };
        assert!(select_next_hops(PolicyKind::PprGreedy, &ctx, &mut rng(6)).is_empty());
        assert!(select_next_hops(PolicyKind::Flooding, &ctx, &mut rng(6)).is_empty());
    }
}
