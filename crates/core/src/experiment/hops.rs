//! Table I reproduction: hop-count analysis of successful walks (§V-D).
//!
//! Protocol, following the paper:
//!
//! > "we execute 500 iterations in each of which we distribute 10 queries
//! > uniformly in the network, for a total of 5000 samples. We also choose
//! > the value 0.5 for the teleport probability α, scale the number of
//! > documents for 10 to 10000, and randomize the document distribution at
//! > each iteration."
//!
//! A walk is successful when it retrieves the gold document within the
//! TTL; for successful walks the hop at which the gold host was first
//! visited is recorded.

use gdsearch_embed::WordId;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::engine::{EngineConfig, QueryEngine};
use crate::experiment::Workbench;
use crate::metrics::{hop_stats, HopStats};
use crate::{Placement, SchemeConfig, SearchError};

/// Parameters of one Table I row (fixed document count `M`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopCountConfig {
    /// Total documents `M` in the network.
    pub total_docs: usize,
    /// Number of placements (paper: 500).
    pub iterations: usize,
    /// Queries issued per placement from uniform random nodes (paper: 10).
    pub queries_per_iteration: usize,
}

impl Default for HopCountConfig {
    fn default() -> Self {
        HopCountConfig {
            total_docs: 10,
            iterations: 500,
            queries_per_iteration: 10,
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopCountRow {
    /// Document count `M`.
    pub total_docs: usize,
    /// Successful walks.
    pub successes: usize,
    /// Total walks issued.
    pub samples: usize,
    /// Median hop count of successful walks (`None` when nothing
    /// succeeded).
    pub median_hops: Option<f64>,
    /// Mean hop count of successful walks.
    pub mean_hops: Option<f64>,
    /// Population standard deviation of successful hop counts.
    pub std_hops: Option<f64>,
}

impl HopCountRow {
    /// Success rate over all issued walks.
    pub fn success_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.successes as f64 / self.samples as f64
        }
    }
}

/// Runs the hop-count experiment for one document count.
///
/// `base` supplies the full scheme configuration — the paper's Table I
/// uses `alpha = 0.5`, TTL 50, single greedy walk
/// (`SchemeConfig::default()`).
///
/// # Errors
///
/// Returns [`SearchError::InvalidParameter`] for zero iterations/queries,
/// or an irrelevant pool smaller than `total_docs − 1`; plus substrate
/// failures.
pub fn run<R: Rng + ?Sized>(
    workbench: &Workbench,
    config: &HopCountConfig,
    base: &SchemeConfig,
    rng: &mut R,
) -> Result<HopCountRow, SearchError> {
    if config.total_docs == 0 || config.iterations == 0 || config.queries_per_iteration == 0 {
        return Err(SearchError::invalid_parameter(
            "total_docs, iterations and queries_per_iteration must be positive",
        ));
    }
    let irrelevant_needed = config.total_docs - 1;
    if workbench.queries.irrelevant().len() < irrelevant_needed {
        return Err(SearchError::invalid_parameter(format!(
            "irrelevant pool ({}) cannot supply {} documents",
            workbench.queries.irrelevant().len(),
            irrelevant_needed
        )));
    }
    let n = workbench.graph.num_nodes() as u32;
    let mut successful_hops: Vec<u32> = Vec::new();
    let mut samples = 0usize;

    for _ in 0..config.iterations {
        let pair = workbench.queries.pairs()[rng.random_range(0..workbench.queries.len())];
        let mut words: Vec<WordId> = Vec::with_capacity(config.total_docs);
        words.push(pair.gold);
        words.extend(
            workbench
                .queries
                .irrelevant()
                .choose_multiple(rng, irrelevant_needed)
                .copied(),
        );
        let placement = Placement::uniform(&workbench.graph, &words, rng)?;
        let engine_config = EngineConfig::builder().scheme(base.clone()).build()?;
        let engine = QueryEngine::build(
            &workbench.graph,
            &workbench.corpus,
            &placement,
            engine_config,
            rng,
        )?;
        let query_embedding = workbench.corpus.embedding(pair.query);
        for _ in 0..config.queries_per_iteration {
            let start = gdsearch_graph::NodeId::new(rng.random_range(0..n));
            let outcome = engine.execute_with_rng(query_embedding, start, rng)?;
            samples += 1;
            if let Some(hop) = outcome.hop_of(0) {
                successful_hops.push(hop);
            }
        }
    }

    let stats: Option<HopStats> = hop_stats(&successful_hops);
    Ok(HopCountRow {
        total_docs: config.total_docs,
        successes: successful_hops.len(),
        samples,
        median_hops: stats.map(|s| s.median),
        mean_hops: stats.map(|s| s.mean),
        std_hops: stats.map(|s| s.std),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WorkbenchSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_workbench(seed: u64) -> Workbench {
        let mut rng = StdRng::seed_from_u64(seed);
        Workbench::generate(&WorkbenchSpec::ci_scale(), &mut rng).unwrap()
    }

    #[test]
    fn produces_consistent_counts() {
        let wb = small_workbench(1);
        let cfg = HopCountConfig {
            total_docs: 5,
            iterations: 10,
            queries_per_iteration: 4,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let row = run(&wb, &cfg, &SchemeConfig::default(), &mut rng).unwrap();
        assert_eq!(row.samples, 40);
        assert!(row.successes <= row.samples);
        assert!((0.0..=1.0).contains(&row.success_rate()));
        if row.successes > 0 {
            assert!(row.median_hops.is_some());
            assert!(row.mean_hops.unwrap() >= 0.0);
        }
    }

    #[test]
    fn some_walks_succeed_at_ci_scale() {
        let wb = small_workbench(3);
        let cfg = HopCountConfig {
            total_docs: 5,
            iterations: 15,
            queries_per_iteration: 5,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let row = run(&wb, &cfg, &SchemeConfig::default(), &mut rng).unwrap();
        assert!(
            row.successes > 0,
            "guided walks on a 300-node graph with TTL 50 must find some gold"
        );
    }

    #[test]
    fn validates_inputs() {
        let wb = small_workbench(5);
        let mut rng = StdRng::seed_from_u64(6);
        for bad in [
            HopCountConfig {
                total_docs: 0,
                iterations: 1,
                queries_per_iteration: 1,
            },
            HopCountConfig {
                total_docs: 5,
                iterations: 0,
                queries_per_iteration: 1,
            },
            HopCountConfig {
                total_docs: 5,
                iterations: 1,
                queries_per_iteration: 0,
            },
            HopCountConfig {
                total_docs: 10_000_000,
                iterations: 1,
                queries_per_iteration: 1,
            },
        ] {
            assert!(run(&wb, &bad, &SchemeConfig::default(), &mut rng).is_err());
        }
    }

    #[test]
    fn empty_success_set_reports_none() {
        // TTL 1 with a tiny document count on a 300-node graph: most walks
        // fail; with an adversarial seed all of them may. Check the
        // None-propagation path with an impossible TTL either way.
        let wb = small_workbench(7);
        let cfg = HopCountConfig {
            total_docs: 2,
            iterations: 2,
            queries_per_iteration: 2,
        };
        let base = SchemeConfig::builder().ttl(1).build().unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let row = run(&wb, &cfg, &base, &mut rng).unwrap();
        if row.successes == 0 {
            assert!(row.median_hops.is_none());
            assert!(row.mean_hops.is_none());
        }
    }
}
