//! Fig. 3 reproduction: hit accuracy vs. query-to-gold distance (§V-C).
//!
//! Protocol, following the paper exactly:
//!
//! > "In each iteration, we store one gold and M−1 irrelevant documents in
//! > the network, and sample multiple querying nodes, one from each radius
//! > away from the location of the gold document. At the end of simulation,
//! > the accuracy is computed as the percentage of queries that retrieved
//! > the gold document within a TTL of 50 hops. The simulation is repeated
//! > for three different values of α, 0.1, 0.5, and 0.9."

use gdsearch_embed::WordId;
use gdsearch_graph::algo::bfs;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::engine::{EngineConfig, QueryEngine};
use crate::experiment::Workbench;
use crate::{Placement, SchemeConfig, SearchError};

/// Parameters of one Fig. 3 subplot (fixed document count `M`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyConfig {
    /// Total documents `M` in the network (1 gold + M−1 irrelevant).
    pub total_docs: usize,
    /// Teleport probabilities to sweep (paper: 0.1, 0.5, 0.9).
    pub alphas: Vec<f32>,
    /// Largest query-to-gold distance evaluated (paper: 8).
    pub max_distance: u32,
    /// Number of placements (iterations).
    pub iterations: usize,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            total_docs: 10,
            alphas: vec![0.1, 0.5, 0.9],
            max_distance: 8,
            iterations: 100,
        }
    }
}

/// One accuracy curve: per-distance hit rates for a fixed `alpha`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracySeries {
    /// Teleport probability of this series.
    pub alpha: f32,
    /// `accuracy[d]` = hit rate of queries issued at distance `d`.
    pub accuracy: Vec<f64>,
    /// `samples[d]` = number of queries issued at distance `d`.
    pub samples: Vec<usize>,
}

/// Full result of one Fig. 3 subplot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// Document count `M` of the subplot.
    pub total_docs: usize,
    /// One series per `alpha`.
    pub series: Vec<AccuracySeries>,
}

/// Runs the accuracy experiment on a prepared workbench.
///
/// `base` supplies everything but `alpha` (TTL, policy, engine, …); the
/// paper's setting is `SchemeConfig::default()`.
///
/// # Errors
///
/// Returns [`SearchError::InvalidParameter`] if the irrelevant pool cannot
/// supply `total_docs − 1` documents or any alpha is invalid, plus any
/// substrate failure.
pub fn run<R: Rng + ?Sized>(
    workbench: &Workbench,
    config: &AccuracyConfig,
    base: &SchemeConfig,
    rng: &mut R,
) -> Result<AccuracyResult, SearchError> {
    if config.total_docs == 0 {
        return Err(SearchError::invalid_parameter(
            "total_docs must be positive",
        ));
    }
    if config.iterations == 0 {
        return Err(SearchError::invalid_parameter(
            "iterations must be positive",
        ));
    }
    let irrelevant_needed = config.total_docs - 1;
    if workbench.queries.irrelevant().len() < irrelevant_needed {
        return Err(SearchError::invalid_parameter(format!(
            "irrelevant pool ({}) cannot supply {} documents",
            workbench.queries.irrelevant().len(),
            irrelevant_needed
        )));
    }
    let distances = config.max_distance as usize + 1;
    let mut hits = vec![vec![0usize; distances]; config.alphas.len()];
    let mut samples = vec![vec![0usize; distances]; config.alphas.len()];

    for _ in 0..config.iterations {
        // One gold + M−1 irrelevant documents, placed uniformly. The gold
        // document is DocId 0 by construction.
        let pair = workbench.queries.pairs()[rng.random_range(0..workbench.queries.len())];
        let mut words: Vec<WordId> = Vec::with_capacity(config.total_docs);
        words.push(pair.gold);
        words.extend(
            workbench
                .queries
                .irrelevant()
                .choose_multiple(rng, irrelevant_needed)
                .copied(),
        );
        let placement = Placement::uniform(&workbench.graph, &words, rng)?;
        let gold_host = placement.host(0);
        // Distance rings around the gold host are alpha-independent.
        let rings = bfs::distance_rings(&workbench.graph, gold_host, config.max_distance);
        // Pre-pick one querying node per non-empty ring so every alpha
        // faces the same starts.
        let starts: Vec<Option<gdsearch_graph::NodeId>> = rings
            .iter()
            .map(|ring| {
                if ring.is_empty() {
                    None
                } else {
                    Some(ring[rng.random_range(0..ring.len())])
                }
            })
            .collect();
        let query_embedding = workbench.corpus.embedding(pair.query);

        for (ai, &alpha) in config.alphas.iter().enumerate() {
            let scheme_config = rebuild_with_alpha(base, alpha)?;
            let engine_config = EngineConfig::builder().scheme(scheme_config).build()?;
            let engine = QueryEngine::build(
                &workbench.graph,
                &workbench.corpus,
                &placement,
                engine_config,
                rng,
            )?;
            for (d, start) in starts.iter().enumerate() {
                let Some(start) = start else { continue };
                let outcome = engine.execute_with_rng(query_embedding, *start, rng)?;
                samples[ai][d] += 1;
                if outcome.contains(0) {
                    hits[ai][d] += 1;
                }
            }
        }
    }

    let series = config
        .alphas
        .iter()
        .enumerate()
        .map(|(ai, &alpha)| AccuracySeries {
            alpha,
            accuracy: (0..distances)
                .map(|d| {
                    if samples[ai][d] == 0 {
                        0.0
                    } else {
                        hits[ai][d] as f64 / samples[ai][d] as f64
                    }
                })
                .collect(),
            samples: samples[ai].clone(),
        })
        .collect();
    Ok(AccuracyResult {
        total_docs: config.total_docs,
        series,
    })
}

/// Clones `base` with a different teleport probability.
fn rebuild_with_alpha(base: &SchemeConfig, alpha: f32) -> Result<SchemeConfig, SearchError> {
    SchemeConfig::builder()
        .alpha(alpha)
        .ttl(base.ttl())
        .fanout(base.fanout())
        .top_k(base.top_k())
        .aggregation(base.aggregation())
        .policy(base.policy())
        .engine(base.engine())
        .visited_memory(base.visited_memory())
        .normalization(base.normalization())
        .tolerance(base.tolerance())
        .max_iterations(base.max_iterations())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WorkbenchSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_workbench(seed: u64) -> Workbench {
        let mut rng = StdRng::seed_from_u64(seed);
        Workbench::generate(&WorkbenchSpec::ci_scale(), &mut rng).unwrap()
    }

    #[test]
    fn produces_well_formed_series() {
        let wb = small_workbench(1);
        let cfg = AccuracyConfig {
            total_docs: 5,
            alphas: vec![0.5, 0.9],
            max_distance: 4,
            iterations: 4,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let result = run(&wb, &cfg, &SchemeConfig::default(), &mut rng).unwrap();
        assert_eq!(result.series.len(), 2);
        for s in &result.series {
            assert_eq!(s.accuracy.len(), 5);
            assert_eq!(s.samples.len(), 5);
            for (d, acc) in s.accuracy.iter().enumerate() {
                assert!((0.0..=1.0).contains(acc), "alpha {} d {d}", s.alpha);
            }
        }
    }

    #[test]
    fn distance_zero_is_always_a_hit() {
        // The querying node hosts the gold document: local retrieval finds
        // it at hop 0 regardless of alpha.
        let wb = small_workbench(3);
        let cfg = AccuracyConfig {
            total_docs: 5,
            alphas: vec![0.5],
            max_distance: 2,
            iterations: 6,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let result = run(&wb, &cfg, &SchemeConfig::default(), &mut rng).unwrap();
        assert_eq!(result.series[0].accuracy[0], 1.0);
    }

    #[test]
    fn accuracy_declines_with_distance() {
        // The paper's headline shape, at CI scale: distance-1 accuracy
        // should beat far-distance accuracy.
        let wb = small_workbench(5);
        let cfg = AccuracyConfig {
            total_docs: 10,
            alphas: vec![0.5],
            max_distance: 6,
            iterations: 25,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let result = run(&wb, &cfg, &SchemeConfig::default(), &mut rng).unwrap();
        let s = &result.series[0];
        let near = s.accuracy[1];
        let far = s.accuracy[5].max(s.accuracy[6]);
        assert!(
            near >= far,
            "near accuracy {near} should be at least far accuracy {far}: {:?}",
            s.accuracy
        );
    }

    #[test]
    fn validates_inputs() {
        let wb = small_workbench(7);
        let mut rng = StdRng::seed_from_u64(8);
        let bad_docs = AccuracyConfig {
            total_docs: 0,
            ..AccuracyConfig::default()
        };
        assert!(run(&wb, &bad_docs, &SchemeConfig::default(), &mut rng).is_err());
        let too_many = AccuracyConfig {
            total_docs: 10_000_000,
            ..AccuracyConfig::default()
        };
        assert!(run(&wb, &too_many, &SchemeConfig::default(), &mut rng).is_err());
        let zero_iters = AccuracyConfig {
            iterations: 0,
            ..AccuracyConfig::default()
        };
        assert!(run(&wb, &zero_iters, &SchemeConfig::default(), &mut rng).is_err());
    }
}
