//! Rendering of experiment results as markdown tables and CSV, in the
//! paper's own layout (Fig. 3 series per α; Table I columns), plus
//! transport-layer bandwidth tables for the bounded-backend experiments.

use std::fmt::Write as _;

use gdsearch_sim::NetStats;

use crate::experiment::accuracy::AccuracyResult;
use crate::experiment::hops::HopCountRow;

/// Renders a Fig. 3 subplot as a markdown table: one row per distance,
/// one column per α.
pub fn accuracy_markdown(result: &AccuracyResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Accuracy vs. distance — M = {} documents",
        result.total_docs
    );
    let mut header = String::from("| distance |");
    let mut rule = String::from("|---|");
    for s in &result.series {
        let _ = write!(header, " α = {} |", s.alpha);
        rule.push_str("---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let distances = result.series.first().map(|s| s.accuracy.len()).unwrap_or(0);
    for d in 0..distances {
        let mut row = format!("| {d} |");
        for s in &result.series {
            if s.samples[d] == 0 {
                row.push_str(" – |");
            } else {
                let _ = write!(row, " {:.3} |", s.accuracy[d]);
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders a Fig. 3 subplot as CSV: `distance,alpha,accuracy,samples`.
pub fn accuracy_csv(result: &AccuracyResult) -> String {
    let mut out = String::from("total_docs,distance,alpha,accuracy,samples\n");
    for s in &result.series {
        for (d, (acc, n)) in s.accuracy.iter().zip(&s.samples).enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{}",
                result.total_docs, d, s.alpha, acc, n
            );
        }
    }
    out
}

/// Renders Table I as markdown, mirroring the paper's columns.
pub fn hops_markdown(rows: &[HopCountRow]) -> String {
    let mut out = String::from(
        "| M documents | success rate | median hops | mean hops | std hops |\n\
         |---|---|---|---|---|\n",
    );
    for r in rows {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.2}"),
            None => "–".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} / {} | {} | {} | {} |",
            r.total_docs,
            r.successes,
            r.samples,
            fmt(r.median_hops),
            fmt(r.mean_hops),
            fmt(r.std_hops),
        );
    }
    out
}

/// Renders Table I as CSV.
pub fn hops_csv(rows: &[HopCountRow]) -> String {
    let mut out =
        String::from("total_docs,successes,samples,success_rate,median_hops,mean_hops,std_hops\n");
    for r in rows {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.4}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{},{},{}",
            r.total_docs,
            r.successes,
            r.samples,
            r.success_rate(),
            fmt(r.median_hops),
            fmt(r.mean_hops),
            fmt(r.std_hops),
        );
    }
    out
}

/// Renders labeled transport statistics as a markdown table: message and
/// byte counts, drop breakdown, and the bounded backend's queue metrics
/// (high-water depth, mean and p99 queueing delay). This is the report
/// format of the `ablation_transport` bandwidth experiments.
pub fn transport_markdown(rows: &[(&str, &NetStats)]) -> String {
    let mut out = String::from(
        "| configuration | sent | delivered | bytes | lost | down | \
         backpressure | max queue | mean queue wait | p99 queue wait |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for (label, s) in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.2} | {} |",
            label,
            s.sent,
            s.delivered,
            s.bytes_sent,
            s.lost,
            s.dropped_down,
            s.dropped_backpressure,
            s.max_queue_depth,
            s.mean_queue_delay_ticks(),
            s.p99_queue_delay_ticks(),
        );
    }
    out
}

/// Renders labeled transport statistics as CSV (one row per
/// configuration, same columns as [`transport_markdown`] plus
/// `dropped_no_route`).
pub fn transport_csv(rows: &[(&str, &NetStats)]) -> String {
    let mut out = String::from(
        "configuration,sent,delivered,bytes_sent,lost,dropped_down,\
         dropped_backpressure,dropped_no_route,max_queue_depth,queue_delay_ticks,\
         p99_queue_delay_ticks\n",
    );
    for (label, s) in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            label,
            s.sent,
            s.delivered,
            s.bytes_sent,
            s.lost,
            s.dropped_down,
            s.dropped_backpressure,
            s.dropped_no_route,
            s.max_queue_depth,
            s.queue_delay.sum(),
            s.p99_queue_delay_ticks(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::accuracy::AccuracySeries;

    fn sample_accuracy() -> AccuracyResult {
        AccuracyResult {
            total_docs: 10,
            series: vec![
                AccuracySeries {
                    alpha: 0.1,
                    accuracy: vec![1.0, 0.8, 0.4],
                    samples: vec![5, 5, 5],
                },
                AccuracySeries {
                    alpha: 0.9,
                    accuracy: vec![1.0, 0.9, 0.0],
                    samples: vec![5, 5, 0],
                },
            ],
        }
    }

    #[test]
    fn accuracy_markdown_layout() {
        let md = accuracy_markdown(&sample_accuracy());
        assert!(md.contains("M = 10 documents"));
        assert!(md.contains("α = 0.1"));
        assert!(md.contains("α = 0.9"));
        assert!(md.contains("| 0 | 1.000 | 1.000 |"));
        // Distance 2 with zero samples renders as a dash for alpha 0.9.
        assert!(md.contains("| 2 | 0.400 | – |"));
    }

    #[test]
    fn accuracy_csv_layout() {
        let csv = accuracy_csv(&sample_accuracy());
        assert!(csv.starts_with("total_docs,distance,alpha"));
        assert!(csv.contains("10,1,0.1,0.800000,5"));
        assert_eq!(csv.lines().count(), 1 + 6);
    }

    fn sample_rows() -> Vec<HopCountRow> {
        vec![
            HopCountRow {
                total_docs: 10,
                successes: 1905,
                samples: 5000,
                median_hops: Some(3.0),
                mean_hops: Some(7.62),
                std_hops: Some(10.83),
            },
            HopCountRow {
                total_docs: 100,
                successes: 0,
                samples: 5000,
                median_hops: None,
                mean_hops: None,
                std_hops: None,
            },
        ]
    }

    #[test]
    fn hops_markdown_layout() {
        let md = hops_markdown(&sample_rows());
        assert!(md.contains("| 10 | 1905 / 5000 | 3.00 | 7.62 | 10.83 |"));
        assert!(md.contains("| 100 | 0 / 5000 | – | – | – |"));
    }

    #[test]
    fn hops_csv_layout() {
        let csv = hops_csv(&sample_rows());
        assert!(csv.contains("10,1905,5000,0.3810,3.0000,7.6200,10.8300"));
        assert!(csv.contains("100,0,5000,0.0000,,,"));
    }

    fn sample_stats() -> NetStats {
        // 92 completed transmissions, each waiting 2 ticks: sum 184,
        // mean 2.00, p99 bound 2.
        let mut queue_delay = gdsearch_obs::Histogram::new();
        queue_delay.record_n(2, 92);
        NetStats {
            sent: 100,
            delivered: 90,
            lost: 4,
            dropped_down: 2,
            bytes_sent: 12_345,
            dropped_backpressure: 3,
            dropped_no_route: 1,
            max_queue_depth: 17,
            queue_delay,
        }
    }

    #[test]
    fn transport_markdown_layout() {
        let s = sample_stats();
        let md = transport_markdown(&[("flooding @ 1 KB/s", &s)]);
        assert!(md.contains("| configuration |"));
        assert!(md.contains("| flooding @ 1 KB/s | 100 | 90 | 12345 | 4 | 2 | 3 | 17 | 2.00 | 2 |"));
    }

    #[test]
    fn transport_csv_layout() {
        let s = sample_stats();
        let csv = transport_csv(&[("a", &s), ("b", &s)]);
        assert!(csv.starts_with("configuration,sent,delivered"));
        assert!(csv.contains("a,100,90,12345,4,2,3,1,17,184,2"));
        assert_eq!(csv.lines().count(), 3);
    }
}
