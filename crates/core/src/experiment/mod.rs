//! Reproduction harnesses for the paper's evaluation (§V).
//!
//! * [`accuracy`] — Fig. 3: hit accuracy vs. query-to-gold distance, for
//!   `M ∈ {10, 100, 1000, 10000}` documents and `α ∈ {0.1, 0.5, 0.9}`;
//! * [`hops`] — Table I: success rate and hop-count statistics of
//!   successful walks at `α = 0.5`;
//! * [`report`] — markdown/CSV rendering of both.
//!
//! [`Workbench`] assembles the shared experimental environment: the social
//! graph (paper: SNAP Facebook social circles; here the calibrated
//! generator or a user-supplied edge list), the word corpus (paper: GloVe
//! 300-d; here the synthetic topic-mixture corpus) and the query/gold
//! pairs of §V-B.

pub mod accuracy;
pub mod hops;
pub mod report;

use gdsearch_embed::querygen::{self, QueryGenConfig, QuerySet};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::Corpus;
use gdsearch_graph::{generators, Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SearchError;

/// Parameters of the shared experimental environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkbenchSpec {
    /// Nodes in the social graph.
    pub nodes: u32,
    /// Vocabulary size of the synthetic corpus.
    pub vocab: usize,
    /// Embedding dimensionality (paper: 300; default 64 for speed — the
    /// similarity geometry, not the dimension, drives the results).
    pub dim: usize,
    /// Topic clusters in the synthetic corpus.
    pub topics: usize,
    /// Query/gold pairs to generate (paper: 1000).
    pub num_queries: usize,
    /// Gold-pair cosine threshold (paper: 0.6).
    pub min_cosine: f32,
    /// Corpus anisotropy γ: shared-direction bias giving any word pair a
    /// baseline cosine of ≈ γ²/(1+γ²). GloVe-like noise is γ ≈ 0.3–0.5;
    /// 0 disables it.
    pub anisotropy: f64,
}

impl WorkbenchSpec {
    /// The paper's full-scale setting: a 4,039-node social graph, 20k-word
    /// corpus, 1000 query pairs.
    pub fn paper_scale() -> Self {
        WorkbenchSpec {
            nodes: generators::FACEBOOK_NODES,
            vocab: 20_000,
            dim: 64,
            topics: 400,
            num_queries: 1000,
            min_cosine: 0.6,
            anisotropy: 0.3,
        }
    }

    /// A CI-sized setting that preserves the qualitative shape (hundreds
    /// of nodes, hundreds of words).
    pub fn ci_scale() -> Self {
        WorkbenchSpec {
            nodes: 300,
            vocab: 800,
            dim: 32,
            topics: 30,
            num_queries: 60,
            min_cosine: 0.6,
            anisotropy: 0.0,
        }
    }
}

/// The assembled experimental environment.
#[derive(Debug, Clone)]
pub struct Workbench {
    /// The P2P overlay.
    pub graph: Graph,
    /// The word corpus (documents and queries).
    pub corpus: Corpus,
    /// Query/gold pairs and the irrelevant pool (§V-B).
    pub queries: QuerySet,
}

impl Workbench {
    /// Builds the environment from a spec: social-circles-like graph,
    /// synthetic corpus, query generation.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures; fails if no query pair qualifies
    /// (corpus too diffuse for the cosine threshold).
    pub fn generate<R: Rng + ?Sized>(
        spec: &WorkbenchSpec,
        rng: &mut R,
    ) -> Result<Self, SearchError> {
        let graph = generators::social_circles_like_scaled(spec.nodes, rng)?;
        let corpus = SyntheticCorpus::builder()
            .vocab_size(spec.vocab)
            .dim(spec.dim)
            .num_topics(spec.topics)
            .anisotropy(spec.anisotropy)
            .generate(rng)?;
        let queries = querygen::generate(
            &corpus,
            QueryGenConfig {
                num_queries: spec.num_queries,
                min_cosine: spec.min_cosine,
            },
            rng,
        )?;
        if queries.is_empty() {
            return Err(SearchError::invalid_parameter(
                "no query pair met the cosine threshold; densify the corpus",
            ));
        }
        Ok(Workbench {
            graph,
            corpus,
            queries,
        })
    }

    /// Builds the environment on a caller-supplied graph (e.g. the real
    /// SNAP `facebook_combined.txt` loaded through
    /// [`gdsearch_graph::io::read_edge_list_path`]).
    ///
    /// # Errors
    ///
    /// As [`Workbench::generate`].
    pub fn with_graph<R: Rng + ?Sized>(
        graph: Graph,
        spec: &WorkbenchSpec,
        rng: &mut R,
    ) -> Result<Self, SearchError> {
        let corpus = SyntheticCorpus::builder()
            .vocab_size(spec.vocab)
            .dim(spec.dim)
            .num_topics(spec.topics)
            .anisotropy(spec.anisotropy)
            .generate(rng)?;
        let queries = querygen::generate(
            &corpus,
            QueryGenConfig {
                num_queries: spec.num_queries,
                min_cosine: spec.min_cosine,
            },
            rng,
        )?;
        if queries.is_empty() {
            return Err(SearchError::invalid_parameter(
                "no query pair met the cosine threshold; densify the corpus",
            ));
        }
        Ok(Workbench {
            graph,
            corpus,
            queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ci_scale_workbench_builds() {
        let mut rng = StdRng::seed_from_u64(1);
        let wb = Workbench::generate(&WorkbenchSpec::ci_scale(), &mut rng).unwrap();
        assert_eq!(wb.graph.num_nodes(), 300);
        assert_eq!(wb.corpus.len(), 800);
        assert!(!wb.queries.is_empty());
        assert!(wb.queries.check_disjoint());
    }

    #[test]
    fn with_graph_uses_supplied_topology() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::grid(10, 10);
        let wb = Workbench::with_graph(g, &WorkbenchSpec::ci_scale(), &mut rng).unwrap();
        assert_eq!(wb.graph.num_nodes(), 100);
    }
}
