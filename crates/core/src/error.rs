use std::error::Error;
use std::fmt;

use gdsearch_diffusion::DiffusionError;
use gdsearch_embed::EmbedError;
use gdsearch_graph::GraphError;
use gdsearch_sim::SimError;

/// Errors produced by the decentralized search scheme.
#[derive(Debug)]
#[non_exhaustive]
pub enum SearchError {
    /// A configuration or argument is outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Propagated graph-substrate error.
    Graph(GraphError),
    /// Propagated embedding-substrate error.
    Embed(EmbedError),
    /// Propagated diffusion-substrate error.
    Diffusion(DiffusionError),
    /// Propagated simulator error.
    Sim(SimError),
}

impl SearchError {
    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        SearchError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            SearchError::Graph(e) => write!(f, "graph error: {e}"),
            SearchError::Embed(e) => write!(f, "embedding error: {e}"),
            SearchError::Diffusion(e) => write!(f, "diffusion error: {e}"),
            SearchError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Graph(e) => Some(e),
            SearchError::Embed(e) => Some(e),
            SearchError::Diffusion(e) => Some(e),
            SearchError::Sim(e) => Some(e),
            SearchError::InvalidParameter { .. } => None,
        }
    }
}

impl From<GraphError> for SearchError {
    fn from(e: GraphError) -> Self {
        SearchError::Graph(e)
    }
}

impl From<EmbedError> for SearchError {
    fn from(e: EmbedError) -> Self {
        SearchError::Embed(e)
    }
}

impl From<DiffusionError> for SearchError {
    fn from(e: DiffusionError) -> Self {
        SearchError::Diffusion(e)
    }
}

impl From<SimError> for SearchError {
    fn from(e: SimError) -> Self {
        SearchError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: SearchError = GraphError::SelfLoop { node: 1 }.into();
        assert!(e.source().is_some());
        let e: SearchError = EmbedError::EmptyCorpus.into();
        assert!(e.source().is_some());
        let e: SearchError = DiffusionError::NotConverged {
            iterations: 5,
            residual: 1.0,
        }
        .into();
        assert!(e.source().is_some());
        let e = SearchError::invalid_parameter("ttl must be positive");
        assert!(e.source().is_none());
        assert!(e.to_string().contains("ttl must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchError>();
    }
}
