//! In-process execution of the query-forwarding protocol (paper §IV-C,
//! Fig. 1).
//!
//! This is the *fast path* used by the experiment harnesses: it runs the
//! exact node operations — local retrieval, TTL decrement, candidate
//! filtering through visited memory, policy-based forwarding — without the
//! message-passing machinery. [`crate::protocol`] implements the same
//! protocol over the discrete-event simulator; an integration test pins
//! their equivalence for deterministic policies.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gdsearch_embed::topk::TopK;
use gdsearch_embed::Embedding;
use gdsearch_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::forwarding::{self, ForwardContext};
use crate::{DocId, SearchError, SearchNetwork, VisitedMemory};

/// A document a query found, with the hop at which its host was visited.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoundDoc {
    /// The placed document.
    pub doc: DocId,
    /// Relevance score (dot product of query and document embeddings).
    pub score: f32,
    /// Number of forwards taken before the hosting node was reached
    /// (0 = the querying node itself).
    pub hop: u32,
}

/// Outcome of one query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkOutcome {
    /// The top-k most relevant documents encountered, best first.
    pub results: Vec<FoundDoc>,
    /// Nodes in visit order (first entry is the querying node). For
    /// parallel walks and flooding this is the global visit order.
    pub path: Vec<NodeId>,
    /// Total forward messages spent (the bandwidth cost the paper's
    /// related-work section compares policies by).
    pub hops: u32,
    /// Number of distinct nodes visited.
    pub unique_nodes: usize,
}

impl WalkOutcome {
    /// The hop at which `doc` was found, or `None` if it was not retrieved.
    pub fn hop_of(&self, doc: DocId) -> Option<u32> {
        self.results.iter().find(|f| f.doc == doc).map(|f| f.hop)
    }

    /// Whether `doc` is among the retrieved results.
    pub fn contains(&self, doc: DocId) -> bool {
        self.results.iter().any(|f| f.doc == doc)
    }
}

/// One active walk head: a query message traversing the overlay.
struct Head {
    at: NodeId,
    ttl: u32,
    hop: u32,
    /// Visited set carried in the message (only for
    /// [`VisitedMemory::InMessage`]). Ordered set: walk results must be
    /// bit-identical across processes, and `HashSet`'s per-process hasher
    /// seed is a standing hazard for that invariant (ISSUE 6).
    carried: Option<BTreeSet<NodeId>>,
}

/// Executes a query from `start` over the prepared network.
///
/// Follows Fig. 1 of the paper at every visited node:
///
/// 1. evaluate the query against local documents (merging into the
///    query's top-k);
/// 2. decrement the TTL, discarding the walk when it expires;
/// 3. compute candidate next hops — neighbors not yet exchanged with for
///    this query (falling back to all neighbors when none remain,
///    footnote 9);
/// 4. forward according to the configured policy (greedy embedding match,
///    random, flooding, …), spawning `fanout` parallel heads.
///
/// # Errors
///
/// Returns [`SearchError::Embed`] if the query dimension disagrees with
/// the corpus and [`SearchError::Graph`] if `start` is out of range.
pub fn run<R: Rng + ?Sized>(
    network: &SearchNetwork<'_>,
    query: &Embedding,
    start: NodeId,
    rng: &mut R,
) -> Result<WalkOutcome, SearchError> {
    run_scored(network, query, start, rng, None)
}

/// [`run`] with an optional precomputed score column attached to every
/// forwarding decision.
///
/// `scores`, when present, must be
/// [`forwarding::score_column`]`(query, network.embeddings())` — the
/// serving engine's hot-column cache stores exactly that, so a walk served
/// from the cache is bitwise identical to [`run`] computing dot products
/// inline. Passing `None` is [`run`].
///
/// # Errors
///
/// As [`run`].
pub fn run_scored<R: Rng + ?Sized>(
    network: &SearchNetwork<'_>,
    query: &Embedding,
    start: NodeId,
    rng: &mut R,
    scores: Option<&[f32]>,
) -> Result<WalkOutcome, SearchError> {
    network.graph().check_node(start)?;
    if query.dim() != network.dim() {
        return Err(SearchError::Embed(
            gdsearch_embed::EmbedError::DimensionMismatch {
                expected: network.dim(),
                got: query.dim(),
            },
        ));
    }
    let config = network.config();
    let in_message = config.visited_memory() == VisitedMemory::InMessage;

    let mut results: TopK<DocId> = TopK::new(config.top_k());
    let mut found_at: BTreeMap<DocId, u32> = BTreeMap::new();
    let mut path: Vec<NodeId> = Vec::new();
    let mut seen_nodes: BTreeSet<NodeId> = BTreeSet::new();
    // Per-node "exchanged with" memory (paper: received-from ∪ sent-to).
    let mut node_memory: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    let mut forwards = 0u32;

    let mut frontier: VecDeque<Head> = VecDeque::new();
    frontier.push_back(Head {
        at: start,
        ttl: config.ttl(),
        hop: 0,
        carried: in_message.then(BTreeSet::new),
    });

    while let Some(mut head) = frontier.pop_front() {
        let u = head.at;
        let first_visit = seen_nodes.insert(u);
        if first_visit {
            path.push(u);
        }
        // (1) Local retrieval: score every local document, merge into the
        // query's top-k. A document is recorded once, at the first hop its
        // host is visited — revisits contribute nothing new.
        for &doc in network.docs_at(u) {
            if let std::collections::btree_map::Entry::Vacant(e) = found_at.entry(doc) {
                e.insert(head.hop);
                results.push(network.doc_score(query, doc), doc);
            }
        }
        // Flooding without duplicate suppression explodes; suppress
        // re-processing like real flooding implementations do.
        if config.policy() == crate::PolicyKind::Flooding && !first_visit {
            continue;
        }
        // (2) TTL check.
        if head.ttl == 0 {
            continue; // discard; response backtracks (not modeled here)
        }
        head.ttl -= 1;
        // (3) Candidate selection through visited memory.
        let neighbors = network.graph().neighbor_slice(u);
        if neighbors.is_empty() {
            continue;
        }
        let used: Box<dyn Fn(NodeId) -> bool> = if in_message {
            let carried = head.carried.clone().unwrap_or_default();
            Box::new(move |v: NodeId| carried.contains(&v))
        } else {
            let memory = node_memory.get(&u).cloned().unwrap_or_default();
            Box::new(move |v: NodeId| memory.contains(&v))
        };
        let fresh: Vec<NodeId> = neighbors.iter().copied().filter(|v| !used(*v)).collect();
        // Footnote 9: do not waste the forwarding opportunity.
        let candidates: Vec<NodeId> = if fresh.is_empty() {
            neighbors.to_vec()
        } else {
            fresh
        };
        // (4) Policy decision. Fanout > 1 spawns parallel walks *at the
        // querying node* (§IV-C: "multiple walks are executed in
        // parallel"); every relay hop forwards a single copy — branching at
        // every hop would be exponential flooding, not parallel walks.
        let effective_fanout = if head.hop == 0 { config.fanout() } else { 1 };
        let ctx = ForwardContext {
            node: u,
            candidates: &candidates,
            query,
            node_embeddings: network.embeddings(),
            graph: network.graph(),
            fanout: effective_fanout,
            scores,
        };
        let picks = forwarding::select_next_hops(config.policy(), &ctx, rng);
        for v in picks {
            forwards += 1;
            if in_message {
                let mut carried = head.carried.clone().unwrap_or_default();
                carried.insert(u);
                frontier.push_back(Head {
                    at: v,
                    ttl: head.ttl,
                    hop: head.hop + 1,
                    carried: Some(carried),
                });
            } else {
                node_memory.entry(u).or_default().insert(v);
                node_memory.entry(v).or_default().insert(u);
                frontier.push_back(Head {
                    at: v,
                    ttl: head.ttl,
                    hop: head.hop + 1,
                    carried: None,
                });
            }
        }
    }

    let results = results
        .into_sorted()
        .into_iter()
        .map(|s| FoundDoc {
            doc: s.item,
            score: s.score,
            hop: found_at[&s.item],
        })
        .collect();
    Ok(WalkOutcome {
        results,
        unique_nodes: path.len(),
        path,
        hops: forwards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placement, PolicyKind, SchemeConfig};
    use gdsearch_embed::synthetic::SyntheticCorpus;
    use gdsearch_embed::{Corpus, WordId};
    use gdsearch_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn corpus(seed: u64) -> Corpus {
        SyntheticCorpus::builder()
            .vocab_size(120)
            .dim(24)
            .num_topics(6)
            .topic_noise(0.4)
            .background_fraction(0.2)
            .generate(&mut rng(seed))
            .unwrap()
    }

    fn network_on<'g>(
        graph: &'g Graph,
        corpus: &Corpus,
        placement: &Placement,
        config: &SchemeConfig,
        seed: u64,
    ) -> SearchNetwork<'g> {
        SearchNetwork::build(graph, corpus, placement, config, &mut rng(seed)).unwrap()
    }

    #[test]
    fn finds_local_document_at_hop_zero() {
        let g = generators::ring(6).unwrap();
        let c = corpus(1);
        let words = vec![WordId::new(0), WordId::new(1)];
        let mut r = rng(2);
        let p = Placement::uniform(&g, &words, &mut r).unwrap();
        let net = network_on(&g, &c, &p, &SchemeConfig::default(), 3);
        let host = p.host(0);
        let out = run(&net, c.embedding(p.word(0)), host, &mut rng(4)).unwrap();
        assert_eq!(out.hop_of(0), Some(0));
        assert_eq!(out.path[0], host);
    }

    #[test]
    fn ttl_bounds_messages_for_single_walk() {
        let g = generators::ring(30).unwrap();
        let c = corpus(5);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(6)).unwrap();
        let cfg = SchemeConfig::builder().ttl(7).build().unwrap();
        let net = network_on(&g, &c, &p, &cfg, 7);
        let out = run(
            &net,
            c.embedding(WordId::new(3)),
            NodeId::new(0),
            &mut rng(8),
        )
        .unwrap();
        assert!(out.hops <= 7, "single walk spends at most TTL forwards");
        assert!(out.path.len() <= 8);
    }

    #[test]
    fn greedy_walk_reaches_adjacent_gold() {
        // Gold document on a neighbor: the first forwarding decision must
        // pick it (its diffused embedding carries the gold signal).
        let g = generators::complete(5);
        let c = corpus(9);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(10)).unwrap();
        let host = p.host(0);
        let start = NodeId::new((host.as_u32() + 1) % 5);
        let net = network_on(&g, &c, &p, &SchemeConfig::default(), 11);
        let out = run(&net, c.embedding(WordId::new(0)), start, &mut rng(12)).unwrap();
        assert_eq!(
            out.hop_of(0),
            Some(1),
            "gold one hop away must be hit first"
        );
    }

    #[test]
    fn flooding_covers_ttl_ball() {
        let g = generators::ring(12).unwrap();
        let c = corpus(13);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(14)).unwrap();
        let cfg = SchemeConfig::builder()
            .policy(PolicyKind::Flooding)
            .ttl(3)
            .build()
            .unwrap();
        let net = network_on(&g, &c, &p, &cfg, 15);
        let out = run(
            &net,
            c.embedding(WordId::new(1)),
            NodeId::new(0),
            &mut rng(16),
        )
        .unwrap();
        // Ring ball of radius 3 around node 0 = 7 nodes.
        assert_eq!(out.unique_nodes, 7);
    }

    #[test]
    fn fanout_spawns_parallel_heads() {
        let g = generators::complete(8);
        let c = corpus(17);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(18)).unwrap();
        let cfg = SchemeConfig::builder().fanout(2).ttl(2).build().unwrap();
        let net = network_on(&g, &c, &p, &cfg, 19);
        let out = run(
            &net,
            c.embedding(WordId::new(2)),
            NodeId::new(0),
            &mut rng(20),
        )
        .unwrap();
        // The origin spawns 2 walks; each walk spends at most TTL forwards.
        assert!(out.hops > 2, "fanout 2 must spend more than a single walk");
        assert!(out.hops <= 2 * 2);
    }

    #[test]
    fn in_message_memory_never_revisits_until_forced() {
        let g = generators::ring(10).unwrap();
        let c = corpus(21);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(22)).unwrap();
        let cfg = SchemeConfig::builder()
            .visited_memory(crate::VisitedMemory::InMessage)
            .policy(PolicyKind::RandomWalk)
            .ttl(9)
            .build()
            .unwrap();
        let net = network_on(&g, &c, &p, &cfg, 23);
        let out = run(
            &net,
            c.embedding(WordId::new(1)),
            NodeId::new(0),
            &mut rng(24),
        )
        .unwrap();
        // On a ring with full TTL and in-message memory, the walk cannot
        // revisit: it sweeps 10 distinct nodes.
        assert_eq!(out.unique_nodes, 10);
    }

    #[test]
    fn node_memory_prefers_unvisited() {
        // On a path graph, node memory forces the walk to march outward
        // rather than oscillate.
        let g = generators::path(8);
        let c = corpus(25);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(26)).unwrap();
        let cfg = SchemeConfig::builder()
            .policy(PolicyKind::RandomWalk)
            .ttl(7)
            .build()
            .unwrap();
        let net = network_on(&g, &c, &p, &cfg, 27);
        let out = run(
            &net,
            c.embedding(WordId::new(1)),
            NodeId::new(0),
            &mut rng(28),
        )
        .unwrap();
        assert_eq!(out.unique_nodes, 8, "walk must sweep the whole path");
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::ring(5).unwrap();
        let c = corpus(29);
        let words = vec![WordId::new(0)];
        let p = Placement::uniform(&g, &words, &mut rng(30)).unwrap();
        let net = network_on(&g, &c, &p, &SchemeConfig::default(), 31);
        assert!(run(
            &net,
            c.embedding(WordId::new(1)),
            NodeId::new(99),
            &mut rng(32)
        )
        .is_err());
        assert!(run(&net, &Embedding::zeros(3), NodeId::new(0), &mut rng(33)).is_err());
    }

    #[test]
    fn results_are_sorted_and_bounded() {
        let g = generators::complete(6);
        let c = corpus(34);
        let words: Vec<WordId> = (0..20).map(WordId::new).collect();
        let p = Placement::uniform(&g, &words, &mut rng(35)).unwrap();
        let cfg = SchemeConfig::builder().top_k(5).ttl(10).build().unwrap();
        let net = network_on(&g, &c, &p, &cfg, 36);
        let out = run(
            &net,
            c.embedding(WordId::new(50)),
            NodeId::new(0),
            &mut rng(37),
        )
        .unwrap();
        assert!(out.results.len() <= 5);
        for w in out.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
