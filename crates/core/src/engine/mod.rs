//! Concurrent query engine: admission batching and hot-column caching
//! over a built [`SearchNetwork`], behind a typed serving API.
//!
//! The scheme's original entry points ([`SearchNetwork::query`] and
//! friends) execute one walk at a time against a caller-managed network.
//! This module adds the serving layer the paper's deployment story needs:
//! a long-lived [`QueryEngine`] that owns the network, admits requests
//! through a bounded queue, executes compatible requests as one batch on
//! a deterministic work pool, and serves repeated *query classes* from a
//! capacity-bounded cache of precomputed score columns.
//!
//! # Determinism contract
//!
//! Every serving knob is results-neutral. A cached column is
//! [`forwarding::score_column`], which evaluates the *same* dot-product
//! kernel [`forwarding::candidate_score`] uses inline, over every node —
//! so a walk that consults the column observes bitwise the scores it
//! would have computed itself. Batch composition and thread count only
//! change *which worker* runs a walk, never its inputs: each request
//! carries its own seed, and [`workpool`] reassembles outputs in
//! submission order. Cache capacity and eviction therefore affect only
//! the hit/miss counters, never a score. `tests/engine_equivalence.rs`
//! proptests this across batch sizes, thread counts and cache capacities.
//!
//! # Example
//!
//! ```
//! use gdsearch::engine::{EngineConfig, QueryEngine, QueryRequest};
//! use gdsearch::Placement;
//! use gdsearch_embed::synthetic::SyntheticCorpus;
//! use gdsearch_embed::WordId;
//! use gdsearch_graph::{generators, NodeId};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = generators::social_circles_like_scaled(120, &mut rng)?;
//! let corpus = SyntheticCorpus::builder().vocab_size(60).dim(16).generate(&mut rng)?;
//! let words: Vec<WordId> = (0..3).map(WordId::new).collect();
//! let placement = Placement::uniform(&graph, &words, &mut rng)?;
//! let engine = QueryEngine::build(
//!     &graph, &corpus, &placement, EngineConfig::default(), &mut rng,
//! )?;
//!
//! // Enqueue two requests for the same hot query, then serve the batch.
//! let hot = corpus.embedding(WordId::new(0)).clone();
//! engine.submit(QueryRequest::new(hot.clone(), NodeId::new(3), 11))?;
//! engine.submit(QueryRequest::new(hot, NodeId::new(9), 12))?;
//! let responses = engine.step()?;
//! assert_eq!(responses.len(), 2);
//! assert!(engine.stats().cache.inserts >= 1);
//! # Ok(())
//! # }
//! ```

mod cache;
mod config;

pub use cache::{CacheStats, ColumnCache};
pub use config::{validate_scheme, CacheCapacity, ConfigError, EngineConfig, EngineConfigBuilder};

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use gdsearch_diffusion::workpool;
use gdsearch_embed::{Corpus, Embedding};
use gdsearch_graph::{Graph, NodeId};
use gdsearch_obs::Observer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::walk::WalkOutcome;
use crate::{forwarding, walk, Placement, SearchError, SearchNetwork};

/// Locks a mutex, recovering the data on poison: every critical section
/// here leaves the cache/queue structurally valid (counters may undercount
/// after a worker panic, values never change — columns are pure).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A serving-layer failure: admission rejected the request, or the
/// underlying scheme failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The submission queue is at capacity; retry after a [`QueryEngine::step`].
    QueueFull {
        /// The configured bound the queue is at.
        capacity: usize,
    },
    /// The start node does not exist in the served graph.
    StartOutOfRange {
        /// The rejected start node.
        start: NodeId,
        /// Number of nodes in the served graph.
        num_nodes: usize,
    },
    /// The query's dimensionality differs from the served corpus.
    DimensionMismatch {
        /// The engine's embedding dimension.
        expected: usize,
        /// The request's dimension.
        got: usize,
    },
    /// The engine configuration was rejected (see [`ConfigError`]).
    InvalidConfig(ConfigError),
    /// A scheme-level failure (build or walk).
    Search(SearchError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            EngineError::StartOutOfRange { start, num_nodes } => write!(
                f,
                "start node {start:?} outside the served graph ({num_nodes} nodes)"
            ),
            EngineError::DimensionMismatch { expected, got } => write!(
                f,
                "query dimension {got} does not match the served corpus ({expected})"
            ),
            EngineError::InvalidConfig(e) => write!(f, "engine configuration: {e}"),
            EngineError::Search(e) => write!(f, "scheme: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::InvalidConfig(e) => Some(e),
            EngineError::Search(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::InvalidConfig(e)
    }
}

impl From<SearchError> for EngineError {
    fn from(e: SearchError) -> Self {
        EngineError::Search(e)
    }
}

impl From<EngineError> for SearchError {
    /// Collapses the serving layer's typed failures back into the scheme's
    /// error type, for callers (the experiment drivers) whose signatures
    /// predate the engine.
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Search(e) => e,
            EngineError::InvalidConfig(e) => e.into(),
            other => SearchError::InvalidParameter {
                reason: other.to_string(),
            },
        }
    }
}

/// How the engine satisfied a request's score lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheVerdict {
    /// The request's class column was resident before its batch ran.
    Hit,
    /// The column was computed (and cached) for this batch.
    Miss,
    /// The request carried no class, or the cache is disabled; candidate
    /// scores were computed inline during the walk.
    Bypass,
}

/// One admitted query: the embedding to search for, the node it enters
/// the overlay at, and the seed of its private walk RNG.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    query: Embedding,
    start: NodeId,
    seed: u64,
    class: Option<u64>,
}

impl QueryRequest {
    /// A request whose cache class is derived from the query embedding's
    /// exact bit pattern — repeated submissions of the same embedding
    /// share one cached column automatically.
    #[must_use]
    pub fn new(query: Embedding, start: NodeId, seed: u64) -> Self {
        let class = Self::class_of(&query);
        QueryRequest {
            query,
            start,
            seed,
            class: Some(class),
        }
    }

    /// Overrides the cache class. Callers grouping requests under an
    /// external key (e.g. a keyword id) must guarantee that one class
    /// always carries one exact embedding — the engine trusts the key.
    #[must_use]
    pub fn with_class(mut self, class: u64) -> Self {
        self.class = Some(class);
        self
    }

    /// Opts this request out of column caching; its walk scores
    /// candidates inline ([`CacheVerdict::Bypass`]).
    #[must_use]
    pub fn uncached(mut self) -> Self {
        self.class = None;
        self
    }

    /// The canonical cache class of an embedding: FNV-1a over its
    /// component bit patterns. Bitwise-equal embeddings (and only those)
    /// share a class.
    #[must_use]
    pub fn class_of(query: &Embedding) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for component in query.as_slice() {
            for byte in component.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// The query embedding.
    #[must_use]
    pub fn query(&self) -> &Embedding {
        &self.query
    }

    /// The node the query enters the overlay at.
    #[must_use]
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The seed of this request's private walk RNG.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The cache class, or `None` for an uncached request.
    #[must_use]
    pub fn class(&self) -> Option<u64> {
        self.class
    }
}

/// The engine's answer to one request: the walk outcome plus serving
/// metadata (the admission id doubles as the trace handle passed to
/// [`Observer::set_query`] on the observed path).
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Admission id (monotone per engine); trace rows of this query's
    /// observed execution carry it.
    pub id: u64,
    /// How the cache served this request.
    pub verdict: CacheVerdict,
    /// The walk's results, identical to a sequential uncached
    /// [`SearchNetwork::query`] with the same seed.
    pub outcome: WalkOutcome,
}

/// Aggregate serving counters since engine construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted by [`QueryEngine::submit`].
    pub submitted: u64,
    /// Requests rejected with [`EngineError::QueueFull`].
    pub rejected: u64,
    /// Walks executed (batched and direct).
    pub executed: u64,
    /// Batches dispatched by [`QueryEngine::step`].
    pub batches: u64,
    /// Hot-column cache counters.
    pub cache: CacheStats,
}

/// One admitted request mid-batch: id, request, resolved score column
/// (if any), and how the cache answered.
type ResolvedSlot = (u64, QueryRequest, Option<Arc<Vec<f32>>>, CacheVerdict);

/// A long-lived serving engine over one built [`SearchNetwork`].
///
/// See the [module docs](self) for the serving model and the determinism
/// contract. Construction mirrors the network's:
/// [`build`](QueryEngine::build) /
/// [`build_observed`](QueryEngine::build_observed) run the full setup
/// phase, [`from_network`](QueryEngine::from_network) wraps an existing
/// network.
#[derive(Debug)]
pub struct QueryEngine<'g> {
    network: SearchNetwork<'g>,
    config: EngineConfig,
    queue: Mutex<VecDeque<(u64, QueryRequest)>>,
    cache: Mutex<ColumnCache>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    executed: AtomicU64,
    batches: AtomicU64,
}

impl<'g> QueryEngine<'g> {
    /// Builds the search network with `config`'s scheme and wraps it in an
    /// engine.
    ///
    /// # Errors
    ///
    /// As [`SearchNetwork::build`].
    pub fn build<R: Rng + ?Sized>(
        graph: &'g Graph,
        corpus: &Corpus,
        placement: &Placement,
        config: EngineConfig,
        rng: &mut R,
    ) -> Result<Self, EngineError> {
        let network = SearchNetwork::build(graph, corpus, placement, config.scheme(), rng)?;
        Ok(Self::from_network(network, config))
    }

    /// [`QueryEngine::build`] with build-phase observability (see
    /// [`SearchNetwork::build_observed`]).
    ///
    /// # Errors
    ///
    /// As [`SearchNetwork::build`].
    pub fn build_observed<R: Rng + ?Sized>(
        graph: &'g Graph,
        corpus: &Corpus,
        placement: &Placement,
        config: EngineConfig,
        rng: &mut R,
        obs: &mut Observer<'_>,
    ) -> Result<Self, EngineError> {
        let network =
            SearchNetwork::build_observed(graph, corpus, placement, config.scheme(), rng, obs)?;
        Ok(Self::from_network(network, config))
    }

    /// Wraps an already-built network. The network's own scheme
    /// configuration stays authoritative for walk behaviour;
    /// `config.scheme()` is only used by the `build*` constructors.
    #[must_use]
    pub fn from_network(network: SearchNetwork<'g>, config: EngineConfig) -> Self {
        let cache = ColumnCache::new(config.cache_capacity());
        QueryEngine {
            network,
            config,
            queue: Mutex::new(VecDeque::new()),
            cache: Mutex::new(cache),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// The served network.
    #[must_use]
    pub fn network(&self) -> &SearchNetwork<'g> {
        &self.network
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Admits a request into the submission queue, returning its id.
    ///
    /// Validation happens here — at admission, not execution — so a bad
    /// request is rejected before it can occupy queue space.
    ///
    /// # Errors
    ///
    /// [`EngineError::StartOutOfRange`] / [`EngineError::DimensionMismatch`]
    /// for malformed requests, [`EngineError::QueueFull`] past the
    /// configured capacity.
    pub fn submit(&self, request: QueryRequest) -> Result<u64, EngineError> {
        self.validate(&request)?;
        let mut queue = lock(&self.queue);
        if queue.len() >= self.config.queue_capacity() {
            drop(queue);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::QueueFull {
                capacity: self.config.queue_capacity(),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        queue.push_back((id, request));
        drop(queue);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Number of admitted requests not yet executed.
    #[must_use]
    pub fn pending(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Drains up to one batch window from the queue and executes it,
    /// returning responses in admission order. An empty queue yields an
    /// empty vector.
    ///
    /// # Errors
    ///
    /// Any walk failure ([`EngineError::Search`]); admitted requests are
    /// pre-validated, so this is unreachable for healthy networks.
    pub fn step(&self) -> Result<Vec<QueryResponse>, EngineError> {
        let batch: Vec<(u64, QueryRequest)> = {
            let mut queue = lock(&self.queue);
            let take = self.config.batch_size().min(queue.len());
            queue.drain(..take).collect()
        };
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.run_batch(batch)
    }

    /// Executes one request immediately (a singleton batch), bypassing
    /// the queue but not the cache.
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::submit`] plus any walk failure.
    pub fn execute(&self, request: QueryRequest) -> Result<QueryResponse, EngineError> {
        self.validate(&request)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut responses = self.run_batch(vec![(id, request)])?;
        responses
            .pop()
            .ok_or(EngineError::Search(SearchError::InvalidParameter {
                reason: "engine produced no response for a singleton batch".into(),
            }))
    }

    /// Compatibility path for the experiment drivers: executes a query
    /// with a *caller-supplied* RNG (preserving the caller's RNG stream
    /// bit-for-bit) and inline scoring. Equivalent to
    /// [`SearchNetwork::query`] — no queueing, no caching.
    ///
    /// # Errors
    ///
    /// As [`SearchNetwork::query`].
    pub fn execute_with_rng<R: Rng + ?Sized>(
        &self,
        query: &Embedding,
        start: NodeId,
        rng: &mut R,
    ) -> Result<WalkOutcome, SearchError> {
        let out = self.network.query(query, start, rng);
        if out.is_ok() {
            self.executed.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Executes one request with observability: the column resolution
    /// runs under an `engine.cache` span (sink counters
    /// `engine.cache.hits` / `.misses` / `.bypasses`), the walk under the
    /// scheme's usual `scheme.walk` span, and the trace rows carry the
    /// response id via [`Observer::set_query`].
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::execute`].
    pub fn execute_observed(
        &self,
        request: QueryRequest,
        obs: &mut Observer<'_>,
    ) -> Result<QueryResponse, EngineError> {
        self.validate(&request)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        obs.set_query(id);
        let cache_span = obs.enter("engine.cache");
        obs.trace_begin("engine.cache");
        let (column, verdict) = self.resolve_column(&request);
        obs.trace_end("engine.cache");
        obs.exit(cache_span);
        let sink = obs.sink();
        match verdict {
            CacheVerdict::Hit => sink.add("engine.cache.hits", 1),
            CacheVerdict::Miss => sink.add("engine.cache.misses", 1),
            CacheVerdict::Bypass => sink.add("engine.cache.bypasses", 1),
        }
        let mut rng = StdRng::seed_from_u64(request.seed);
        let scores = column.as_ref().map(|c| c.as_slice());
        let outcome = self.network.query_scored_observed(
            &request.query,
            request.start,
            &mut rng,
            scores,
            obs,
        )?;
        self.executed.fetch_add(1, Ordering::Relaxed);
        Ok(QueryResponse {
            id,
            verdict,
            outcome,
        })
    }

    /// Drops the cached column of `class` (e.g. after re-placing the
    /// documents that back it). The next request of that class recomputes
    /// it from the current network.
    pub fn invalidate(&self, class: u64) {
        lock(&self.cache).invalidate(class);
    }

    /// Drops every cached column.
    pub fn invalidate_all(&self) {
        lock(&self.cache).invalidate_all();
    }

    /// Serving counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache: lock(&self.cache).stats(),
        }
    }

    fn validate(&self, request: &QueryRequest) -> Result<(), EngineError> {
        let num_nodes = self.network.graph().num_nodes();
        if self.network.graph().check_node(request.start).is_err() {
            return Err(EngineError::StartOutOfRange {
                start: request.start,
                num_nodes,
            });
        }
        if request.query.dim() != self.network.dim() {
            return Err(EngineError::DimensionMismatch {
                expected: self.network.dim(),
                got: request.query.dim(),
            });
        }
        Ok(())
    }

    /// Resolves the score column for a single request: cache hit, or
    /// compute-and-insert, or bypass.
    fn resolve_column(&self, request: &QueryRequest) -> (Option<Arc<Vec<f32>>>, CacheVerdict) {
        let class = match request
            .class
            .filter(|_| self.config.cache_capacity().enabled())
        {
            Some(class) => class,
            None => return (None, CacheVerdict::Bypass),
        };
        if let Some(column) = lock(&self.cache).get(class) {
            return (Some(column), CacheVerdict::Hit);
        }
        let column = Arc::new(forwarding::score_column(
            &request.query,
            self.network.embeddings(),
        ));
        lock(&self.cache).insert(class, Arc::clone(&column));
        (Some(column), CacheVerdict::Miss)
    }

    /// Executes one batch: resolve resident columns under the cache lock,
    /// compute the missing classes in parallel *outside* it, then run
    /// every walk on the work pool with its private seeded RNG.
    fn run_batch(
        &self,
        batch: Vec<(u64, QueryRequest)>,
    ) -> Result<Vec<QueryResponse>, EngineError> {
        let threads = self.config.threads();
        let cache_on = self.config.cache_capacity().enabled();

        // Phase 1: one pass under the lock — classify every request as
        // hit / miss / bypass, recording the distinct missing classes
        // (first occurrence's embedding is the class representative).
        let mut resolved: Vec<ResolvedSlot> = Vec::with_capacity(batch.len());
        let mut missing: Vec<(u64, Embedding)> = Vec::new();
        {
            let mut cache = lock(&self.cache);
            for (id, request) in batch {
                match request.class.filter(|_| cache_on) {
                    Some(class) => match cache.get(class) {
                        Some(column) => {
                            resolved.push((id, request, Some(column), CacheVerdict::Hit));
                        }
                        None => {
                            if !missing.iter().any(|(c, _)| *c == class) {
                                missing.push((class, request.query.clone()));
                            }
                            resolved.push((id, request, None, CacheVerdict::Miss));
                        }
                    },
                    None => resolved.push((id, request, None, CacheVerdict::Bypass)),
                }
            }
        }

        // Phase 2: fill the missing columns in parallel (pure work, no
        // lock), then publish them to the cache in one critical section.
        if !missing.is_empty() {
            let embeddings = self.network.embeddings();
            let computed: Vec<(u64, Arc<Vec<f32>>)> =
                workpool::map_batched(&missing, threads, |(class, query)| {
                    (
                        *class,
                        Arc::new(forwarding::score_column(query, embeddings)),
                    )
                });
            let mut cache = lock(&self.cache);
            for (class, column) in &computed {
                cache.insert(*class, Arc::clone(column));
            }
            drop(cache);
            for slot in &mut resolved {
                if slot.3 == CacheVerdict::Miss && slot.2.is_none() {
                    if let Some(class) = slot.1.class {
                        if let Some((_, column)) = computed.iter().find(|(c, _)| *c == class) {
                            slot.2 = Some(Arc::clone(column));
                        }
                    }
                }
            }
        }

        // Phase 3: the walks. Each request runs on its own seeded RNG, so
        // worker assignment cannot leak into results; map_batched returns
        // outputs in submission order.
        let network = &self.network;
        let outcomes: Vec<Result<WalkOutcome, SearchError>> =
            workpool::map_batched(&resolved, threads, |(_, request, column, _)| {
                let mut rng = StdRng::seed_from_u64(request.seed);
                let scores = column.as_ref().map(|c| c.as_slice());
                walk::run_scored(network, &request.query, request.start, &mut rng, scores)
            });

        let executed = u64::try_from(resolved.len()).unwrap_or(u64::MAX);
        let mut responses = Vec::with_capacity(resolved.len());
        for ((id, _, _, verdict), outcome) in resolved.into_iter().zip(outcomes) {
            responses.push(QueryResponse {
                id,
                verdict,
                outcome: outcome?,
            });
        }
        self.executed.fetch_add(executed, Ordering::Relaxed);
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_embed::synthetic::SyntheticCorpus;
    use gdsearch_embed::WordId;
    use gdsearch_graph::generators;

    struct Fixture {
        graph: Graph,
        corpus: Corpus,
        placement: Placement,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(99);
        let graph = generators::social_circles_like_scaled(150, &mut rng).unwrap();
        let corpus = SyntheticCorpus::builder()
            .vocab_size(80)
            .dim(16)
            .generate(&mut rng)
            .unwrap();
        let words: Vec<WordId> = (0..10).map(WordId::new).collect();
        let placement = Placement::uniform(&graph, &words, &mut rng).unwrap();
        Fixture {
            graph,
            corpus,
            placement,
        }
    }

    fn engine_with<'g>(fx: &'g Fixture, config: EngineConfig) -> QueryEngine<'g> {
        let mut rng = StdRng::seed_from_u64(7);
        QueryEngine::build(&fx.graph, &fx.corpus, &fx.placement, config, &mut rng).unwrap()
    }

    fn request(fx: &Fixture, word: u32, start: u32, seed: u64) -> QueryRequest {
        QueryRequest::new(
            fx.corpus.embedding(WordId::new(word)).clone(),
            NodeId::new(start),
            seed,
        )
    }

    #[test]
    fn engine_matches_sequential_network_query() {
        let fx = fixture();
        let engine = engine_with(&fx, EngineConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let network = SearchNetwork::build(
            &fx.graph,
            &fx.corpus,
            &fx.placement,
            EngineConfig::default().scheme(),
            &mut rng,
        )
        .unwrap();
        for (word, start, seed) in [(0u32, 5u32, 1u64), (1, 40, 2), (0, 5, 1)] {
            let response = engine.execute(request(&fx, word, start, seed)).unwrap();
            let mut walk_rng = StdRng::seed_from_u64(seed);
            let baseline = network
                .query(
                    fx.corpus.embedding(WordId::new(word)),
                    NodeId::new(start),
                    &mut walk_rng,
                )
                .unwrap();
            assert_eq!(response.outcome.results, baseline.results);
            assert_eq!(response.outcome.path, baseline.path);
        }
        // The repeated (0, 5, 1) request must have been a cache hit.
        assert!(engine.stats().cache.hits >= 1);
    }

    #[test]
    fn submit_validates_at_admission() {
        let fx = fixture();
        let engine = engine_with(&fx, EngineConfig::default());
        let bad_start = QueryRequest::new(
            fx.corpus.embedding(WordId::new(0)).clone(),
            NodeId::new(100_000),
            1,
        );
        assert!(matches!(
            engine.submit(bad_start),
            Err(EngineError::StartOutOfRange { .. })
        ));
        let bad_dim = QueryRequest::new(Embedding::zeros(3), NodeId::new(0), 1);
        assert!(matches!(
            engine.submit(bad_dim),
            Err(EngineError::DimensionMismatch {
                expected: 16,
                got: 3
            })
        ));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn queue_rejects_past_capacity() {
        let fx = fixture();
        let config = EngineConfig::builder()
            .queue_capacity(2)
            .batch_size(2)
            .build()
            .unwrap();
        let engine = engine_with(&fx, config);
        assert!(engine.submit(request(&fx, 0, 1, 1)).is_ok());
        assert!(engine.submit(request(&fx, 1, 2, 2)).is_ok());
        assert!(matches!(
            engine.submit(request(&fx, 2, 3, 3)),
            Err(EngineError::QueueFull { capacity: 2 })
        ));
        let stats = engine.stats();
        assert_eq!((stats.submitted, stats.rejected), (2, 1));
        // Draining the queue re-opens admission.
        assert_eq!(engine.step().unwrap().len(), 2);
        assert!(engine.submit(request(&fx, 2, 3, 3)).is_ok());
    }

    #[test]
    fn step_preserves_admission_order_and_batch_window() {
        let fx = fixture();
        let config = EngineConfig::builder()
            .batch_size(2)
            .threads(3)
            .build()
            .unwrap();
        let engine = engine_with(&fx, config);
        let ids: Vec<u64> = (0..5)
            .map(|i| engine.submit(request(&fx, i, 10 + i, u64::from(i))))
            .collect::<Result<_, _>>()
            .unwrap();
        let first = engine.step().unwrap();
        assert_eq!(
            first.iter().map(|r| r.id).collect::<Vec<_>>(),
            ids.get(..2).unwrap()
        );
        assert_eq!(engine.pending(), 3);
        assert_eq!(engine.step().unwrap().len(), 2);
        assert_eq!(engine.step().unwrap().len(), 1);
        assert!(engine.step().unwrap().is_empty());
        assert_eq!(engine.stats().batches, 3);
    }

    #[test]
    fn batch_deduplicates_shared_classes() {
        let fx = fixture();
        let config = EngineConfig::builder().batch_size(4).build().unwrap();
        let engine = engine_with(&fx, config);
        for (start, seed) in [(1u32, 1u64), (2, 2), (3, 3), (4, 4)] {
            engine.submit(request(&fx, 0, start, seed)).unwrap();
        }
        let responses = engine.step().unwrap();
        assert_eq!(responses.len(), 4);
        // All four share one class: one insert, every verdict Miss (the
        // column was not resident when the batch was admitted).
        let stats = engine.stats();
        assert_eq!(stats.cache.inserts, 1);
        assert!(responses.iter().all(|r| r.verdict == CacheVerdict::Miss));
        // A follow-up batch of the same class is all hits.
        engine.submit(request(&fx, 0, 5, 5)).unwrap();
        let next = engine.step().unwrap();
        assert!(next.iter().all(|r| r.verdict == CacheVerdict::Hit));
    }

    #[test]
    fn uncached_and_disabled_requests_bypass() {
        let fx = fixture();
        let engine = engine_with(&fx, EngineConfig::default());
        let response = engine.execute(request(&fx, 0, 1, 1).uncached()).unwrap();
        assert_eq!(response.verdict, CacheVerdict::Bypass);

        let disabled = EngineConfig::builder()
            .cache_capacity(CacheCapacity::Disabled)
            .build()
            .unwrap();
        let engine = engine_with(&fx, disabled);
        let response = engine.execute(request(&fx, 0, 1, 1)).unwrap();
        assert_eq!(response.verdict, CacheVerdict::Bypass);
        assert_eq!(engine.stats().cache.inserts, 0);
    }

    #[test]
    fn invalidation_forces_recomputation_of_identical_column() {
        let fx = fixture();
        let engine = engine_with(&fx, EngineConfig::default());
        let first = engine.execute(request(&fx, 0, 1, 1)).unwrap();
        assert_eq!(first.verdict, CacheVerdict::Miss);
        engine.invalidate(QueryRequest::class_of(fx.corpus.embedding(WordId::new(0))));
        let second = engine.execute(request(&fx, 0, 1, 1)).unwrap();
        assert_eq!(second.verdict, CacheVerdict::Miss);
        assert_eq!(first.outcome.results, second.outcome.results);
        assert_eq!(engine.stats().cache.invalidations, 1);

        engine.invalidate_all();
        let third = engine.execute(request(&fx, 0, 1, 1)).unwrap();
        assert_eq!(third.verdict, CacheVerdict::Miss);
        assert_eq!(third.outcome.results, first.outcome.results);
    }

    #[test]
    fn class_of_separates_bitwise_distinct_embeddings() {
        let a = Embedding::new(vec![1.0, 2.0]);
        let b = Embedding::new(vec![1.0, 2.0]);
        let c = Embedding::new(vec![1.0, 2.25]);
        assert_eq!(QueryRequest::class_of(&a), QueryRequest::class_of(&b));
        assert_ne!(QueryRequest::class_of(&a), QueryRequest::class_of(&c));
        // -0.0 and 0.0 compare equal but differ bitwise: distinct classes.
        let pos = Embedding::new(vec![0.0]);
        let neg = Embedding::new(vec![-0.0]);
        assert_ne!(QueryRequest::class_of(&pos), QueryRequest::class_of(&neg));
    }

    #[test]
    fn execute_with_rng_preserves_caller_stream() {
        let fx = fixture();
        let engine = engine_with(&fx, EngineConfig::default());
        let mut build_rng = StdRng::seed_from_u64(7);
        let network = SearchNetwork::build(
            &fx.graph,
            &fx.corpus,
            &fx.placement,
            EngineConfig::default().scheme(),
            &mut build_rng,
        )
        .unwrap();
        // Thread ONE RNG through two queries on each side; identical
        // outcomes prove the engine consumed the stream identically.
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        for word in [WordId::new(0), WordId::new(1)] {
            let via_engine = engine
                .execute_with_rng(fx.corpus.embedding(word), NodeId::new(8), &mut rng_a)
                .unwrap();
            let direct = network
                .query(fx.corpus.embedding(word), NodeId::new(8), &mut rng_b)
                .unwrap();
            assert_eq!(via_engine.results, direct.results);
            assert_eq!(via_engine.path, direct.path);
        }
    }
}
