//! Deterministic hot-column cache for the serving engine.
//!
//! The cache maps a query-class key to the precomputed score column for
//! that class (`forwarding::score_column`). Because a column is a pure
//! function of the query embedding and the built network, cache capacity,
//! eviction order, and lookup interleaving can only change the *counters*
//! reported by [`CacheStats`] — never the scores a walk observes. That is
//! the load-bearing determinism argument for the engine: a hit returns
//! bitwise the same column a miss would recompute.
//!
//! Eviction is least-recently-used by a monotone sequence number, with
//! ties broken by the smaller class key, so the eviction victim is a
//! deterministic function of the operation history (no hashing, no
//! wall-clock, no randomness).

use std::collections::BTreeMap;
use std::sync::Arc;

use super::config::CacheCapacity;

/// Counters describing cache behaviour since construction (or the last
/// [`ColumnCache::reset_stats`]). Monotone except under explicit reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a resident column.
    pub hits: u64,
    /// Lookups that found nothing resident.
    pub misses: u64,
    /// Columns inserted.
    pub inserts: u64,
    /// Columns evicted to respect the capacity bound.
    pub evictions: u64,
    /// Columns removed by `invalidate` / `invalidate_all`.
    pub invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    column: Arc<Vec<f32>>,
    last_used: u64,
}

/// A capacity-bounded, deterministically evicting score-column cache.
#[derive(Debug)]
pub struct ColumnCache {
    entries: BTreeMap<u64, Entry>,
    capacity: CacheCapacity,
    seq: u64,
    stats: CacheStats,
}

impl ColumnCache {
    /// Creates an empty cache with the given capacity policy.
    #[must_use]
    pub fn new(capacity: CacheCapacity) -> Self {
        Self {
            entries: BTreeMap::new(),
            capacity,
            seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up the column for `class`, bumping its recency on a hit.
    pub fn get(&mut self, class: u64) -> Option<Arc<Vec<f32>>> {
        if !self.capacity.enabled() {
            self.stats.misses = self.stats.misses.saturating_add(1);
            return None;
        }
        self.seq = self.seq.saturating_add(1);
        match self.entries.get_mut(&class) {
            Some(entry) => {
                entry.last_used = self.seq;
                self.stats.hits = self.stats.hits.saturating_add(1);
                Some(Arc::clone(&entry.column))
            }
            None => {
                self.stats.misses = self.stats.misses.saturating_add(1);
                None
            }
        }
    }

    /// Inserts (or refreshes) the column for `class`, evicting the
    /// least-recently-used entry first if the capacity bound requires it.
    pub fn insert(&mut self, class: u64, column: Arc<Vec<f32>>) {
        if !self.capacity.enabled() {
            return;
        }
        self.seq = self.seq.saturating_add(1);
        if let CacheCapacity::Bounded(cap) = self.capacity {
            // Make room only when adding a brand-new class.
            if !self.entries.contains_key(&class) {
                while self.entries.len() >= cap {
                    let victim = self
                        .entries
                        .iter()
                        .min_by_key(|(key, entry)| (entry.last_used, **key))
                        .map(|(key, _)| *key);
                    match victim {
                        Some(key) => {
                            self.entries.remove(&key);
                            self.stats.evictions = self.stats.evictions.saturating_add(1);
                        }
                        None => break,
                    }
                }
            }
        }
        self.entries.insert(
            class,
            Entry {
                column,
                last_used: self.seq,
            },
        );
        self.stats.inserts = self.stats.inserts.saturating_add(1);
    }

    /// Drops the column for `class`, if resident.
    pub fn invalidate(&mut self, class: u64) {
        if self.entries.remove(&class).is_some() {
            self.stats.invalidations = self.stats.invalidations.saturating_add(1);
        }
    }

    /// Drops every resident column.
    pub fn invalidate_all(&mut self) {
        let dropped = self.entries.len();
        self.entries.clear();
        self.stats.invalidations = self
            .stats
            .invalidations
            .saturating_add(u64::try_from(dropped).unwrap_or(u64::MAX));
    }

    /// Number of resident columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no column is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes all counters without touching resident columns.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(v: f32) -> Arc<Vec<f32>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_returns_the_inserted_column() {
        let mut cache = ColumnCache::new(CacheCapacity::Bounded(2));
        assert!(cache.get(7).is_none());
        cache.insert(7, col(1.5));
        let got = cache.get(7).unwrap();
        assert_eq!(*got, vec![1.5]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut cache = ColumnCache::new(CacheCapacity::Bounded(2));
        cache.insert(1, col(1.0));
        cache.insert(2, col(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, col(3.0));
        assert!(cache.get(2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_tie_breaks_on_smaller_key() {
        let mut cache = ColumnCache::new(CacheCapacity::Bounded(2));
        cache.insert(5, col(5.0));
        cache.insert(9, col(9.0));
        // Force identical recency by resetting through invalidate_all and
        // re-inserting is awkward; instead rely on insert order: 5 is
        // older, so it is the victim regardless of key order.
        cache.insert(1, col(1.0));
        assert!(cache.get(5).is_none());
        assert!(cache.get(9).is_some());
    }

    #[test]
    fn zero_capacity_and_disabled_never_store() {
        for cap in [CacheCapacity::Disabled, CacheCapacity::Bounded(0)] {
            let mut cache = ColumnCache::new(cap);
            cache.insert(1, col(1.0));
            assert!(cache.get(1).is_none());
            assert!(cache.is_empty());
            assert_eq!(cache.stats().inserts, 0);
        }
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut cache = ColumnCache::new(CacheCapacity::Unbounded);
        for class in 0..64 {
            cache.insert(class, col(class as f32));
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn invalidate_drops_only_the_named_class() {
        let mut cache = ColumnCache::new(CacheCapacity::Unbounded);
        cache.insert(1, col(1.0));
        cache.insert(2, col(2.0));
        cache.invalidate(1);
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.stats().invalidations, 1);

        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn reinserting_a_resident_class_does_not_evict_peers() {
        let mut cache = ColumnCache::new(CacheCapacity::Bounded(2));
        cache.insert(1, col(1.0));
        cache.insert(2, col(2.0));
        cache.insert(1, col(1.5));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(*cache.get(1).unwrap(), vec![1.5]);
        assert!(cache.get(2).is_some());
    }
}
