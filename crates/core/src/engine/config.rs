//! Typed configuration for the serving engine, plus the consolidated
//! validation of [`SchemeConfig`] it is built on.
//!
//! Before this module, every scheme parameter was checked by an ad-hoc
//! `if … return Err(invalid_parameter(…))` inside
//! [`SchemeConfig::builder`](crate::SchemeConfig::builder)'s `build`;
//! [`validate_scheme`] replaces that scatter with one typed pass whose
//! [`ConfigError`] variants name the violated constraint, and the legacy
//! builder now delegates here (converting through
//! `From<ConfigError> for SearchError` so its signature is unchanged).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DiffusionEngine, SchemeConfig, SearchError};

/// A configuration constraint violation, one variant per rejection path.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `alpha` must lie in `(0, 1]` and be finite.
    AlphaOutOfRange {
        /// The rejected teleport probability.
        alpha: f32,
    },
    /// `ttl` must be positive.
    ZeroTtl,
    /// `fanout` must be positive.
    ZeroFanout,
    /// `top_k` must be positive.
    ZeroTopK,
    /// `tolerance` must be positive and finite.
    ToleranceOutOfRange {
        /// The rejected tolerance.
        tolerance: f32,
    },
    /// `max_iterations` must be positive.
    ZeroMaxIterations,
    /// Push `rmax` must be positive and finite.
    PushRmaxOutOfRange {
        /// The rejected granularity.
        rmax: f32,
    },
    /// A worker-thread count must be positive.
    ZeroThreads {
        /// Which engine's thread knob was zero.
        engine: &'static str,
    },
    /// A shard count must be positive.
    ZeroShards {
        /// Which engine's shard knob was zero.
        engine: &'static str,
    },
    /// Distributed frame loss must lie in `[0, 1)` so frames can
    /// eventually arrive.
    LossProbabilityOutOfRange {
        /// The rejected loss probability.
        loss: f64,
    },
    /// The distributed transport profile was rejected by the simulator's
    /// builders (bandwidth / queue bounds).
    Transport {
        /// The simulator's reason.
        reason: String,
    },
    /// The engine's submission queue must admit at least one request.
    ZeroQueueCapacity,
    /// The engine's batch window must admit at least one request.
    ZeroBatchSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::AlphaOutOfRange { alpha } => {
                write!(f, "alpha must lie in (0, 1], got {alpha}")
            }
            ConfigError::ZeroTtl => write!(f, "ttl must be positive"),
            ConfigError::ZeroFanout => write!(f, "fanout must be positive"),
            ConfigError::ZeroTopK => write!(f, "top_k must be positive"),
            ConfigError::ToleranceOutOfRange { tolerance } => {
                write!(f, "tolerance must be positive and finite, got {tolerance}")
            }
            ConfigError::ZeroMaxIterations => write!(f, "max_iterations must be positive"),
            ConfigError::PushRmaxOutOfRange { rmax } => {
                write!(f, "push rmax must be positive and finite, got {rmax}")
            }
            ConfigError::ZeroThreads { engine } => {
                write!(f, "{engine} threads must be positive")
            }
            ConfigError::ZeroShards { engine } => {
                write!(f, "{engine} shard count must be positive")
            }
            ConfigError::LossProbabilityOutOfRange { loss } => write!(
                f,
                "distributed loss probability must lie in [0, 1) so frames can \
                 eventually arrive, got {loss}"
            ),
            ConfigError::Transport { reason } => write!(f, "transport profile: {reason}"),
            ConfigError::ZeroQueueCapacity => {
                write!(f, "engine queue capacity must be positive")
            }
            ConfigError::ZeroBatchSize => write!(f, "engine batch size must be positive"),
        }
    }
}

impl Error for ConfigError {}

impl From<ConfigError> for SearchError {
    fn from(e: ConfigError) -> Self {
        SearchError::InvalidParameter {
            reason: e.to_string(),
        }
    }
}

/// Validates every scheme parameter, returning the first violated
/// constraint. The single source of truth behind both
/// [`SchemeConfig::builder`](crate::SchemeConfig::builder) and
/// [`EngineConfigBuilder::build`].
pub fn validate_scheme(c: &SchemeConfig) -> Result<(), ConfigError> {
    let alpha = c.alpha();
    if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
        return Err(ConfigError::AlphaOutOfRange { alpha });
    }
    if c.ttl() == 0 {
        return Err(ConfigError::ZeroTtl);
    }
    if c.fanout() == 0 {
        return Err(ConfigError::ZeroFanout);
    }
    if c.top_k() == 0 {
        return Err(ConfigError::ZeroTopK);
    }
    let tolerance = c.tolerance();
    if !tolerance.is_finite() || tolerance <= 0.0 {
        return Err(ConfigError::ToleranceOutOfRange { tolerance });
    }
    if c.max_iterations() == 0 {
        return Err(ConfigError::ZeroMaxIterations);
    }
    match c.engine() {
        DiffusionEngine::Push { rmax, threads } => {
            if !rmax.is_finite() || rmax <= 0.0 {
                return Err(ConfigError::PushRmaxOutOfRange { rmax });
            }
            if threads == 0 {
                return Err(ConfigError::ZeroThreads { engine: "push" });
            }
        }
        DiffusionEngine::Dense { threads } => {
            if threads == 0 {
                return Err(ConfigError::ZeroThreads { engine: "dense" });
            }
        }
        DiffusionEngine::Sharded { shards, threads } => {
            if shards == 0 {
                return Err(ConfigError::ZeroShards { engine: "sharded" });
            }
            if threads == 0 {
                return Err(ConfigError::ZeroThreads { engine: "sharded" });
            }
        }
        DiffusionEngine::Distributed {
            shards,
            threads,
            transport,
        } => {
            if shards == 0 {
                return Err(ConfigError::ZeroShards {
                    engine: "distributed",
                });
            }
            if threads == 0 {
                return Err(ConfigError::ZeroThreads {
                    engine: "distributed",
                });
            }
            if !(0.0..1.0).contains(&transport.loss_probability) {
                return Err(ConfigError::LossProbabilityOutOfRange {
                    loss: transport.loss_probability,
                });
            }
            // Bandwidth/queue bounds are validated by the simulator's
            // builders; surface violations at build time, not inside the
            // diffusion run.
            transport
                .to_transport_config()
                .map_err(|e| ConfigError::Transport {
                    reason: e.to_string(),
                })?;
        }
        DiffusionEngine::Auto | DiffusionEngine::PerSource | DiffusionEngine::Gossip => {}
    }
    Ok(())
}

/// Capacity policy of the engine's hot-column cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheCapacity {
    /// Never cache; every query scores candidates inline.
    Disabled,
    /// Hold at most this many columns, evicting the least recently used.
    /// `Bounded(0)` behaves like [`CacheCapacity::Disabled`].
    Bounded(usize),
    /// Hold every column ever computed.
    Unbounded,
}

impl CacheCapacity {
    /// Whether a cache under this policy can ever store a column.
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, CacheCapacity::Disabled | CacheCapacity::Bounded(0))
    }
}

/// Full configuration of a [`QueryEngine`](crate::engine::QueryEngine):
/// the scheme it serves plus the serving-side knobs (admission queue,
/// batch window, worker threads, hot-column cache).
///
/// None of the serving knobs affect results — batched, threaded and
/// cached execution is bitwise identical to sequential uncached queries
/// (proptested in `tests/engine_equivalence.rs`). They only trade
/// throughput, latency and memory.
///
/// # Example
///
/// ```
/// use gdsearch::engine::{CacheCapacity, EngineConfig};
/// use gdsearch::SchemeConfig;
///
/// # fn main() -> Result<(), gdsearch::engine::ConfigError> {
/// let cfg = EngineConfig::builder()
///     .scheme(SchemeConfig::default())
///     .batch_size(32)
///     .threads(4)
///     .cache_capacity(CacheCapacity::Bounded(256))
///     .build()?;
/// assert_eq!(cfg.batch_size(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    scheme: SchemeConfig,
    queue_capacity: usize,
    batch_size: usize,
    threads: usize,
    cache_capacity: CacheCapacity,
}

impl Default for EngineConfig {
    /// Paper-default scheme, 1024-deep queue, 16-query batches, 4 worker
    /// threads, 256 cached columns.
    fn default() -> Self {
        EngineConfig {
            scheme: SchemeConfig::default(),
            queue_capacity: 1024,
            batch_size: 16,
            threads: 4,
            cache_capacity: CacheCapacity::Bounded(256),
        }
    }
}

impl EngineConfig {
    /// Starts a builder initialized with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// The scheme configuration the engine builds its network with.
    pub fn scheme(&self) -> &SchemeConfig {
        &self.scheme
    }

    /// Bound of the submission queue; [`submit`] rejects past it.
    ///
    /// [`submit`]: crate::engine::QueryEngine::submit
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Maximum number of admitted queries one [`step`] executes together.
    ///
    /// [`step`]: crate::engine::QueryEngine::step
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Worker threads of the batched column/walk dispatch (results are
    /// identical for every count).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Capacity policy of the hot-column cache.
    pub fn cache_capacity(&self) -> CacheCapacity {
        self.cache_capacity
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// The scheme configuration (personalization, diffusion engine, walk
    /// policy, …) the engine serves.
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeConfig) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Bound of the submission queue (must be positive).
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Batch window of one engine step (must be positive).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Worker threads of the batched dispatch (must be positive).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Capacity policy of the hot-column cache.
    #[must_use]
    pub fn cache_capacity(mut self, cache_capacity: CacheCapacity) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Any scheme violation (see [`validate_scheme`]) plus
    /// [`ConfigError::ZeroQueueCapacity`], [`ConfigError::ZeroBatchSize`]
    /// and [`ConfigError::ZeroThreads`] for the serving knobs.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        validate_scheme(&self.config.scheme)?;
        if self.config.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.config.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.config.threads == 0 {
            return Err(ConfigError::ZeroThreads { engine: "serving" });
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfigBuilder;
    use crate::TransportProfile;

    /// A raw (unvalidated) scheme configuration straight off the builder.
    fn raw(f: impl FnOnce(SchemeConfigBuilder) -> SchemeConfigBuilder) -> SchemeConfig {
        f(SchemeConfig::builder()).config
    }

    #[test]
    fn every_scheme_rejection_path_is_typed() {
        // One assertion per ConfigError variant reachable from a scheme.
        assert_eq!(
            validate_scheme(&raw(|b| b.alpha(0.0))),
            Err(ConfigError::AlphaOutOfRange { alpha: 0.0 })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.alpha(1.5))),
            Err(ConfigError::AlphaOutOfRange { alpha: 1.5 })
        );
        assert!(matches!(
            validate_scheme(&raw(|b| b.alpha(f32::NAN))),
            Err(ConfigError::AlphaOutOfRange { alpha }) if alpha.is_nan()
        ));
        assert_eq!(
            validate_scheme(&raw(|b| b.ttl(0))),
            Err(ConfigError::ZeroTtl)
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.fanout(0))),
            Err(ConfigError::ZeroFanout)
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.top_k(0))),
            Err(ConfigError::ZeroTopK)
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.tolerance(-1.0))),
            Err(ConfigError::ToleranceOutOfRange { tolerance: -1.0 })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.max_iterations(0))),
            Err(ConfigError::ZeroMaxIterations)
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::Push {
                rmax: 0.0,
                threads: 1
            }))),
            Err(ConfigError::PushRmaxOutOfRange { rmax: 0.0 })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::push(0)))),
            Err(ConfigError::ZeroThreads { engine: "push" })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::dense(0)))),
            Err(ConfigError::ZeroThreads { engine: "dense" })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::sharded(0, 1)))),
            Err(ConfigError::ZeroShards { engine: "sharded" })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::sharded(1, 0)))),
            Err(ConfigError::ZeroThreads { engine: "sharded" })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::distributed(0, 1)))),
            Err(ConfigError::ZeroShards {
                engine: "distributed"
            })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::distributed(1, 0)))),
            Err(ConfigError::ZeroThreads {
                engine: "distributed"
            })
        );
        assert_eq!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::Distributed {
                shards: 1,
                threads: 1,
                transport: TransportProfile {
                    loss_probability: 1.0,
                    ..TransportProfile::default()
                },
            }))),
            Err(ConfigError::LossProbabilityOutOfRange { loss: 1.0 })
        );
        assert!(matches!(
            validate_scheme(&raw(|b| b.engine(DiffusionEngine::Distributed {
                shards: 1,
                threads: 1,
                transport: TransportProfile::default().with_bandwidth(0),
            }))),
            Err(ConfigError::Transport { .. })
        ));
        assert_eq!(validate_scheme(&raw(|b| b)), Ok(()));
    }

    #[test]
    fn legacy_builder_delegates_to_typed_validation() {
        // The SchemeConfig builder's public signature still yields
        // SearchError, carrying the typed variant's message.
        let err = SchemeConfig::builder().ttl(0).build().unwrap_err();
        assert!(err.to_string().contains("ttl must be positive"));
        assert!(SchemeConfig::builder().build().is_ok());
    }

    #[test]
    fn engine_builder_validates_serving_knobs() {
        assert_eq!(
            EngineConfig::builder().queue_capacity(0).build(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            EngineConfig::builder().batch_size(0).build(),
            Err(ConfigError::ZeroBatchSize)
        );
        assert_eq!(
            EngineConfig::builder().threads(0).build(),
            Err(ConfigError::ZeroThreads { engine: "serving" })
        );
        // A scheme violation surfaces through the engine builder too.
        assert_eq!(
            EngineConfig::builder().scheme(raw(|b| b.ttl(0))).build(),
            Err(ConfigError::ZeroTtl)
        );
        let cfg = EngineConfig::builder()
            .queue_capacity(8)
            .batch_size(4)
            .threads(2)
            .cache_capacity(CacheCapacity::Unbounded)
            .build()
            .unwrap();
        assert_eq!(cfg.queue_capacity(), 8);
        assert_eq!(cfg.batch_size(), 4);
        assert_eq!(cfg.threads(), 2);
        assert_eq!(cfg.cache_capacity(), CacheCapacity::Unbounded);
    }

    #[test]
    fn cache_capacity_enablement() {
        assert!(!CacheCapacity::Disabled.enabled());
        assert!(!CacheCapacity::Bounded(0).enabled());
        assert!(CacheCapacity::Bounded(1).enabled());
        assert!(CacheCapacity::Unbounded.enabled());
    }

    #[test]
    fn config_error_converts_to_search_error() {
        let e: SearchError = ConfigError::ZeroTtl.into();
        assert!(e.to_string().contains("ttl must be positive"));
    }
}
