use gdsearch_graph::sparse::Normalization;
use serde::{Deserialize, Serialize};

use crate::forwarding::PolicyKind;
use crate::personalization::Aggregation;
use crate::SearchError;

/// Which engine evaluates the PPR diffusion when a [`SearchNetwork`] is
/// built.
///
/// All engines compute the same fixed point (verified by the diffusion
/// crate's tests); they differ in cost and in how faithfully they model the
/// decentralized protocol.
///
/// [`SearchNetwork`]: crate::SearchNetwork
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DiffusionEngine {
    /// Choose per placement: forward push when the personalization is very
    /// sparse and the graph is large, per-source decomposition when few
    /// nodes hold documents, dense power iteration otherwise. At
    /// `gdsearch_diffusion::sharded::AUTO_SHARD_MIN_NODES` nodes and above
    /// the sharded engines take over so diffusion state is partitioned by
    /// node range instead of monolithic.
    #[default]
    Auto,
    /// Dense synchronous power iteration (paper Eq. 7), its row sweeps
    /// sharded across `threads` scoped workers. Output is identical for
    /// every thread count.
    Dense {
        /// Worker threads of the parallel row sweep (≥ 1).
        threads: usize,
    },
    /// Per-source PPR decomposition (exploits sparse personalization);
    /// columns are computed over the diffusion workpool on all available
    /// cores (identical output for every worker count).
    PerSource,
    /// Asynchronous gossip simulation (paper §IV-B's actual protocol) —
    /// slowest, most faithful.
    Gossip,
    /// Forward-push residual engine: work proportional to the pushed mass
    /// instead of `O(iters · E)`, batched across source nodes on `threads`
    /// scoped workers. Output is identical for every thread count.
    Push {
        /// Initial frontier granularity (`r(u) > rmax · deg(u)` enters the
        /// push queue). A schedule knob only — results always meet the
        /// configured diffusion tolerance. Must be positive and finite.
        rmax: f32,
        /// Worker threads of the batched multi-source driver (≥ 1).
        threads: usize,
    },
    /// Diffusion on partitioned state: the node set is split into `shards`
    /// contiguous ranges (per-shard CSR rows + halo index) and the sweep /
    /// push runs shard-locally, exchanging only boundary data between
    /// steps. Sparse personalizations use the sharded push, dense ones the
    /// sharded power sweep. Output is identical for every
    /// `(shards, threads)` combination.
    Sharded {
        /// Number of node-range shards state is partitioned into (≥ 1;
        /// clamped to the node count).
        shards: usize,
        /// Worker threads the shards are scheduled over (≥ 1).
        threads: usize,
    },
    /// The sharded engines with every shard on its own simulated machine:
    /// halo columns and cross-shard residual mass travel as wire frames
    /// over bounded, bandwidth-limited reactor links (`gdsearch-dist`),
    /// with round barriers and retransmission of lost frames. Output is
    /// bit-for-bit identical to [`DiffusionEngine::Sharded`] for every
    /// `(shards, threads)` and every `transport` that lets frames
    /// eventually arrive — the interconnect changes cost, never results.
    Distributed {
        /// Number of node-range shards / simulated machines (≥ 1; clamped
        /// to the node count).
        shards: usize,
        /// Worker threads per sweep step (≥ 1).
        threads: usize,
        /// The simulated interconnect between shard machines.
        transport: TransportProfile,
    },
}

/// A serializable description of the interconnect between shard machines,
/// converted to the simulator's
/// [`TransportConfig`](gdsearch_sim::TransportConfig) when a
/// [`DiffusionEngine::Distributed`] network is built.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportProfile {
    /// Link bandwidth in bytes per simulator tick (must be positive).
    pub bytes_per_tick: u64,
    /// Bounded per-link send-queue depth, in messages (must be positive).
    pub queue_capacity: usize,
    /// Independent per-frame loss probability in `[0, 1)` (lost frames are
    /// retransmitted at the next round barrier).
    pub loss_probability: f64,
    /// Seed of the transport's loss randomness.
    pub seed: u64,
}

impl Default for TransportProfile {
    /// An ample interconnect: 1 MiB/tick links, deep queues, no loss.
    fn default() -> Self {
        TransportProfile {
            bytes_per_tick: 1024 * 1024,
            queue_capacity: 4096,
            loss_probability: 0.0,
            seed: 0,
        }
    }
}

impl TransportProfile {
    /// An ample lossless interconnect (the default).
    #[must_use]
    pub fn ample() -> Self {
        TransportProfile::default()
    }

    /// An ample interconnect with the given bandwidth in bytes per tick.
    #[must_use]
    pub fn with_bandwidth(mut self, bytes_per_tick: u64) -> Self {
        self.bytes_per_tick = bytes_per_tick;
        self
    }

    /// The equivalent simulator configuration.
    pub(crate) fn to_transport_config(self) -> Result<gdsearch_sim::TransportConfig, SearchError> {
        let invalid = |e: gdsearch_sim::SimError| SearchError::invalid_parameter(e.to_string());
        Ok(gdsearch_sim::TransportConfig::default()
            .with_bandwidth(self.bytes_per_tick)
            .map_err(invalid)?
            .with_queue_capacity(self.queue_capacity)
            .map_err(invalid)?
            .with_loss_probability(self.loss_probability)
            .map_err(invalid)?
            .with_seed(self.seed))
    }
}

impl DiffusionEngine {
    /// The push engine with its default granularity (`rmax = 1e-4`) and
    /// the given worker count.
    #[must_use]
    pub fn push(threads: usize) -> Self {
        DiffusionEngine::Push {
            rmax: 1e-4,
            threads,
        }
    }

    /// The dense power-iteration engine with the given worker count.
    #[must_use]
    pub fn dense(threads: usize) -> Self {
        DiffusionEngine::Dense { threads }
    }

    /// The sharded engine with the given partition and worker counts.
    #[must_use]
    pub fn sharded(shards: usize, threads: usize) -> Self {
        DiffusionEngine::Sharded { shards, threads }
    }

    /// The distributed engine with the given partition and worker counts
    /// over an ample lossless interconnect.
    #[must_use]
    pub fn distributed(shards: usize, threads: usize) -> Self {
        DiffusionEngine::Distributed {
            shards,
            threads,
            transport: TransportProfile::default(),
        }
    }
}

/// How forwarding avoids revisiting nodes (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VisitedMemory {
    /// Nodes remember, per query, which neighbors they received from or
    /// sent to — the paper's choice, protecting connection privacy.
    #[default]
    NodeMemory,
    /// The query message carries the visited-node set — slightly more
    /// efficient, rejected by the paper on privacy grounds; kept as an
    /// ablation.
    InMessage,
}

/// Full configuration of the diffusion-search scheme.
///
/// Defaults mirror the paper's evaluation: `alpha = 0.5`, TTL 50, single
/// walk (fanout 1), top-1 retrieval, sum aggregation, PPR-greedy
/// forwarding, column-stochastic normalization.
///
/// # Example
///
/// ```
/// use gdsearch::{PolicyKind, SchemeConfig};
///
/// # fn main() -> Result<(), gdsearch::SearchError> {
/// let cfg = SchemeConfig::builder()
///     .alpha(0.9)
///     .ttl(50)
///     .fanout(2)
///     .policy(PolicyKind::PprGreedy)
///     .build()?;
/// assert_eq!(cfg.alpha(), 0.9);
/// assert_eq!(cfg.fanout(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeConfig {
    alpha: f32,
    ttl: u32,
    fanout: usize,
    top_k: usize,
    aggregation: Aggregation,
    policy: PolicyKind,
    engine: DiffusionEngine,
    visited_memory: VisitedMemory,
    normalization: Normalization,
    tolerance: f32,
    max_iterations: usize,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            alpha: 0.5,
            ttl: 50,
            fanout: 1,
            top_k: 1,
            aggregation: Aggregation::Sum,
            policy: PolicyKind::PprGreedy,
            engine: DiffusionEngine::Auto,
            visited_memory: VisitedMemory::NodeMemory,
            normalization: Normalization::ColumnStochastic,
            tolerance: 1e-5,
            max_iterations: 1000,
        }
    }
}

/// Builder for [`SchemeConfig`].
#[derive(Debug, Clone, Default)]
pub struct SchemeConfigBuilder {
    // Crate-visible so engine::config's tests can exercise the typed
    // validator on raw (unvalidated) configurations.
    pub(crate) config: SchemeConfig,
}

impl SchemeConfigBuilder {
    /// Teleport probability `a ∈ (0, 1]` (paper: 0.1 / 0.5 / 0.9).
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Maximum number of forwards per walk (paper: 50).
    pub fn ttl(mut self, ttl: u32) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// Number of parallel walk heads spawned at the querying node
    /// (1 = the paper's single random walk); relays always forward one
    /// copy per walk.
    pub fn fanout(mut self, fanout: usize) -> Self {
        self.config.fanout = fanout;
        self
    }

    /// Number of top results a query tracks (paper: 1).
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.config.top_k = top_k;
        self
    }

    /// Personalization aggregation (paper: sum).
    pub fn aggregation(mut self, aggregation: Aggregation) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Forwarding policy (paper: PPR-greedy; others are baselines).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Diffusion engine.
    pub fn engine(mut self, engine: DiffusionEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Visited-node bookkeeping mode.
    pub fn visited_memory(mut self, visited_memory: VisitedMemory) -> Self {
        self.config.visited_memory = visited_memory;
        self
    }

    /// Transition-matrix normalization.
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.config.normalization = normalization;
        self
    }

    /// Diffusion convergence tolerance.
    pub fn tolerance(mut self, tolerance: f32) -> Self {
        self.config.tolerance = tolerance;
        self
    }

    /// Diffusion iteration budget.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.max_iterations = max_iterations;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// Validation is delegated to the typed
    /// [`engine::validate_scheme`](crate::engine::validate_scheme) pass;
    /// this signature converts its [`ConfigError`](crate::engine::ConfigError)
    /// into the legacy [`SearchError::InvalidParameter`] shape.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::InvalidParameter`] for `alpha` outside
    /// `(0, 1]`, zero `ttl`, zero `fanout`, zero `top_k`, non-positive
    /// `tolerance`, zero `max_iterations`, or invalid engine knobs.
    pub fn build(self) -> Result<SchemeConfig, SearchError> {
        crate::engine::validate_scheme(&self.config)?;
        Ok(self.config)
    }
}

impl SchemeConfig {
    /// Starts a builder initialized with the paper's defaults.
    pub fn builder() -> SchemeConfigBuilder {
        SchemeConfigBuilder::default()
    }

    /// Teleport probability `a`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Walk TTL.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Parallel walk heads spawned at the querying node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of tracked top results.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Personalization aggregation.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Forwarding policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Diffusion engine.
    pub fn engine(&self) -> DiffusionEngine {
        self.engine
    }

    /// Visited-node bookkeeping mode.
    pub fn visited_memory(&self) -> VisitedMemory {
        self.visited_memory
    }

    /// Transition normalization.
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Diffusion tolerance.
    pub fn tolerance(&self) -> f32 {
        self.tolerance
    }

    /// Diffusion iteration budget.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// The equivalent PPR configuration for the diffusion substrate.
    pub(crate) fn ppr_config(&self) -> Result<gdsearch_diffusion::PprConfig, SearchError> {
        Ok(gdsearch_diffusion::PprConfig::new(self.alpha)?
            .with_tolerance(self.tolerance)?
            .with_max_iterations(self.max_iterations)
            .with_normalization(self.normalization))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SchemeConfig::default();
        assert_eq!(c.alpha(), 0.5);
        assert_eq!(c.ttl(), 50);
        assert_eq!(c.fanout(), 1);
        assert_eq!(c.top_k(), 1);
        assert_eq!(c.aggregation(), Aggregation::Sum);
        assert_eq!(c.policy(), PolicyKind::PprGreedy);
        assert_eq!(c.visited_memory(), VisitedMemory::NodeMemory);
    }

    #[test]
    fn builder_validates() {
        assert!(SchemeConfig::builder().alpha(0.0).build().is_err());
        assert!(SchemeConfig::builder().alpha(1.2).build().is_err());
        assert!(SchemeConfig::builder().ttl(0).build().is_err());
        assert!(SchemeConfig::builder().fanout(0).build().is_err());
        assert!(SchemeConfig::builder().top_k(0).build().is_err());
        assert!(SchemeConfig::builder().tolerance(0.0).build().is_err());
        assert!(SchemeConfig::builder().max_iterations(0).build().is_err());
        assert!(SchemeConfig::builder().alpha(0.9).ttl(10).build().is_ok());
    }

    #[test]
    fn builder_validates_push_engine_knobs() {
        let with_engine = |engine| SchemeConfig::builder().engine(engine).build();
        assert!(with_engine(DiffusionEngine::Push {
            rmax: 0.0,
            threads: 2
        })
        .is_err());
        assert!(with_engine(DiffusionEngine::Push {
            rmax: f32::NAN,
            threads: 2
        })
        .is_err());
        assert!(with_engine(DiffusionEngine::Push {
            rmax: 1e-4,
            threads: 0
        })
        .is_err());
        assert!(with_engine(DiffusionEngine::push(4)).is_ok());
    }

    #[test]
    fn builder_validates_dense_and_sharded_knobs() {
        let with_engine = |engine| SchemeConfig::builder().engine(engine).build();
        assert!(with_engine(DiffusionEngine::dense(0)).is_err());
        assert!(with_engine(DiffusionEngine::dense(4)).is_ok());
        assert!(with_engine(DiffusionEngine::sharded(0, 2)).is_err());
        assert!(with_engine(DiffusionEngine::sharded(2, 0)).is_err());
        assert!(with_engine(DiffusionEngine::sharded(4, 2)).is_ok());
    }

    #[test]
    fn builder_validates_distributed_knobs() {
        let with_engine = |engine| SchemeConfig::builder().engine(engine).build();
        assert!(with_engine(DiffusionEngine::distributed(0, 2)).is_err());
        assert!(with_engine(DiffusionEngine::distributed(2, 0)).is_err());
        assert!(with_engine(DiffusionEngine::distributed(4, 2)).is_ok());
        let with_transport = |transport| {
            with_engine(DiffusionEngine::Distributed {
                shards: 2,
                threads: 1,
                transport,
            })
        };
        assert!(with_transport(TransportProfile::default().with_bandwidth(0)).is_err());
        assert!(with_transport(TransportProfile {
            queue_capacity: 0,
            ..TransportProfile::default()
        })
        .is_err());
        assert!(with_transport(TransportProfile {
            loss_probability: 1.0,
            ..TransportProfile::default()
        })
        .is_err());
        assert!(with_transport(TransportProfile {
            loss_probability: f64::NAN,
            ..TransportProfile::default()
        })
        .is_err());
        assert!(with_transport(TransportProfile {
            loss_probability: 0.2,
            seed: 7,
            ..TransportProfile::default()
        })
        .is_ok());
        assert!(with_transport(TransportProfile::ample().with_bandwidth(1024)).is_ok());
    }

    #[test]
    fn ppr_config_propagates_settings() {
        let c = SchemeConfig::builder()
            .alpha(0.3)
            .tolerance(1e-4)
            .max_iterations(77)
            .build()
            .unwrap();
        let ppr = c.ppr_config().unwrap();
        assert_eq!(ppr.alpha(), 0.3);
        assert_eq!(ppr.tolerance(), 1e-4);
        assert_eq!(ppr.max_iterations(), 77);
    }
}
