//! Node personalization vectors (paper §IV-A).
//!
//! A node `u` summarizes its local collection `D_u` as
//! `e0_u = Σ_{d ∈ D_u} e_d`. Thanks to the linearity of the dot product,
//! `e_q · e0_u = Σ_d e_q · e_d` — the total relevance of the node's
//! documents (Eq. 3). The paper notes this "runs the risk of prioritizing
//! nodes with many irrelevant documents" and calls better aggregations
//! future work (§VI); [`Aggregation`] implements the paper's sum plus three
//! such candidates, which `ablation_aggregation` compares.

use gdsearch_embed::Embedding;
use gdsearch_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::SearchError;

/// How a node folds its document embeddings into one personalization
/// vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// Plain sum (the paper's choice; preserves Eq. 3 linearity, favors
    /// document-rich nodes).
    #[default]
    Sum,
    /// Mean of document embeddings: removes the document-count bias, at the
    /// cost of Eq. 3's total-relevance semantics.
    Mean,
    /// Sum followed by L2 normalization: keeps only the *direction* of the
    /// collection summary.
    L2Normalized,
    /// Sum scaled by `1 / (1 + deg(u))`: discounts hub nodes whose signal
    /// would otherwise dominate diffusion.
    DegreeScaled,
}

/// Computes the personalization vector of one node from its document
/// embeddings.
///
/// Returns the zero vector for a node without documents.
///
/// # Errors
///
/// Returns [`SearchError::Embed`] if document embeddings disagree on
/// dimensionality.
///
/// # Example
///
/// ```
/// use gdsearch::personalization::{aggregate, Aggregation};
/// use gdsearch_embed::Embedding;
///
/// # fn main() -> Result<(), gdsearch::SearchError> {
/// let docs = [
///     Embedding::new(vec![1.0, 0.0]),
///     Embedding::new(vec![0.0, 3.0]),
/// ];
/// let sum = aggregate(docs.iter(), 2, Aggregation::Sum, 0)?;
/// assert_eq!(sum.as_slice(), &[1.0, 3.0]);
/// let mean = aggregate(docs.iter(), 2, Aggregation::Mean, 0)?;
/// assert_eq!(mean.as_slice(), &[0.5, 1.5]);
/// # Ok(())
/// # }
/// ```
pub fn aggregate<'a, I>(
    documents: I,
    dim: usize,
    aggregation: Aggregation,
    degree: usize,
) -> Result<Embedding, SearchError>
where
    I: IntoIterator<Item = &'a Embedding>,
{
    let mut sum = Embedding::zeros(dim);
    let mut count = 0usize;
    for doc in documents {
        sum.add_in_place(doc).map_err(SearchError::from)?;
        count += 1;
    }
    Ok(match aggregation {
        Aggregation::Sum => sum,
        Aggregation::Mean => {
            if count > 0 {
                sum.scaled(1.0 / count as f32)
            } else {
                sum
            }
        }
        Aggregation::L2Normalized => sum.normalized(),
        Aggregation::DegreeScaled => sum.scaled(1.0 / (1.0 + degree as f32)),
    })
}

/// Computes the sparse personalization rows for every node that hosts at
/// least one document.
///
/// `docs_at` maps each hosting node to the embeddings of its documents.
/// The output feeds directly into the diffusion engines' sparse entry
/// points.
///
/// # Errors
///
/// Returns [`SearchError::Graph`] for out-of-range nodes and
/// [`SearchError::Embed`] for ragged embeddings.
pub fn personalization_rows(
    graph: &Graph,
    dim: usize,
    docs_at: &[(NodeId, Vec<&Embedding>)],
    aggregation: Aggregation,
) -> Result<Vec<(NodeId, Embedding)>, SearchError> {
    let mut rows = Vec::with_capacity(docs_at.len());
    for (node, docs) in docs_at {
        graph.check_node(*node).map_err(SearchError::from)?;
        let vector = aggregate(docs.iter().copied(), dim, aggregation, graph.degree(*node))?;
        rows.push((*node, vector));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_embed::similarity;
    use gdsearch_graph::generators;

    fn docs() -> Vec<Embedding> {
        vec![
            Embedding::new(vec![1.0, 0.0, 0.0]),
            Embedding::new(vec![0.0, 2.0, 0.0]),
            Embedding::new(vec![0.0, 0.0, 4.0]),
        ]
    }

    #[test]
    fn sum_preserves_linearity_of_relevance() {
        // Eq. (3): e_q · Σ e_d == Σ e_q · e_d.
        let ds = docs();
        let q = Embedding::new(vec![0.5, -1.0, 0.25]);
        let agg = aggregate(ds.iter(), 3, Aggregation::Sum, 0).unwrap();
        let lhs = similarity::dot(&q, &agg).unwrap();
        let rhs: f32 = ds.iter().map(|d| similarity::dot(&q, d).unwrap()).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn mean_divides_by_count() {
        let agg = aggregate(docs().iter(), 3, Aggregation::Mean, 0).unwrap();
        assert_eq!(agg.as_slice(), &[1.0 / 3.0, 2.0 / 3.0, 4.0 / 3.0]);
    }

    #[test]
    fn l2_normalized_is_unit() {
        let agg = aggregate(docs().iter(), 3, Aggregation::L2Normalized, 0).unwrap();
        assert!((agg.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degree_scaled_discounts_hubs() {
        let hub = aggregate(docs().iter(), 3, Aggregation::DegreeScaled, 9).unwrap();
        let leaf = aggregate(docs().iter(), 3, Aggregation::DegreeScaled, 0).unwrap();
        assert!(hub.norm() < leaf.norm());
        assert!(
            (leaf.norm()
                - docs()
                    .iter()
                    .fold(Embedding::zeros(3), |mut a, d| {
                        a.add_in_place(d).unwrap();
                        a
                    })
                    .norm())
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn empty_documents_give_zero_vector() {
        for aggregation in [
            Aggregation::Sum,
            Aggregation::Mean,
            Aggregation::L2Normalized,
            Aggregation::DegreeScaled,
        ] {
            let agg = aggregate(std::iter::empty(), 4, aggregation, 2).unwrap();
            assert!(agg.is_zero(), "{aggregation:?}");
        }
    }

    #[test]
    fn ragged_documents_rejected() {
        let bad = [Embedding::zeros(2)];
        assert!(aggregate(bad.iter(), 3, Aggregation::Sum, 0).is_err());
    }

    #[test]
    fn rows_validate_nodes() {
        let g = generators::ring(4).unwrap();
        let ds = docs();
        let refs: Vec<&Embedding> = ds.iter().collect();
        let ok = personalization_rows(&g, 3, &[(NodeId::new(1), refs.clone())], Aggregation::Sum)
            .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].0, NodeId::new(1));
        assert!(personalization_rows(&g, 3, &[(NodeId::new(7), refs)], Aggregation::Sum).is_err());
    }
}
