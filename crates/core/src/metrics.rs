//! Small statistics helpers shared by the experiment harnesses.

/// Summary statistics of a hop-count sample, as reported in the paper's
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopStats {
    /// Number of samples.
    pub count: usize,
    /// Median (lower median for even counts, matching typical numpy
    /// reporting of integer medians).
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Computes [`HopStats`] over hop counts. Returns `None` for an empty
/// sample.
///
/// # Example
///
/// ```
/// use gdsearch::metrics::hop_stats;
///
/// let stats = hop_stats(&[1, 2, 3, 10]).unwrap();
/// assert_eq!(stats.median, 2.5);
/// assert_eq!(stats.mean, 4.0);
/// assert!(stats.std > 3.0);
/// ```
pub fn hop_stats(hops: &[u32]) -> Option<HopStats> {
    if hops.is_empty() {
        return None;
    }
    let count = hops.len();
    let mean = hops.iter().map(|&h| h as f64).sum::<f64>() / count as f64;
    let var = hops
        .iter()
        .map(|&h| {
            let d = h as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    let mut sorted: Vec<u32> = hops.to_vec();
    sorted.sort_unstable();
    let median = if count % 2 == 1 {
        sorted[count / 2] as f64
    } else {
        (sorted[count / 2 - 1] as f64 + sorted[count / 2] as f64) / 2.0
    };
    Some(HopStats {
        count,
        median,
        mean,
        std: var.sqrt(),
    })
}

/// Mean of a boolean outcome sequence — hit accuracy as the paper defines
/// it ("the percentage of queries that retrieved the gold document").
/// Returns `None` for an empty sample.
pub fn accuracy(outcomes: &[bool]) -> Option<f64> {
    if outcomes.is_empty() {
        return None;
    }
    Some(outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples() {
        assert!(hop_stats(&[]).is_none());
        assert!(accuracy(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = hop_stats(&[5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn odd_median() {
        let s = hop_stats(&[9, 1, 5]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn skewed_distribution_mean_exceeds_median() {
        // The paper observes exactly this skew in Table I.
        let s = hop_stats(&[1, 1, 2, 2, 3, 40]).unwrap();
        assert!(s.mean > s.median);
        assert!(s.std > 10.0);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[true, false, true, true]).unwrap(), 0.75);
        assert_eq!(accuracy(&[false]).unwrap(), 0.0);
    }
}
