//! Panic fixture (fire): unwrap, expect, a panic-family macro, and an
//! unchecked slice index — four distinct `panic` checks.

pub fn fire(xs: &[u32], i: usize) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("nonempty");
    if i >= xs.len() {
        panic!("index {i} out of range");
    }
    xs[i] + head + tail
}
