//! Panic fixture (allowed): an unchecked index justified by the
//! directory manifest's `[[allow]]` entry.

pub fn allowed(xs: &[u32]) -> u32 {
    xs[0]
}
