//! Panic fixture (pass): the same logic surfacing failure as `Option`,
//! plus a `#[cfg(test)]` region proving tests are exempt.

pub fn pass(xs: &[u32], i: usize) -> Option<u32> {
    let head = xs.first()?;
    let tail = xs.last()?;
    Some(xs.get(i)? + head + tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(pass(&[1, 2, 3], 1).unwrap(), [1, 2, 3][1] + 4);
    }
}
