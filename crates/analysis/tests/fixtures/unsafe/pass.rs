//! Unsafe fixture (pass): safe code only.

pub fn pass(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
