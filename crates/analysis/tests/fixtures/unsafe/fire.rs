//! Unsafe fixture (fire): `unsafe` without a `// SAFETY:` argument.
//! This is not allowlistable — only fixable.

pub fn fire(p: *const u8) -> u8 {
    unsafe { *p }
}
