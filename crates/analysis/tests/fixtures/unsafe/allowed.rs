//! Unsafe fixture (allowed): `unsafe` with a `// SAFETY:` argument AND
//! a manifest entry — both are required for the rule to pass.

pub fn allowed(bytes: [u8; 4]) -> u32 {
    // SAFETY: a 4-byte array and u32 have identical size and alignment,
    // and u32 has no invalid bit patterns.
    unsafe { core::mem::transmute(bytes) }
}
