//! Transitive-determinism fixture (fire): the public entry point never
//! names a hash collection itself — the hazard is two calls down, which
//! only the call-graph pass can see. Not compiled — scanned only.

pub fn entry(key: u64) -> usize {
    merge_partials(key)
}

fn merge_partials(key: u64) -> usize {
    order_rollup(key)
}

fn order_rollup(key: u64) -> usize {
    let mut slots: HashMap<u64, u64> = HashMap::new();
    slots.insert(key, 1);
    slots.len()
}
