//! Transitive-determinism fixture (allowed): a reachable hash set whose
//! iteration order provably never escapes, absorbed by the manifest
//! entry (which records the provenance chain in its reason).

pub fn entry(key: u64) -> bool {
    membership_probe(key)
}

fn membership_probe(key: u64) -> bool {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(key);
    seen.contains(&key)
}
