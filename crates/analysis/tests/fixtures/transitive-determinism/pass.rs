//! Transitive-determinism fixture (pass): the same two-hop call shape,
//! but the helper bottoms out in an ordered map — nothing to report.

pub fn entry(key: u64) -> usize {
    merge_partials(key)
}

fn merge_partials(key: u64) -> usize {
    order_rollup(key)
}

fn order_rollup(key: u64) -> usize {
    let mut slots: BTreeMap<u64, u64> = BTreeMap::new();
    slots.insert(key, 1);
    slots.len()
}

// A tainted helper that no public entry point reaches stays silent:
// reachability, not mere presence, is what rule 7 checks.
fn dead_code_rollup(key: u64) -> usize {
    let mut slots: HashMap<u64, u64> = HashMap::new();
    slots.insert(key, 1);
    slots.len()
}
