//! Cast fixture (allowed): a bounded narrowing cast justified by the
//! directory manifest's `[[allow]]` entry.

pub fn allowed(index: usize) -> u32 {
    index as u32
}
