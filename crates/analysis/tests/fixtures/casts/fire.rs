//! Cast fixture (fire): narrowing `as` casts to the audited targets.

pub fn fire(n: u64, m: i64) -> (u32, usize) {
    (n as u32, m as usize)
}
