//! Cast fixture (pass): checked conversions, plus casts to targets the
//! audit does not track (widening / float).

pub fn pass(n: u64, k: u32) -> Option<u32> {
    let wide = k as u64;
    let ratio = n as f64 / wide as f64;
    let _ = ratio;
    u32::try_from(n).ok()
}
