//! Wire fixture (allowed): an untested codec justified by the
//! directory manifest's `[[allow]]` entry.

pub struct Legacy {
    pub tag: u8,
}

impl WireMessage for Legacy {
    fn wire_size(&self) -> usize {
        1
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag);
    }
}
