//! Wire fixture (fire): a `WireMessage` impl with no `wire_size`
//! equality test anywhere in the module.

pub struct Ping {
    pub seq: u32,
}

impl WireMessage for Ping {
    fn wire_size(&self) -> usize {
        4
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
    }
}
