//! Wire fixture (pass): the same codec plus the required
//! `wire_size`-equality test.

pub struct Ping {
    pub seq: u32,
}

impl WireMessage for Ping {
    fn wire_size(&self) -> usize {
        4
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_size_matches_wire_size() {
        let msg = Ping { seq: 7 };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), msg.wire_size());
    }
}
