//! Lexer fixture (fire): multi-byte UTF-8 — Greek idents, emoji in
//! comments and strings — ahead of a real `HashMap`. A byte-indexed
//! scanner would drift here; the acceptance test pins the exact
//! diagnostic lines (8 and 12) to prove offsets stay character-true.

// Συντελεστής διάχυσης: α ∈ (0, 1] — see the paper §III. 🚦🚦

use std::collections::HashMap;

pub fn entry(α: f64, κλειδιά: &[u64]) -> usize {
    let σήμανση = "αποτύπωμα 🧭 — \"quoted\" π≈3.14159";
    let mut πίνακας: HashMap<u64, f64> = HashMap::new();
    for &k in κλειδιά {
        πίνακας.insert(k, α * σήμανση.len() as f64);
    }
    πίνακας.len()
}
