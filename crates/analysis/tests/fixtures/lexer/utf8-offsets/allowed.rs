//! Lexer fixture (allowed): a `HashSet` reached past multi-byte text,
//! absorbed by the manifest entry.

use std::collections::HashSet;

pub fn entry(κλειδιά: &[u32]) -> usize {
    // σύνολο μελών — membership only, order never observed 🗃️
    let σύνολο: HashSet<u32> = κλειδιά.iter().copied().collect();
    σύνολο.len()
}
