//! Lexer fixture (pass): the same multi-byte soup with no hazards.
//! Hazard spellings appear only inside strings salted with emoji so a
//! byte-drifting scanner would leak them into the token stream.

pub fn entry(βάρη: &[f64]) -> f64 {
    let ετικέτα = "🎲 thread_rng() and HashMap::new() stay quoted 🎲";
    let μέσο: f64 = βάρη.iter().sum::<f64>() / βάρη.len().max(1) as f64;
    μέσο + ετικέτα.chars().count() as f64 * 0.0
}
