//! Lexer fixture (allowed): a raw-identifier `.r#expect()` call is the
//! same site as `.expect()` and is absorbed by the manifest entry.

pub fn entry(v: Option<u32>) -> u32 {
    v.r#expect("fixture invariant: caller always passes Some")
}
