//! Lexer fixture (fire): raw identifiers must normalize to their bare
//! ident, so `.r#unwrap()` is the same panic site as `.unwrap()`. The
//! keyword-named locals exercise `r#` on actual keywords along the way.

pub fn entry(v: Option<u32>) -> u32 {
    let r#type = v;
    let r#match = r#type.map(|x| x + 1);
    r#match.r#unwrap()
}
