//! Lexer fixture (pass): raw identifiers that merely *look* dangerous.
//! A free function named `r#unwrap` is not a `.unwrap()` call — the
//! panic rule keys on the receiver dot, and `r#`-prefixed keywords
//! must not derail the token stream around it.

fn r#unwrap(x: u32) -> u32 {
    x
}

pub fn entry() -> u32 {
    let r#else = 1;
    let r#fn = r#unwrap(r#else);
    r#fn + r#unwrap(2)
}
