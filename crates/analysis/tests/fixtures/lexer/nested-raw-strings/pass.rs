//! Lexer fixture (pass): raw strings of every hash depth carrying
//! hazard spellings — all literal text, none of it real code. The rule
//! must see zero sites here.

macro_rules! blobs {
    () => {
        (
            r"plain raw: thread_rng() HashMap",
            r#"one hash: "SystemTime::now()" HashSet::new()"#,
            r##"two hashes: "# still inside "# std::env::var("X")"##,
            br#"byte raw: v.unwrap() panic!"#,
        )
    };
}

pub fn entry() -> usize {
    let (a, b, c, d) = blobs!();
    a.len() + b.len() + c.len() + d.len()
}
