//! Lexer fixture (allowed): one real `HashSet` after a raw-string
//! macro body, absorbed by the manifest entry.

use std::collections::HashSet;

macro_rules! banner {
    () => {
        r#"ordering note: "HashSet iteration" is quoted here"#
    };
}

pub fn entry(keys: &[u32]) -> usize {
    let _ = banner!();
    let seen: HashSet<u32> = keys.iter().copied().collect();
    seen.len()
}
