//! Lexer fixture (fire): a raw string inside a macro body spells out
//! hazards that must stay inert, followed by a real `HashMap`. A lexer
//! that terminates the `r##"…"##` early (at the inner `"#`) would eat
//! the rest of the file — or, worse, resurface the quoted hazards.

macro_rules! doc_blob {
    () => {
        r##"template: HashMap::new() and "#quoted# Instant::now()" inline"##
    };
}

use std::collections::HashMap;

pub fn entry(key: u64) -> usize {
    let _ = doc_blob!();
    let mut slots: HashMap<u64, u64> = HashMap::new();
    slots.insert(key, 1);
    slots.len()
}
