//! Lexer fixture (pass): lifetimes and char literals in every
//! confusable shape, with the only hazard spellings hidden inside
//! char/string literals where the rule must not see them.

pub struct Window<'buf> {
    bytes: &'buf [u8],
}

pub fn entry<'a, 'buf: 'a>(w: &'a Window<'buf>, raw: &str) -> usize {
    let quote = '\'';
    let brace = '{';
    let label = "HashMap and Instant::now() as inert text";
    let _ = (quote, brace, label);
    let marker: char = 'H';
    w.bytes.iter().filter(|&&b| b == marker as u8).count() + raw.matches('_').count()
}
