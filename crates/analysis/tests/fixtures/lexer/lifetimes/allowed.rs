//! Lexer fixture (allowed): a `HashSet` behind a lifetime-heavy
//! signature, absorbed by the manifest entry.

use std::collections::HashSet;

pub fn entry<'a>(keys: &'a [u32]) -> usize {
    let seen: HashSet<&'a u32> = keys.iter().collect();
    seen.len()
}
