//! Lexer fixture (fire): a real `HashMap` surrounded by the lifetime /
//! char-literal ambiguity. If the lexer mistook `'a` for an open char
//! literal it would swallow the hazard into a string token and this
//! fixture would go silent — the acceptance test pins that it fires.

use std::collections::HashMap;

pub fn entry<'a>(keys: &'a [char]) -> usize {
    let mut seen: HashMap<char, u32> = HashMap::new();
    for &k in keys {
        if k != 'x' && k != '\'' && k != '"' {
            *seen.entry(k).or_insert(0) += 1;
        }
    }
    seen.len()
}
