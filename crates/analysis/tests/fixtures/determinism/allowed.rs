//! Determinism fixture (allowed): violates the rule, absorbed by the
//! `[[allow]]` entry in this directory's manifest.

use std::collections::HashMap;

/// A private cache whose iteration order never reaches a result path.
pub struct Cache {
    slots: HashMap<u64, f32>,
}
