//! Determinism fixture (pass): the same shape as `fire.rs`, written
//! with deterministic primitives. Must produce zero diagnostics.

use std::collections::BTreeMap;
use std::time::Duration;

pub fn pass(key: u64, seed: u64) -> usize {
    let mut slots: BTreeMap<u64, u64> = BTreeMap::new();
    slots.insert(key, 1);
    // `Instant` as a plain enum variant (core::protocol's SimBackend)
    // must not be confused with std::time::Instant.
    let backend = SimBackend::Instant;
    let mut r = StdRng::seed_from_u64(seed);
    let _ = (backend, r, Duration::from_millis(1));
    slots.len()
}
