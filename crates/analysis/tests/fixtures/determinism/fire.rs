//! Determinism fixture (fire): every construct here trips a
//! `determinism` check. Not compiled — scanned by the analyzer only.

use std::collections::HashMap;
use std::time::Instant;

pub fn fire(key: u64) -> usize {
    let mut slots: HashMap<u64, u64> = HashMap::new();
    slots.insert(key, 1);
    let t0 = Instant::now();
    let mut r = thread_rng();
    let ambient = std::env::var("GDSEARCH_SEED");
    slots.len()
}
