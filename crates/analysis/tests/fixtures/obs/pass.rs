//! Obs fixture (pass): the engine threads the write-only `Sink` and its
//! tests read a registry to assert on the recorded work — both are the
//! sanctioned shapes.

use gdsearch_obs::Sink;

pub fn diffuse(n: u64, sink: &mut Sink<'_>) -> u64 {
    sink.add("engine.sweeps", 1);
    sink.record("engine.rows", n);
    n * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_obs::trace::TraceLog;
    use gdsearch_obs::MetricsRegistry;

    #[test]
    fn records_one_sweep() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(diffuse(3, &mut Sink::attached(&mut reg)), 6);
        assert!(reg.get("engine.sweeps").is_some());
    }

    #[test]
    fn tests_may_read_the_flight_recorder() {
        let mut log = TraceLog::new();
        log.begin("engine.sweep");
        assert_eq!(log.len(), 1);
    }
}
