//! Obs fixture (fire): a result path that reads instrumentation — the
//! iteration count comes out of the registry, so recording branches the
//! result — plus driver-only wall-clock profiling and the readable
//! flight-recorder types.

use gdsearch_obs::clock::Profiler;
use gdsearch_obs::trace::TraceLog;
use gdsearch_obs::MetricsRegistry;

pub fn diffuse(reg: &mut MetricsRegistry) -> u64 {
    reg.add("engine.sweeps", 1);
    match reg.get("engine.sweeps") {
        Some(v) => 1,
        None => 0,
    }
}

pub fn traced_diffuse(log: &mut TraceLog) -> usize {
    log.begin("engine.sweep");
    log.end("engine.sweep");
    // Branching on the recorded trace: exactly what rule 6 forbids.
    log.count_phase("engine.sweep")
}
