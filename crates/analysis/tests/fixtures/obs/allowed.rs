//! Obs fixture (allowed): a legacy engine that still owns a readable
//! registry, justified by the directory manifest's `[[allow]]` entry.

use gdsearch_obs::MetricsRegistry;

pub struct LegacyEngine {
    pub metrics: MetricsRegistry,
}

impl LegacyEngine {
    pub fn sweep(&mut self) {
        self.metrics.add("legacy.sweeps", 1);
    }
}
