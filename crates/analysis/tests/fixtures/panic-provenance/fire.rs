//! Panic-provenance fixture (fire): the public entry point is visibly
//! panic-free — the abort is two calls down, which only the call-graph
//! pass can see. Not compiled — scanned by the analyzer only.

pub fn entry(raw: &str) -> u32 {
    normalize(raw)
}

fn normalize(raw: &str) -> u32 {
    parse_step(raw)
}

fn parse_step(raw: &str) -> u32 {
    raw.parse().unwrap()
}
