//! Panic-provenance fixture (pass): the same two-hop call shape, but
//! the helper returns the failure instead of aborting.

pub fn entry(raw: &str) -> u32 {
    normalize(raw)
}

fn normalize(raw: &str) -> u32 {
    parse_step(raw)
}

fn parse_step(raw: &str) -> u32 {
    raw.parse().unwrap_or(0)
}

// A panicking helper no public entry point reaches stays silent:
// reachability, not mere presence, is what rule 8 checks.
fn dead_code_step(raw: &str) -> u32 {
    raw.parse().unwrap()
}
