//! Panic-provenance fixture (allowed): a reachable invariant expect()
//! absorbed by the manifest entry (which records the provenance chain
//! in its reason).

pub fn entry(values: &[u32]) -> u32 {
    checked_head(values)
}

fn checked_head(values: &[u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    *values.first().expect("guarded by the is_empty check above")
}
