//! Acceptance tests for the lexer's edge cases, driven through full
//! analyzer runs rather than unit-level token assertions.
//!
//! Each case under `tests/fixtures/lexer/<case>/` is a fire/pass/allowed
//! triple whose *rule outcome* depends on the lexer getting one hard
//! thing right:
//!
//! - `raw-idents`: `r#unwrap` must normalize to `unwrap`, and raw
//!   keywords (`r#type`, `r#match`) must not derail the stream;
//! - `lifetimes`: `'a` is a lifetime, `'x'` (and `'\''`) are chars —
//!   confusing them swallows or resurfaces hazards;
//! - `nested-raw-strings`: `r##"…"#…"##` terminates at the matching
//!   hash depth, keeping quoted hazards inert;
//! - `utf8-offsets`: multi-byte identifiers/comments must not drift
//!   token line numbers (asserted against exact lines).

use std::path::{Path, PathBuf};

use gdsearch_analysis::analyze;
use gdsearch_analysis::config::Config;

const CASES: &[&str] = &[
    "raw-idents",
    "lifetimes",
    "nested-raw-strings",
    "utf8-offsets",
];

fn case_dir(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lexer")
        .join(case)
}

#[test]
fn every_lexer_case_fires_on_fire_and_spares_pass_and_allowed() {
    for case in CASES {
        let dir = case_dir(case);
        let cfg = Config::load(&dir.join("analysis.toml"))
            .unwrap_or_else(|e| panic!("{case}: manifest must parse: {e}"));
        let a = analyze(&dir, &cfg).unwrap();
        assert_eq!(a.files_scanned, 3, "{case}: triple must be scanned");
        assert!(
            !a.violations.is_empty(),
            "{case}: fire.rs must trip the rule"
        );
        for d in &a.violations {
            assert_eq!(
                d.path, "fire.rs",
                "{case}: diagnostic outside fire.rs {d:?}"
            );
        }
        assert!(
            a.allowlisted_sites >= 1,
            "{case}: allowed.rs must be absorbed by the manifest entry"
        );
        assert!(
            a.allowlist_errors.is_empty(),
            "{case}: {:?}",
            a.allowlist_errors
        );
    }
}

#[test]
fn excluding_fire_yields_a_clean_run() {
    for case in CASES {
        let dir = case_dir(case);
        let cfg = Config::load(&dir.join("clean.toml")).unwrap();
        let a = analyze(&dir, &cfg).unwrap();
        assert!(
            a.clean(),
            "{case}: {:?} {:?}",
            a.violations,
            a.allowlist_errors
        );
        assert_eq!(a.files_scanned, 2, "{case}: fire.rs must be excluded");
    }
}

#[test]
fn raw_identifier_unwrap_normalizes_to_the_unwrap_check() {
    let dir = case_dir("raw-idents");
    let cfg = Config::load(&dir.join("analysis.toml")).unwrap();
    let a = analyze(&dir, &cfg).unwrap();
    assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
    let d = &a.violations[0];
    assert_eq!(d.rule, "panic");
    assert_eq!(d.check, "unwrap", "r#unwrap must be the unwrap check");
    assert_eq!(d.line, 8, "the .r#unwrap() call site");
}

#[test]
fn utf8_diagnostics_land_on_character_true_lines() {
    let dir = case_dir("utf8-offsets");
    let cfg = Config::load(&dir.join("analysis.toml")).unwrap();
    let a = analyze(&dir, &cfg).unwrap();
    let mut lines: Vec<u32> = a.violations.iter().map(|d| d.line).collect();
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(
        lines,
        vec![8, 12],
        "the use decl and the HashMap construction: {:?}",
        a.violations
    );
    for d in &a.violations {
        assert!(
            d.snippet.contains("HashMap"),
            "snippet must carve out the right source line: {d:?}"
        );
    }
}
