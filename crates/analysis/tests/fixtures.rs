//! Fixture-driven acceptance tests for the analyzer.
//!
//! Each rule has a `tests/fixtures/<rule>/` directory with a
//! fire/pass/allowed triple and two manifests:
//!
//! - `analysis.toml` scopes the scan to the directory with only that
//!   rule enabled and one `[[allow]]` entry for `allowed.rs`;
//! - `clean.toml` additionally excludes `fire.rs`.
//!
//! The library tests pin where diagnostics come from; the binary tests
//! pin the CI contract (exit 1 on violations, exit 0 when clean,
//! exit 2 on config errors) via `CARGO_BIN_EXE`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use gdsearch_analysis::analyze;
use gdsearch_analysis::config::{AllowEntry, Config, RULE_NAMES};

fn fixture_dir(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

fn run_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gdsearch-analysis"))
        .args(args)
        .output()
        .expect("analyzer binary must spawn")
}

#[test]
fn every_rule_fires_on_fire_and_spares_pass_and_allowed() {
    for rule in RULE_NAMES {
        let dir = fixture_dir(rule);
        let cfg = Config::load(&dir.join("analysis.toml"))
            .unwrap_or_else(|e| panic!("{rule}: manifest must parse: {e}"));
        let a = analyze(&dir, &cfg).unwrap();
        assert_eq!(a.files_scanned, 3, "{rule}: triple must be scanned");
        assert!(
            !a.violations.is_empty(),
            "{rule}: fire.rs must trip the rule"
        );
        for d in &a.violations {
            assert_eq!(d.rule, rule, "{rule}: cross-rule diagnostic {d:?}");
            assert_eq!(
                d.path, "fire.rs",
                "{rule}: diagnostic outside fire.rs {d:?}"
            );
        }
        assert!(
            a.allowlisted_sites >= 1,
            "{rule}: allowed.rs must be absorbed by the manifest entry"
        );
        assert!(
            a.allowlist_errors.is_empty(),
            "{rule}: {:?}",
            a.allowlist_errors
        );
    }
}

#[test]
fn excluding_fire_yields_a_clean_run() {
    for rule in RULE_NAMES {
        let dir = fixture_dir(rule);
        let cfg = Config::load(&dir.join("clean.toml")).unwrap();
        let a = analyze(&dir, &cfg).unwrap();
        assert!(
            a.clean(),
            "{rule}: {:?} {:?}",
            a.violations,
            a.allowlist_errors
        );
        assert_eq!(a.files_scanned, 2, "{rule}: fire.rs must be excluded");
    }
}

#[test]
fn transitive_fixture_reports_the_full_two_hop_chain() {
    // The acceptance case for rule 7: a `HashMap` two calls below a
    // public entry point is caught, with the provenance chain naming
    // every hop as `fn (file:line)`.
    let dir = fixture_dir("transitive-determinism");
    let cfg = Config::load(&dir.join("analysis.toml")).unwrap();
    let a = analyze(&dir, &cfg).unwrap();
    let d = a
        .violations
        .iter()
        .find(|d| d.rule == "transitive-determinism")
        .expect("fire.rs must trip rule 7");
    assert_eq!(d.check, "hash-collection");
    assert_eq!(
        d.chain,
        vec![
            "fire::entry (fire.rs:5)".to_string(),
            "fire::merge_partials (fire.rs:9)".to_string(),
            "fire::order_rollup (fire.rs:14)".to_string(),
        ],
        "{d:?}"
    );
    assert!(d.message.contains("fire::entry"), "{}", d.message);

    // The rendered report shows the chain hop by hop.
    let out = run_bin(&["--root", dir.to_str().unwrap()]);
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("chain: fire::entry"), "{report}");
    assert!(report.contains("→ fire::order_rollup"), "{report}");
}

#[test]
fn panic_provenance_fixture_chain_ends_at_the_unwrap() {
    let dir = fixture_dir("panic-provenance");
    let cfg = Config::load(&dir.join("analysis.toml")).unwrap();
    let a = analyze(&dir, &cfg).unwrap();
    let d = a
        .violations
        .iter()
        .find(|d| d.rule == "panic-provenance")
        .expect("fire.rs must trip rule 8");
    assert_eq!(d.check, "unwrap");
    assert_eq!(d.chain.len(), 3, "{:?}", d.chain);
    assert_eq!(d.chain[0], "fire::entry (fire.rs:5)");
    assert!(d.chain[2].starts_with("fire::parse_step"), "{:?}", d.chain);
}

#[test]
fn json_export_carries_chains_and_schema() {
    let dir = fixture_dir("transitive-determinism");
    let json_path = std::env::temp_dir().join("gdsearch-fixture-diag.json");
    let out = run_bin(&[
        "--root",
        dir.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let j = std::fs::read_to_string(&json_path).unwrap();
    assert!(j.contains("\"schema\": \"gdsearch.analysis.v1\""), "{j}");
    assert!(j.contains("\"rule\": \"transitive-determinism\""), "{j}");
    assert!(j.contains("fire::merge_partials (fire.rs:9)"), "{j}");
    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn graph_dot_export_names_the_fixture_chain() {
    let dir = fixture_dir("transitive-determinism");
    let dot_path = std::env::temp_dir().join("gdsearch-fixture-graph.dot");
    let _ = run_bin(&[
        "--root",
        dir.to_str().unwrap(),
        "--graph-dot",
        dot_path.to_str().unwrap(),
    ]);
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph callgraph"), "{dot}");
    assert!(dot.contains("fire::order_rollup"), "{dot}");
    assert!(dot.contains("->"), "{dot}");
    let _ = std::fs::remove_file(&dot_path);
}

#[test]
fn unsafe_without_safety_comment_defeats_the_allowlist() {
    // A manifest entry covering fire.rs must NOT absorb an `unsafe`
    // that lacks a `// SAFETY:` argument: the safety comment is a
    // precondition for allowlisting. The unused entry is also reported
    // as stale, so the gate fails twice over.
    let dir = fixture_dir("unsafe");
    let mut cfg = Config::load(&dir.join("analysis.toml")).unwrap();
    cfg.allows.push(AllowEntry {
        rule: "unsafe".into(),
        check: None,
        path: "fire.rs".into(),
        pattern: None,
        max: None,
        reason: "must not work".into(),
        used: 0,
    });
    let a = analyze(&dir, &cfg).unwrap();
    assert!(
        a.violations.iter().any(|d| d.path == "fire.rs"),
        "unallowlistable unsafe must stay a violation"
    );
    assert!(
        a.allowlist_errors.iter().any(|e| e.contains("stale")),
        "the ineffective entry must be reported stale: {:?}",
        a.allowlist_errors
    );
}

#[test]
fn binary_exit_codes_match_the_ci_contract() {
    for rule in RULE_NAMES {
        let dir = fixture_dir(rule);
        let root = dir.to_str().unwrap();

        // --root picks up the directory's analysis.toml: violations → 1.
        let firing = run_bin(&["--root", root]);
        assert_eq!(
            firing.status.code(),
            Some(1),
            "{rule}: firing fixture must exit 1"
        );
        let report = String::from_utf8_lossy(&firing.stdout);
        assert!(
            report.contains("fire.rs") && report.contains(rule),
            "{rule}: report must name the file and the rule:\n{report}"
        );

        // fire.rs out of scope → 0.
        let clean_manifest = dir.join("clean.toml");
        let clean = run_bin(&[
            "--root",
            root,
            "--manifest",
            clean_manifest.to_str().unwrap(),
        ]);
        assert_eq!(
            clean.status.code(),
            Some(0),
            "{rule}: clean manifest must exit 0: {}",
            String::from_utf8_lossy(&clean.stdout)
        );
    }
}

#[test]
fn binary_rejects_bad_usage_and_missing_manifest() {
    let missing = run_bin(&["--manifest", "/nonexistent/analysis.toml"]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "missing manifest is a usage error"
    );
    let bad_rule = run_bin(&["--rule", "frobnicate"]);
    assert_eq!(
        bad_rule.status.code(),
        Some(2),
        "unknown rule is a usage error"
    );
}

#[test]
fn the_workspace_tree_is_clean() {
    // The CI gate itself: the analyzer over the real tree with the real
    // manifest must pass. Run from the workspace root two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_bin(&["--root", root.to_str().unwrap(), "--quiet"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must satisfy its own invariants:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
