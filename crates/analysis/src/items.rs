//! Item extraction on top of the lexer: functions, impl/trait blocks,
//! inline modules, and `use` declarations.
//!
//! The transitive rules ([`crate::reach`]) need to know *which function*
//! a token belongs to and *what names that function's file imports* —
//! neither of which the flat token stream gives directly. This pass
//! walks the token stream once with a balanced-brace scope stack and
//! produces:
//!
//! - every `fn` item with its inline-module path, enclosing `impl`/
//!   `trait` type, visibility, line span, and body token range;
//! - every `use` declaration flattened into `alias → absolute path`
//!   bindings (brace groups and `as` renames resolved, globs recorded
//!   as prefixes).
//!
//! It is *not* a parser: generics, where-clauses, and expression
//! structure are skipped over, and `macro_rules!` bodies are ignored
//! (their `fn` fragments are not items). That is enough for best-effort
//! call resolution; anything it cannot see resolves to an external and
//! is reported in the call-graph stats rather than silently dropped.

use crate::lexer::{Lexed, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name (`diffuse`, `new`, …).
    pub name: String,
    /// Inline `mod` path within the file (outermost first).
    pub module_path: Vec<String>,
    /// Enclosing `impl` type or `trait` name, if any.
    pub impl_type: Option<String>,
    /// Whether the item is `pub` (any visibility scope counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, `open_brace..=close_brace`.
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// One flattened `use` binding: `alias` names `path` in this file.
#[derive(Debug, Clone)]
pub struct UseBinding {
    pub alias: String,
    /// Absolute path segments as written (first segment may be a crate
    /// name, `crate`, `self`, or `super`).
    pub path: Vec<String>,
    /// True for `use path::*`: `alias` is empty and `path` is a prefix
    /// every unresolved name may be completed with.
    pub glob: bool,
}

/// All items of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseBinding>,
    /// Type names this file defines `impl` blocks for (used by the
    /// call-graph's method-resolution filter).
    pub impl_types: Vec<String>,
}

/// Rust keywords that cannot be item names; a `fn` followed by one of
/// these (or punctuation) is macro soup, not an item.
fn is_ident(tok: &str) -> bool {
    tok.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !tok.starts_with('#')
}

/// Extracts items from a lexed file.
pub fn parse_items(lexed: &Lexed) -> FileItems {
    let mut out = FileItems::default();
    let toks = &lexed.tokens;
    walk(toks, 0, toks.len(), &mut Vec::new(), None, &mut out);
    out.impl_types.sort();
    out.impl_types.dedup();
    out
}

fn lexeme(toks: &[Token], i: usize) -> &str {
    toks.get(i).map(|t| t.lexeme.as_str()).unwrap_or("")
}

/// Index of the matching `}` for the `{` at `open`.
fn close_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        match t.lexeme.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the tokens ending at `fn_idx` (exclusive) carry a `pub`.
/// Handles `pub fn`, `pub(crate) fn`, and modifier stacks like
/// `pub const unsafe extern "C" fn`.
fn has_pub(toks: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match lexeme(toks, j) {
            "const" | "unsafe" | "async" | "extern" | "#str" => continue,
            "pub" => return true,
            ")" => {
                // `pub(crate)` / `pub(in path)`: scan back to `(`.
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match lexeme(toks, j) {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                return j > 0 && lexeme(toks, j - 1) == "pub";
            }
            _ => return false,
        }
    }
    false
}

fn walk(
    toks: &[Token],
    start: usize,
    end: usize,
    module_path: &mut Vec<String>,
    impl_type: Option<&str>,
    out: &mut FileItems,
) {
    let mut i = start;
    while i < end {
        match lexeme(toks, i) {
            // Attributes are skipped wholesale so `#[cfg(...)]` contents
            // never look like items.
            "#" if lexeme(toks, i + 1) == "[" => {
                i = skip_balanced(toks, i + 1, "[", "]", end);
            }
            "mod" if is_ident(lexeme(toks, i + 1)) => {
                let name = lexeme(toks, i + 1).to_string();
                if lexeme(toks, i + 2) == "{" {
                    let close = close_brace(toks, i + 2).unwrap_or(end);
                    module_path.push(name);
                    walk(toks, i + 3, close.min(end), module_path, impl_type, out);
                    module_path.pop();
                    i = close + 1;
                } else {
                    i += 2; // `mod name;` — out-of-line, its file is scanned separately
                }
            }
            "impl" => {
                // `impl<T> Type<T> { … }` / `impl Trait for Type { … }`:
                // the impl type is the last identifier at angle-depth 0
                // before the body brace (after `for` when present).
                let mut j = i + 1;
                let mut angle = 0i64;
                let mut last_ident = String::new();
                while j < end {
                    match lexeme(toks, j) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" if angle <= 0 => break,
                        ";" if angle <= 0 => break,
                        "for" if angle <= 0 => last_ident.clear(),
                        l if is_ident(l) && angle <= 0 => last_ident = l.to_string(),
                        _ => {}
                    }
                    j += 1;
                }
                if j < end && lexeme(toks, j) == "{" {
                    let close = close_brace(toks, j).unwrap_or(end);
                    if !last_ident.is_empty() {
                        out.impl_types.push(last_ident.clone());
                    }
                    let ty = if last_ident.is_empty() {
                        None
                    } else {
                        Some(last_ident.as_str())
                    };
                    walk(toks, j + 1, close.min(end), module_path, ty, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "trait" if is_ident(lexeme(toks, i + 1)) => {
                let name = lexeme(toks, i + 1).to_string();
                let mut j = i + 2;
                while j < end && lexeme(toks, j) != "{" && lexeme(toks, j) != ";" {
                    j += 1;
                }
                if j < end && lexeme(toks, j) == "{" {
                    let close = close_brace(toks, j).unwrap_or(end);
                    walk(toks, j + 1, close.min(end), module_path, Some(&name), out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" if is_ident(lexeme(toks, i + 1)) => {
                let name = lexeme(toks, i + 1).to_string();
                let line = toks[i].line;
                let is_pub = has_pub(toks, i);
                // Body: first `{` at angle-depth 0 after the signature,
                // or `;` for a bodyless declaration.
                let mut j = i + 2;
                let mut angle = 0i64;
                let mut body = None;
                while j < end {
                    match lexeme(toks, j) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" => {
                            j = skip_balanced(toks, j, "(", ")", end);
                            continue;
                        }
                        "{" if angle <= 0 => {
                            let close = close_brace(toks, j).unwrap_or(end);
                            body = Some((j, close.min(end)));
                            break;
                        }
                        ";" if angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.fns.push(FnItem {
                    name,
                    module_path: module_path.clone(),
                    impl_type: impl_type.map(str::to_owned),
                    is_pub,
                    line,
                    body,
                });
                i = match body {
                    Some((_, close)) => close + 1,
                    None => j + 1,
                };
            }
            // `macro_rules! name { … }`: the body is token soup whose
            // `fn` fragments are not items.
            "macro_rules" if lexeme(toks, i + 1) == "!" => {
                let mut j = i + 2;
                while j < end && lexeme(toks, j) != "{" {
                    j += 1;
                }
                i = if j < end {
                    close_brace(toks, j).unwrap_or(end) + 1
                } else {
                    end
                };
            }
            "use" => {
                let semi = (i + 1..end)
                    .find(|&k| lexeme(toks, k) == ";")
                    .unwrap_or(end);
                parse_use(toks, i + 1, semi, &mut Vec::new(), &mut out.uses);
                i = semi + 1;
            }
            _ => i += 1,
        }
    }
}

/// Skips a balanced `open…close` group starting at `start` (which must
/// hold `open`); returns the index just past the closer.
fn skip_balanced(toks: &[Token], start: usize, open: &str, close: &str, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = start;
    while j < end {
        let l = lexeme(toks, j);
        if l == open {
            depth += 1;
        } else if l == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Parses one `use` tree between `start` and `end` (the `;`), appending
/// flattened bindings. `prefix` carries the path segments accumulated so
/// far (for brace groups).
fn parse_use(
    toks: &[Token],
    start: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseBinding>,
) {
    let mut segments: Vec<String> = Vec::new();
    let mut i = start;
    while i < end {
        match lexeme(toks, i) {
            l if is_ident(l) && l != "as" => {
                segments.push(l.to_string());
                i += 1;
            }
            ":" => i += 1,
            "*" => {
                let mut path = prefix.clone();
                path.append(&mut segments);
                out.push(UseBinding {
                    alias: String::new(),
                    path,
                    glob: true,
                });
                i += 1;
            }
            "as" => {
                let alias = lexeme(toks, i + 1).to_string();
                let mut path = prefix.clone();
                path.append(&mut segments);
                out.push(UseBinding {
                    alias,
                    path,
                    glob: false,
                });
                i += 2;
            }
            "{" => {
                let close = skip_balanced(toks, i, "{", "}", end);
                let depth_before = prefix.len();
                prefix.append(&mut segments);
                // Split the group on top-level commas and recurse.
                let mut part_start = i + 1;
                let mut depth = 0i64;
                for j in i + 1..close - 1 {
                    match lexeme(toks, j) {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            parse_use(toks, part_start, j, prefix, out);
                            part_start = j + 1;
                        }
                        _ => {}
                    }
                }
                if part_start < close.saturating_sub(1) {
                    parse_use(toks, part_start, close - 1, prefix, out);
                }
                prefix.truncate(depth_before);
                i = close;
            }
            "," => {
                flush_binding(prefix, &mut segments, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
    flush_binding(prefix, &mut segments, out);
}

fn flush_binding(prefix: &[String], segments: &mut Vec<String>, out: &mut Vec<UseBinding>) {
    if segments.is_empty() {
        return;
    }
    let mut path = prefix.to_vec();
    path.append(segments);
    let alias = path.last().cloned().unwrap_or_default();
    // `use path::self;` binds the parent module's name.
    let alias = if alias == "self" {
        path.pop();
        path.last().cloned().unwrap_or_default()
    } else {
        alias
    };
    out.push(UseBinding {
        alias,
        path,
        glob: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src))
    }

    #[test]
    fn fns_with_modules_impls_and_visibility() {
        let src = r#"
pub fn top() { inner(); }
fn private() {}
mod sub {
    pub(crate) fn in_sub() {}
    mod deeper { fn leaf() {} }
}
impl Engine {
    pub fn run(&self) -> u32 { 0 }
    fn helper() {}
}
impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
trait Walk {
    fn bodyless(&self);
    fn with_default(&self) { self.bodyless(); }
}
"#;
        let fi = items(src);
        let by_name: Vec<(&str, &FnItem)> = fi.fns.iter().map(|f| (f.name.as_str(), f)).collect();
        let get = |n: &str| {
            by_name
                .iter()
                .find(|(name, _)| *name == n)
                .map(|(_, f)| *f)
                .unwrap()
        };
        assert!(get("top").is_pub && get("top").body.is_some());
        assert!(!get("private").is_pub);
        assert_eq!(get("in_sub").module_path, ["sub"]);
        assert!(get("in_sub").is_pub, "pub(crate) counts as pub");
        assert_eq!(get("leaf").module_path, ["sub", "deeper"]);
        assert_eq!(get("run").impl_type.as_deref(), Some("Engine"));
        assert!(get("run").is_pub);
        assert_eq!(get("fmt").impl_type.as_deref(), Some("Engine"));
        assert_eq!(get("bodyless").impl_type.as_deref(), Some("Walk"));
        assert!(get("bodyless").body.is_none());
        assert!(get("with_default").body.is_some());
        assert_eq!(fi.impl_types, ["Engine"]);
    }

    #[test]
    fn generic_impls_and_signatures() {
        let src = "impl<T: Ord> Holder<T> {\n    fn get(&self) -> Option<&T> { None }\n}\nfn cmp<A: PartialOrd<B>, B>(a: A, b: B) -> bool { a < b }\n";
        let fi = items(src);
        assert_eq!(fi.fns[0].impl_type.as_deref(), Some("Holder"));
        assert_eq!(fi.fns[1].name, "cmp");
        assert!(fi.fns[1].body.is_some());
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let src = "use gdsearch_graph::algo::{bfs, stats as st};\nuse std::collections::BTreeMap;\nuse crate::push::*;\nuse super::frames::{self, ShardFrame};\n";
        let us = items(src).uses;
        let find = |a: &str| us.iter().find(|u| u.alias == a).unwrap();
        assert_eq!(find("bfs").path, ["gdsearch_graph", "algo", "bfs"]);
        assert_eq!(find("st").path, ["gdsearch_graph", "algo", "stats"]);
        assert_eq!(find("BTreeMap").path, ["std", "collections", "BTreeMap"]);
        assert!(us.iter().any(|u| u.glob && u.path == ["crate", "push"]));
        assert_eq!(find("frames").path, ["super", "frames"]);
        assert_eq!(find("ShardFrame").path, ["super", "frames", "ShardFrame"]);
    }

    #[test]
    fn macro_rules_bodies_are_not_items() {
        let src = "macro_rules! mk {\n    ($n:ident) => { fn $n() {} };\n}\nfn real() {}\n";
        let fi = items(src);
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].name, "real");
    }

    #[test]
    fn body_ranges_cover_the_braces() {
        let src = "fn f() { g(); h(); }";
        let fi = items(src);
        let (open, close) = fi.fns[0].body.unwrap();
        let l = lex(src);
        assert_eq!(l.tokens[open].lexeme, "{");
        assert_eq!(l.tokens[close].lexeme, "}");
    }
}
