//! Machine-readable diagnostics (`--json`), schema `gdsearch.analysis.v1`.
//!
//! CI uploads this as an artifact so tooling can diff analyzer runs
//! across commits without scraping the human report. The writer is
//! hand-rolled (the analyzer is dependency-free by design) and emits a
//! stable key order, so byte-identical trees produce byte-identical
//! reports.

use std::fmt::Write as _;

use crate::Analysis;

pub const SCHEMA: &str = "gdsearch.analysis.v1";

/// Renders one analysis run as a JSON document.
pub fn render(a: &Analysis) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"clean\": {},", a.clean());
    let _ = writeln!(out, "  \"files_scanned\": {},", a.files_scanned);
    let _ = writeln!(out, "  \"allowlisted_sites\": {},", a.allowlisted_sites);
    let _ = writeln!(
        out,
        "  \"comment_justified_sites\": {},",
        a.comment_justified_sites
    );
    out.push_str("  \"violations\": [");
    for (i, d) in a.violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        let _ = write!(out, "\"rule\": {}, ", quote(d.rule));
        let _ = write!(out, "\"check\": {}, ", quote(d.check));
        let _ = write!(out, "\"path\": {}, ", quote(&d.path));
        let _ = write!(out, "\"line\": {}, ", d.line);
        let _ = write!(out, "\"message\": {}, ", quote(&d.message));
        let _ = write!(out, "\"snippet\": {}, ", quote(&d.snippet));
        out.push_str("\"chain\": [");
        for (k, hop) in d.chain.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote(hop));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"allowlist_errors\": [");
    for (i, e) in a.allowlist_errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&quote(e));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn renders_schema_and_escapes() {
        let a = Analysis {
            violations: vec![Diagnostic {
                rule: "transitive-determinism",
                check: "hash-collection",
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "a \"quoted\" message".into(),
                snippet: "let m = HashMap::new();".into(),
                allowlistable: true,
                chain: vec!["a::entry (crates/a/src/lib.rs:1)".into()],
            }],
            allowlist_errors: vec!["stale entry".into()],
            files_scanned: 3,
            allowlisted_sites: 2,
            comment_justified_sites: 1,
            allows: Vec::new(),
        };
        let j = render(&a);
        assert!(j.contains("\"schema\": \"gdsearch.analysis.v1\""));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("a \\\"quoted\\\" message"));
        assert!(j.contains("a::entry (crates/a/src/lib.rs:1)"));
        assert!(j.contains("stale entry"));
    }

    #[test]
    fn clean_run_is_empty_arrays() {
        let a = Analysis {
            violations: Vec::new(),
            allowlist_errors: Vec::new(),
            files_scanned: 1,
            allowlisted_sites: 0,
            comment_justified_sites: 0,
            allows: Vec::new(),
        };
        let j = render(&a);
        assert!(j.contains("\"clean\": true"));
        assert!(j.contains("\"violations\": [\n  ]"));
    }
}
