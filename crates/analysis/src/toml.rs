//! A minimal TOML subset parser for `analysis.toml`.
//!
//! The offline build environment has no `toml` crate, so the manifest
//! format is restricted to the subset this tool needs and parsed here:
//!
//! - `# comments`
//! - `[table]` and `[dotted.table]` headers
//! - `[[array-of-tables]]` headers
//! - `key = "basic string"` (with `\\`, `\"`, `\n`, `\t` escapes)
//! - `key = 123`, `key = true` / `false`
//! - `key = ["string", "array"]` (single line)
//!
//! Anything outside the subset is a hard parse error with a line number —
//! a malformed allowlist must fail the gate, not silently allow.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// String-array contents, if this is an array of strings.
    pub fn as_str_array(&self) -> Option<Vec<String>> {
        match self {
            Value::Array(vs) => vs
                .iter()
                .map(|v| v.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>(),
            _ => None,
        }
    }
}

/// One `key = value` table.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: named tables (dotted headers joined with `.`) and
/// arrays of tables.
#[derive(Debug, Default)]
pub struct Document {
    /// `[header]` tables, keyed by the literal header text. Top-level
    /// keys before any header land under `""`.
    pub tables: BTreeMap<String, Table>,
    /// `[[header]]` tables in file order.
    pub table_arrays: BTreeMap<String, Vec<Table>>,
}

/// Parse failure with a 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: u32, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses `src` into a [`Document`].
pub fn parse(src: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    // Where `key = value` lines currently land.
    enum Target {
        Table(String),
        ArrayEntry(String),
    }
    let mut target = Target::Table(String::new());

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return err(lineno, "unterminated [[header]]");
            };
            let name = name.trim().to_string();
            if name.is_empty() {
                return err(lineno, "empty [[header]]");
            }
            doc.table_arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::ArrayEntry(name);
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return err(lineno, "unterminated [header]");
            };
            let name = name.trim().to_string();
            if name.is_empty() {
                return err(lineno, "empty [header]");
            }
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key = line[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return err(lineno, format!("invalid key `{key}`"));
        }
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        let table = match &target {
            Target::Table(name) => doc.tables.entry(name.clone()).or_default(),
            Target::ArrayEntry(name) => doc
                .table_arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .ok_or(ParseError {
                line: lineno,
                message: "internal: missing array entry".into(),
            })?,
        };
        if table.insert(key.to_string(), value).is_some() {
            return err(lineno, format!("duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, honoring `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: u32) -> Result<Value, ParseError> {
    if text.starts_with('"') {
        let (s, rest) = parse_basic_string(text, lineno)?;
        if !rest.trim().is_empty() {
            return err(lineno, format!("trailing content after string: `{rest}`"));
        }
        return Ok(Value::Str(s));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(lineno, "arrays must open and close on one line");
        };
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if !rest.starts_with('"') {
                return err(lineno, "only string arrays are supported");
            }
            let (s, after) = parse_basic_string(rest, lineno)?;
            items.push(Value::Str(s));
            rest = after.trim();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim();
            } else if !rest.is_empty() {
                return err(lineno, format!("expected `,` in array, got `{rest}`"));
            }
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    err(lineno, format!("unsupported value `{text}`"))
}

/// Parses a leading `"…"` basic string, returning (content, remainder).
fn parse_basic_string(text: &str, lineno: u32) -> Result<(String, &str), ParseError> {
    debug_assert!(text.starts_with('"'));
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    return err(
                        lineno,
                        format!(
                            "unsupported escape `\\{}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ),
                    )
                }
            },
            _ => out.push(c),
        }
    }
    err(lineno, "unterminated string")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars() {
        let doc = parse(
            r#"
top = true
[scope]
roots = ["crates", "tests"] # trailing comment
[rules.panic]
enabled = false
max = 12
[[allow]]
rule = "casts"
path = "a/b.rs"
[[allow]]
rule = "panic"
"#,
        )
        .unwrap();
        assert_eq!(doc.tables[""]["top"], Value::Bool(true));
        assert_eq!(
            doc.tables["scope"]["roots"].as_str_array().unwrap(),
            vec!["crates".to_string(), "tests".to_string()]
        );
        assert_eq!(doc.tables["rules.panic"]["enabled"], Value::Bool(false));
        assert_eq!(doc.tables["rules.panic"]["max"], Value::Int(12));
        let allows = &doc.table_arrays["allow"];
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0]["rule"].as_str(), Some("casts"));
        assert_eq!(allows[1]["rule"].as_str(), Some("panic"));
    }

    #[test]
    fn strings_with_escapes_and_hash() {
        let doc = parse("s = \"a # not comment \\\" q\"\n").unwrap();
        assert_eq!(doc.tables[""]["s"].as_str(), Some("a # not comment \" q"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = true\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("x = 1.5").is_err(), "floats are outside the subset");
        assert!(parse("[unclosed").is_err());
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("k = 1\nk = 2").is_err(), "duplicate keys rejected");
    }
}
