//! Grouped per-rule report rendering.

use std::fmt::Write as _;

use crate::config::RULE_NAMES;
use crate::Analysis;

/// One-line headline per rule, shown in the report headers.
fn rule_headline(rule: &str) -> &'static str {
    match rule {
        "determinism" => "result paths must be replayable (no hash order, clocks, entropy, env)",
        "panic" => "library code must return errors, not abort",
        "casts" => "narrowing casts must be audited",
        "unsafe" => "unsafe requires a SAFETY argument and an allowlist entry",
        "wire" => "wire codecs need a wire_size-equality test",
        "obs" => "result paths must not read instrumentation",
        "transitive-determinism" => {
            "no call chain from a public result path may reach a nondeterminism source"
        }
        "panic-provenance" => "no call chain from a public result path may reach a panic site",
        _ => "",
    }
}

/// Renders the full report for `analysis`.
pub fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    for rule in RULE_NAMES {
        let group: Vec<_> = analysis
            .violations
            .iter()
            .filter(|d| d.rule == rule)
            .collect();
        if group.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "rule `{rule}` — {} violation(s) — {}",
            group.len(),
            rule_headline(rule)
        );
        for d in &group {
            let _ = writeln!(out, "  {}:{}  [{}] {}", d.path, d.line, d.check, d.message);
            if !d.snippet.is_empty() {
                let _ = writeln!(out, "      | {}", d.snippet);
            }
            // Provenance chain (transitive rules): entry point first,
            // seed function last.
            for (i, hop) in d.chain.iter().enumerate() {
                let arrow = if i == 0 { "chain:" } else { "     →" };
                let _ = writeln!(out, "      {arrow} {hop}");
            }
        }
        out.push('\n');
    }
    for err in &analysis.allowlist_errors {
        let _ = writeln!(out, "allowlist: {err}");
    }
    if !analysis.allowlist_errors.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned; {} violation(s); {} site(s) allowlisted; \
         {} site(s) comment-justified; {} allowlist error(s)",
        analysis.files_scanned,
        analysis.violations.len(),
        analysis.allowlisted_sites,
        analysis.comment_justified_sites,
        analysis.allowlist_errors.len()
    );
    if analysis.clean() {
        let _ = writeln!(out, "clean: all determinism & safety invariants hold");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn groups_by_rule_and_reports_summary() {
        let analysis = Analysis {
            violations: vec![Diagnostic {
                rule: "panic",
                check: "unwrap",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "m".into(),
                snippet: "x.unwrap()".into(),
                allowlistable: true,
                chain: Vec::new(),
            }],
            allowlist_errors: vec!["stale allowlist entry (panic y.rs)".into()],
            files_scanned: 2,
            allowlisted_sites: 1,
            comment_justified_sites: 0,
            allows: Vec::new(),
        };
        let r = render(&analysis);
        assert!(r.contains("rule `panic` — 1 violation(s)"));
        assert!(r.contains("crates/x/src/lib.rs:3"));
        assert!(r.contains("allowlist: stale"));
        assert!(r.contains("2 file(s) scanned"));
        assert!(!r.contains("clean:"));
    }
}
