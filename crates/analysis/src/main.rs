//! CLI for the workspace determinism & safety analyzer.
//!
//! ```text
//! gdsearch-analysis [--root DIR] [--manifest FILE] [--rule NAME]...
//!                   [--json FILE] [--graph-dot FILE] [--quiet]
//! ```
//!
//! - `--root` defaults to the current directory (CI runs from the
//!   workspace root).
//! - `--manifest` defaults to `<root>/analysis.toml`; if that default is
//!   absent the built-in configuration runs with an empty allowlist. An
//!   explicitly passed manifest must exist.
//! - `--rule` restricts the run to the named rule(s); repeatable.
//! - `--json` writes machine-readable diagnostics (schema
//!   `gdsearch.analysis.v1`); CI uploads it as an artifact.
//! - `--graph-dot` writes the workspace call graph as Graphviz DOT, for
//!   debugging the transitive rules' resolution.
//!
//! Exit codes: `0` clean, `1` violations or allowlist errors, `2` usage,
//! I/O, or manifest errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gdsearch_analysis::config::{Config, RULE_NAMES};
use gdsearch_analysis::{analyze_with_graph, json, report};

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("gdsearch-analysis: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut manifest: Option<PathBuf> = None;
    let mut only_rules: Vec<String> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut dot_out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--manifest" => {
                manifest = Some(PathBuf::from(
                    args.next().ok_or("--manifest needs a value")?,
                ));
            }
            "--rule" => {
                let name = args.next().ok_or("--rule needs a value")?;
                if !RULE_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "unknown rule `{name}`; rules are {}",
                        RULE_NAMES.join(", ")
                    ));
                }
                only_rules.push(name);
            }
            "--json" => {
                json_out = Some(PathBuf::from(args.next().ok_or("--json needs a value")?));
            }
            "--graph-dot" => {
                dot_out = Some(PathBuf::from(
                    args.next().ok_or("--graph-dot needs a value")?,
                ));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: gdsearch-analysis [--root DIR] [--manifest FILE] \
                     [--rule NAME]... [--json FILE] [--graph-dot FILE] [--quiet]\nrules: {}",
                    RULE_NAMES.join(", ")
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let mut cfg = match &manifest {
        Some(path) => Config::load(path).map_err(|e| e.to_string())?,
        None => {
            let default = root.join("analysis.toml");
            if default.exists() {
                Config::load(&default).map_err(|e| e.to_string())?
            } else {
                Config::default()
            }
        }
    };
    if !only_rules.is_empty() {
        for name in RULE_NAMES {
            if let Some(rc) = cfg.rule_mut(name) {
                rc.enabled &= only_rules.iter().any(|r| r == name);
            }
        }
    }

    let (analysis, dot) =
        analyze_with_graph(&root, &cfg, dot_out.is_some()).map_err(|e| e.to_string())?;
    if let Some(path) = &json_out {
        std::fs::write(path, json::render(&analysis))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if let (Some(path), Some(dot)) = (&dot_out, &dot) {
        std::fs::write(path, dot).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let rendered = report::render(&analysis);
    if !quiet || !analysis.clean() {
        print!("{rendered}");
    }
    Ok(analysis.clean())
}
