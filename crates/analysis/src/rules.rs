//! The rule passes.
//!
//! Every rule walks the token stream of one file (comments and string
//! contents already stripped by the lexer) and emits [`Diagnostic`]s.
//! Test regions (`#[cfg(test)]` modules, `#[test]` functions) are exempt
//! from the determinism, panic, and cast rules; the `unsafe` rule applies
//! everywhere.

use crate::config::Config;
use crate::lexer::Lexed;

/// One finding, pre-allowlist.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (one of [`crate::config::RULE_NAMES`]).
    pub rule: &'static str,
    /// Sub-check discriminator, matchable by allowlist entries.
    pub check: &'static str,
    /// `/`-separated path relative to the analysis root.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
    /// The trimmed source line, for the report and pattern matching.
    pub snippet: String,
    /// Whether an `analysis.toml` entry may absorb this finding. False
    /// only for `unsafe` without an adjacent `// SAFETY:` comment — a
    /// safety argument in the code is a precondition for the allowlist.
    pub allowlistable: bool,
    /// For the transitive rules: the provenance chain from a public
    /// entry point to the flagged site, one `fn (file:line)` per hop.
    /// Empty for the lexical rules.
    pub chain: Vec<String>,
}

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    pub rel_path: &'a str,
    pub lexed: &'a Lexed,
    pub source_lines: &'a [&'a str],
}

impl FileCtx<'_> {
    pub(crate) fn snippet(&self, line: u32) -> String {
        self.source_lines
            .get(line as usize - 1)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }

    fn diag(
        &self,
        rule: &'static str,
        check: &'static str,
        line: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            check,
            path: self.rel_path.to_string(),
            line,
            message,
            snippet: self.snippet(line),
            allowlistable: true,
            chain: Vec::new(),
        }
    }
}

/// Runs every enabled, in-scope rule over one file.
pub fn run_rules(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.determinism.applies_to(ctx.rel_path) {
        determinism(ctx, out);
    }
    if cfg.panic.applies_to(ctx.rel_path) {
        panic_freedom(ctx, out);
    }
    if cfg.casts.applies_to(ctx.rel_path) {
        casts(ctx, &cfg.casts.cast_targets, out);
    }
    if cfg.unsafe_.applies_to(ctx.rel_path) {
        unsafe_audit(ctx, out);
    }
    // Whole-file test code (integration tests, benches) is exempt from
    // wire discipline for the same reason `#[cfg(test)]` regions are:
    // test-only message types don't ship frames anywhere.
    let test_file = ctx
        .rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches");
    if cfg.wire.applies_to(ctx.rel_path) && !test_file {
        wire_discipline(ctx, out);
    }
    if cfg.obs.applies_to(ctx.rel_path) {
        obs_blindness(ctx, out);
    }
}

/// Rust keywords that can legitimately precede `[` without forming an
/// index expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "break", "continue", "as",
    "where", "impl", "for", "while", "loop", "use", "pub", "fn", "type", "const", "static", "dyn",
];

fn lexeme_at<'a>(ctx: &'a FileCtx<'_>, i: usize) -> &'a str {
    ctx.lexed
        .tokens
        .get(i)
        .map(|t| t.lexeme.as_str())
        .unwrap_or("")
}

fn seq_at(ctx: &FileCtx<'_>, i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| lexeme_at(ctx, i + k) == *p)
}

/// A lexical finding at one token index: `(sub-check, line, message)`.
pub(crate) type Site = (&'static str, u32, String);

/// Whether the token at `i` is a nondeterminism source. Shared by the
/// per-file rule 1 and the transitive rule 7's taint seeding.
pub(crate) fn determinism_site_at(ctx: &FileCtx<'_>, i: usize) -> Option<Site> {
    let t = ctx.lexed.tokens.get(i)?;
    match t.lexeme.as_str() {
        // Hash collections: iteration order varies per process (seeded
        // hasher), so any use in a result path is a replay hazard.
        "HashMap" | "HashSet" => Some((
            "hash-collection",
            t.line,
            format!(
                "{} iteration order is seeded per process; \
                 use BTreeMap/BTreeSet or a sorted Vec",
                t.lexeme
            ),
        )),
        // `SystemTime` has no legitimate deterministic use here; the
        // bare identifier is safe to flag. `Instant` is also an enum
        // variant name in core::protocol (`SimBackend::Instant`), so
        // it is only flagged as `std::time::Instant` / `Instant::now` /
        // a `std::time::{…, Instant}` brace import.
        "SystemTime" => Some((
            "wall-clock",
            t.line,
            "SystemTime reads the wall clock; use the simulator's virtual clock".into(),
        )),
        "Instant" => {
            let from_std_time = i >= 3
                && lexeme_at(ctx, i - 1) == ":"
                && lexeme_at(ctx, i - 2) == ":"
                && lexeme_at(ctx, i - 3) == "time";
            let calls_now = seq_at(ctx, i + 1, &[":", ":", "now"]);
            let in_time_brace = {
                // Walk back over the brace group's idents and commas to
                // its `{`, then check for the `std::time::` prefix.
                let mut j = i;
                while j > 0 {
                    let p = lexeme_at(ctx, j - 1);
                    let identish = p
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_');
                    if p == "," || identish {
                        j -= 1;
                    } else {
                        break;
                    }
                }
                j >= 7
                    && lexeme_at(ctx, j - 1) == "{"
                    && lexeme_at(ctx, j - 2) == ":"
                    && lexeme_at(ctx, j - 3) == ":"
                    && lexeme_at(ctx, j - 4) == "time"
                    && lexeme_at(ctx, j - 5) == ":"
                    && lexeme_at(ctx, j - 6) == ":"
                    && lexeme_at(ctx, j - 7) == "std"
            };
            (from_std_time || calls_now || in_time_brace).then(|| {
                (
                    "wall-clock",
                    t.line,
                    "std::time::Instant reads the wall clock; use the simulator's \
                     virtual clock"
                        .to_string(),
                )
            })
        }
        // OS entropy: unseedable randomness breaks replay.
        "thread_rng" | "from_entropy" => Some((
            "os-entropy",
            t.line,
            format!(
                "{} draws OS entropy: thread results become unreplayable; \
                 seed a StdRng explicitly",
                t.lexeme
            ),
        )),
        // Process environment reads make results depend on ambient state.
        "std" if seq_at(ctx, i + 1, &[":", ":", "env"]) => Some((
            "env-read",
            t.line,
            "std::env makes results depend on ambient process state".into(),
        )),
        "env"
            if seq_at(ctx, i + 1, &[":", ":"])
                && matches!(
                    lexeme_at(ctx, i + 3),
                    "var" | "var_os" | "vars" | "args" | "temp_dir" | "current_dir"
                ) =>
        {
            Some((
                "env-read",
                t.line,
                format!(
                    "env::{} makes results depend on ambient process state",
                    lexeme_at(ctx, i + 3)
                ),
            ))
        }
        _ => None,
    }
}

/// Rule 1: determinism. Result paths of the library crates must not
/// depend on hash-map iteration order, wall clocks, OS entropy, or the
/// process environment.
fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.lexed.tokens.len() {
        if ctx.lexed.in_test_region(ctx.lexed.tokens[i].line) {
            continue;
        }
        if let Some((check, line, message)) = determinism_site_at(ctx, i) {
            out.push(ctx.diag(
                "determinism",
                check,
                line,
                format!("{message} (deterministic crate)"),
            ));
        }
    }
}

/// Rule 2: panic-freedom. Library code must surface failures as errors,
/// not process aborts: no `unwrap`/`expect`, no panic-family macros, no
/// unchecked slice indexing.
fn panic_freedom(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.lexed.tokens.len() {
        if ctx.lexed.in_test_region(ctx.lexed.tokens[i].line) {
            continue;
        }
        if let Some((check, line, message)) = panic_site_at(ctx, i) {
            out.push(ctx.diag("panic", check, line, message));
        }
    }
}

/// Whether the token at `i` is a panic site. Shared by the per-file
/// rule 2 and the transitive rule 8's taint seeding.
pub(crate) fn panic_site_at(ctx: &FileCtx<'_>, i: usize) -> Option<Site> {
    let t = ctx.lexed.tokens.get(i)?;
    match t.lexeme.as_str() {
        "unwrap" | "expect"
            if i > 0 && lexeme_at(ctx, i - 1) == "." && lexeme_at(ctx, i + 1) == "(" =>
        {
            let check = if t.lexeme == "unwrap" {
                "unwrap"
            } else {
                "expect"
            };
            Some((
                check,
                t.line,
                format!(
                    ".{}() in library code: return an error or justify the invariant",
                    t.lexeme
                ),
            ))
        }
        "panic" | "todo" | "unimplemented" | "unreachable" if lexeme_at(ctx, i + 1) == "!" => {
            Some((
                "panic-macro",
                t.line,
                format!("{}! in library code aborts the process", t.lexeme),
            ))
        }
        "[" => {
            // Index expression: `expr[…]` — the token before `[` is an
            // identifier (not a keyword), `)`, or `]`. Array literals,
            // slice types/patterns, attributes, and `vec![…]` have
            // punctuation or keywords before the bracket.
            let prev = if i > 0 { lexeme_at(ctx, i - 1) } else { "" };
            let is_expr_prefix = prev == ")"
                || prev == "]"
                || (prev
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && !NON_INDEX_KEYWORDS.contains(&prev)
                    && !prev.starts_with('#'));
            is_expr_prefix.then(|| {
                (
                    "index",
                    t.line,
                    "slice index without `get`: out-of-range aborts the process".to_string(),
                )
            })
        }
        _ => None,
    }
}

/// Rule 3: cast audit. `as u32` / `as usize` silently truncate when the
/// source is wider; every site must be justified.
fn casts(ctx: &FileCtx<'_>, targets: &[String], out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if t.lexeme != "as" || ctx.lexed.in_test_region(t.line) {
            continue;
        }
        let target = lexeme_at(ctx, i + 1);
        if let Some(target) = targets.iter().find(|t| t.as_str() == target) {
            // `use x as usize` cannot occur (keywords aren't rename
            // targets), so `as <target>` is always a cast expression.
            let check: &'static str = match target.as_str() {
                "u32" => "u32",
                "usize" => "usize",
                "u8" => "u8",
                "u16" => "u16",
                "i32" => "i32",
                _ => "other",
            };
            out.push(ctx.diag(
                "casts",
                check,
                t.line,
                format!(
                    "`as {target}` can silently truncate: prove the bound (and allowlist) \
                     or use try_into"
                ),
            ));
        }
    }
}

/// Rule 4: unsafe audit. `unsafe` is denied everywhere unless the site
/// carries a `// SAFETY:` argument *and* an allowlist entry. (The
/// workspace also denies `unsafe_code` via lints; this rule covers any
/// future crate that opts back in.)
fn unsafe_audit(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for t in &ctx.lexed.tokens {
        if t.lexeme != "unsafe" {
            continue;
        }
        let has_safety_comment = (t.line.saturating_sub(3)..=t.line)
            .any(|l| ctx.lexed.comments_on(l).any(|c| c.text.contains("SAFETY:")));
        let mut d = ctx.diag(
            "unsafe",
            "unsafe",
            t.line,
            if has_safety_comment {
                "unsafe requires an analysis.toml entry naming the audit".into()
            } else {
                "unsafe without a `// SAFETY:` comment cannot be allowlisted".into()
            },
        );
        d.allowlistable = has_safety_comment;
        out.push(d);
    }
}

/// Rule 5: wire-size discipline. Any module that implements
/// `WireMessage` (or an inherent `encode`/`wire_size` frame codec) must
/// also carry a test referencing `wire_size`, so declared sizes can never
/// drift from encoded sizes unobserved.
fn wire_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut impl_line: Option<u32> = None;
    let mut has_encode = None;
    let mut has_wire_size_fn = None;
    for (i, t) in toks.iter().enumerate() {
        if ctx.lexed.in_test_region(t.line) {
            continue;
        }
        match t.lexeme.as_str() {
            // `impl WireMessage for T` (generics between `impl` and the
            // trait name don't matter: the trait name is directly followed
            // by `for`). The trait *declaration* is followed by `{`.
            "WireMessage" if lexeme_at(ctx, i + 1) == "for" => {
                impl_line.get_or_insert(t.line);
            }
            "fn" => match lexeme_at(ctx, i + 1) {
                "encode" => has_encode = has_encode.or(Some(t.line)),
                "wire_size" => has_wire_size_fn = has_wire_size_fn.or(Some(t.line)),
                _ => {}
            },
            _ => {}
        }
    }
    let codec_line = match (impl_line, has_encode.and(has_wire_size_fn)) {
        (Some(l), _) => Some(l),
        (None, Some(l)) => Some(l),
        (None, None) => None,
    };
    let Some(line) = codec_line else { return };
    let tested = toks
        .iter()
        .any(|t| t.lexeme == "wire_size" && ctx.lexed.in_test_region(t.line));
    if !tested {
        out.push(
            ctx.diag(
                "wire",
                "untested-wire-size",
                line,
                "wire codec without a wire_size-equality test in this module: declared sizes \
             can drift from encoded sizes"
                    .into(),
            ),
        );
    }
}

/// Observability types a result-path crate may never name: each one can
/// *read* recorded metrics or wall-clock spans, so its mere presence
/// means instrumentation could feed back into a result. The write-only
/// `Sink` is deliberately absent from this list.
const OBS_READ_TYPES: [&str; 6] = [
    "MetricsRegistry",
    "Observer",
    "Profiler",
    "SpanTree",
    "TraceLog",
    "WallStamper",
];

/// Rule 6: observability blindness. The engine crates thread a
/// write-only `Sink` for work accounting; the readable half of the
/// observability API (registries, the profiler, span trees, the
/// flight-recorder trace log, `obs::clock`, `obs::trace`) is reserved
/// for driver/bench code, so recording can never branch a result. Test
/// regions are exempt (tests *should* read registries to assert on
/// them).
fn obs_blindness(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if ctx.lexed.in_test_region(t.line) {
            continue;
        }
        match t.lexeme.as_str() {
            lex if OBS_READ_TYPES.contains(&lex) => out.push(ctx.diag(
                "obs",
                "read-type",
                t.line,
                format!(
                    "{lex} in a result-path crate: instrumentation must stay write-only here; \
                     thread a Sink and keep the readable half in driver code"
                ),
            )),
            "gdsearch_obs" | "obs" if seq_at(ctx, i + 1, &[":", ":", "clock"]) => {
                out.push(ctx.diag(
                    "obs",
                    "clock",
                    t.line,
                    "obs::clock in a result-path crate: wall-clock profiling is driver-only".into(),
                ));
            }
            "gdsearch_obs" | "obs" if seq_at(ctx, i + 1, &[":", ":", "trace"]) => {
                out.push(
                    ctx.diag(
                        "obs",
                        "trace",
                        t.line,
                        "obs::trace in a result-path crate: the flight recorder is readable \
                     (and driver-threaded); record through the Observer at driver points"
                            .into(),
                    ),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn run_on(src: &str, rel: &str) -> Vec<Diagnostic> {
        let mut cfg = Config::default();
        for name in crate::config::RULE_NAMES {
            let rc = cfg.rule_mut(name).unwrap();
            rc.paths.clear();
        }
        let lexed = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileCtx {
            rel_path: rel,
            lexed: &lexed,
            source_lines: &lines,
        };
        let mut out = Vec::new();
        run_rules(&ctx, &cfg, &mut out);
        out
    }

    fn checks(src: &str) -> Vec<(&'static str, &'static str)> {
        run_on(src, "src/lib.rs")
            .into_iter()
            .map(|d| (d.rule, d.check))
            .collect()
    }

    #[test]
    fn determinism_flags_hash_collections_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod t {\n    use std::collections::HashSet;\n}\n";
        let c = checks(src);
        assert_eq!(
            c.iter().filter(|(r, _)| *r == "determinism").count(),
            1,
            "{c:?}"
        );
    }

    #[test]
    fn determinism_distinguishes_instant_variant_from_std_instant() {
        assert!(checks("let b = SimBackend::Instant;")
            .iter()
            .all(|(r, _)| *r != "determinism"));
        assert!(checks("let t0 = Instant::now();")
            .iter()
            .any(|(_, c)| *c == "wall-clock"));
        assert!(checks("use std::time::Instant;")
            .iter()
            .any(|(_, c)| *c == "wall-clock"));
        assert!(checks("use std::time::{Duration, Instant};")
            .iter()
            .any(|(_, c)| *c == "wall-clock"));
        assert!(checks("use std::time::Duration;")
            .iter()
            .all(|(r, _)| *r != "determinism"));
    }

    #[test]
    fn determinism_flags_entropy_and_env() {
        assert!(checks("let mut r = thread_rng();")
            .iter()
            .any(|(_, c)| *c == "os-entropy"));
        assert!(checks("let p = std::env::temp_dir();")
            .iter()
            .any(|(_, c)| *c == "env-read"));
        assert!(checks("let v = env::var(\"X\");")
            .iter()
            .any(|(_, c)| *c == "env-read"));
    }

    #[test]
    fn panic_rule_flags_the_panic_family() {
        assert!(checks("x.unwrap();").iter().any(|(_, c)| *c == "unwrap"));
        assert!(checks("x.expect(\"m\");")
            .iter()
            .any(|(_, c)| *c == "expect"));
        assert!(checks("panic!(\"boom\");")
            .iter()
            .any(|(_, c)| *c == "panic-macro"));
        assert!(checks("todo!()").iter().any(|(_, c)| *c == "panic-macro"));
        // unwrap_or / unwrap_or_default are fine.
        assert!(checks("x.unwrap_or(0);")
            .iter()
            .all(|(_, c)| *c != "unwrap"));
    }

    #[test]
    fn index_heuristic() {
        assert!(checks("let y = xs[i];").iter().any(|(_, c)| *c == "index"));
        assert!(checks("f()[0];").iter().any(|(_, c)| *c == "index"));
        for benign in [
            "let [a, b] = pair;",
            "let t: [f32; 4] = x;",
            "#[derive(Debug)] struct S;",
            "vec![1, 2];",
            "return [1, 2];",
        ] {
            assert!(
                checks(benign).iter().all(|(_, c)| *c != "index"),
                "false positive on {benign}"
            );
        }
    }

    #[test]
    fn cast_rule_flags_configured_targets_only() {
        assert!(checks("let x = n as u32;").iter().any(|(_, c)| *c == "u32"));
        assert!(checks("let x = n as usize;")
            .iter()
            .any(|(_, c)| *c == "usize"));
        assert!(checks("let x = n as u64;")
            .iter()
            .all(|(r, _)| *r != "casts"));
        assert!(checks("let x = n as f32;")
            .iter()
            .all(|(r, _)| *r != "casts"));
    }

    #[test]
    fn unsafe_rule_requires_safety_comment_to_be_allowlistable() {
        let with = run_on(
            "// SAFETY: aligned by construction\nunsafe { f() }\n",
            "a.rs",
        );
        assert!(with[0].allowlistable);
        let without = run_on("unsafe { f() }\n", "a.rs");
        assert!(!without[0].allowlistable);
    }

    #[test]
    fn wire_rule_requires_test_reference() {
        let bad = "impl WireMessage for Foo {\n    fn wire_size(&self) -> usize { 4 }\n}\n";
        assert!(run_on(bad, "a.rs").iter().any(|d| d.rule == "wire"));
        let good = format!(
            "{bad}#[cfg(test)]\nmod t {{\n    #[test]\n    fn s() {{ assert_eq!(Foo.wire_size(), 4); }}\n}}\n"
        );
        assert!(run_on(&good, "a.rs").iter().all(|d| d.rule != "wire"));
        // Trait declaration alone does not trigger.
        let decl = "pub trait WireMessage {\n    fn wire_size(&self) -> usize;\n}\n";
        assert!(run_on(decl, "a.rs").iter().all(|d| d.rule != "wire"));
    }

    #[test]
    fn obs_rule_flags_readable_types_but_not_the_sink() {
        assert!(checks("use gdsearch_obs::MetricsRegistry;")
            .iter()
            .any(|(_, c)| *c == "read-type"));
        assert!(checks("fn f(obs: &mut Observer<'_>) {}")
            .iter()
            .any(|(_, c)| *c == "read-type"));
        assert!(checks("let p = Profiler::new();")
            .iter()
            .any(|(_, c)| *c == "read-type"));
        assert!(checks("use gdsearch_obs::clock::Span;")
            .iter()
            .any(|(_, c)| *c == "clock"));
        assert!(checks("let t = obs::clock::now();")
            .iter()
            .any(|(_, c)| *c == "clock"));
        assert!(checks("let mut log = TraceLog::new();")
            .iter()
            .any(|(_, c)| *c == "read-type"));
        assert!(checks("let w = WallStamper::new();")
            .iter()
            .any(|(_, c)| *c == "read-type"));
        assert!(checks("use gdsearch_obs::trace::TraceEvent;")
            .iter()
            .any(|(_, c)| *c == "trace"));
        assert!(
            checks("let json = obs::trace::chrome_trace_json(&log, None);")
                .iter()
                .any(|(_, c)| *c == "trace")
        );
        // The write-only sink is the sanctioned channel.
        assert!(checks("use gdsearch_obs::Sink;")
            .iter()
            .all(|(r, _)| *r != "obs"));
        // Tests may read registries to assert on them.
        let in_test = "#[cfg(test)]\nmod t {\n    use gdsearch_obs::MetricsRegistry;\n}\n";
        assert!(checks(in_test).iter().all(|(r, _)| *r != "obs"));
    }
}
