//! Whole-workspace call-graph construction.
//!
//! Turns the per-file item lists ([`crate::items`]) into one directed
//! graph: nodes are `fn` items, edges are *resolved* call sites. The
//! resolver is deliberately best-effort — it has no type information —
//! but errs in documented directions:
//!
//! - **Path calls** (`module::f(…)`, `Type::f(…)`) resolve through the
//!   file's `use` bindings, `crate`/`self`/`super`/`Self` anchors, and
//!   the per-crate symbol tables; an unmatched path falls back to a
//!   unique-suffix match across the workspace before giving up.
//! - **Bare calls** (`f(…)`) try the enclosing module chain, then the
//!   file's imports (incl. globs), then a unique same-crate match.
//! - **Method calls** (`x.f(…)`) carry no receiver type. A call is
//!   resolved only when exactly one workspace method of that name
//!   survives the locality filter (same file + same impl, then same
//!   crate, then impl type named somewhere in the calling file);
//!   anything else is recorded as unresolved rather than guessed.
//! - **Externals** (std, vendored stubs) never resolve; they are counted
//!   per name in [`CallGraph::unresolved`] so a `--graph-dot` dump shows
//!   exactly what the analysis cannot see. Nondeterminism and panics
//!   *inside* externals are covered by the lexical rules at the call
//!   site (`HashMap`, `.unwrap(`, …), not by reachability.
//!
//! Unresolved calls make reachability *under*-approximate; the lexical
//! rules 1–6 remain the per-file backstop. The transitive rules add the
//! cross-crate dimension on the edges that do resolve.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FileItems;
use crate::lexer::{Lexed, Token};

/// One scanned file with its lexical and item views.
pub struct SourceFile {
    /// `/`-separated path relative to the analysis root.
    pub rel_path: String,
    /// Full source text (the reachability rules slice snippets from it).
    pub source: String,
    pub lexed: Lexed,
    pub items: FileItems,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the file list.
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
    /// Display id: `crate::module::Type::name`.
    pub id: String,
    pub crate_name: String,
    pub is_pub: bool,
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// `edges[caller]` = sorted, deduplicated callee node indices.
    pub edges: Vec<Vec<usize>>,
    /// Call names that did not resolve to a workspace function, with
    /// occurrence counts (`f` for bare/path calls, `.f` for methods).
    pub unresolved: BTreeMap<String, usize>,
    /// Total resolved call sites.
    pub resolved_calls: usize,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "return", "for", "in", "move", "fn", "loop", "else", "let", "as",
];

fn lexeme(toks: &[Token], i: usize) -> &str {
    toks.get(i).map(|t| t.lexeme.as_str()).unwrap_or("")
}

fn is_ident(tok: &str) -> bool {
    tok.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !tok.starts_with('#')
}

fn is_type_like(seg: &str) -> bool {
    seg.chars().next().is_some_and(char::is_uppercase)
}

/// Derives `(crate name, module path)` from a workspace-relative path.
/// `crates/<c>/src/a/b.rs` → (`c`, `[a, b]`); files outside a crate's
/// `src/` (integration tests, examples, fixtures) each form their own
/// root so their items never collide with library symbols.
pub fn crate_and_module(rel: &str) -> (String, Vec<String>) {
    let segs: Vec<&str> = rel.split('/').collect();
    if segs.len() >= 4 && segs[0] == "crates" && segs[2] == "src" {
        let krate = segs[1].to_string();
        let mut module: Vec<String> = segs[3..segs.len() - 1]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let stem = segs[segs.len() - 1].trim_end_matches(".rs");
        if stem != "lib" && stem != "main" && stem != "mod" {
            module.push(stem.to_string());
        }
        return (krate, module);
    }
    // Own-root files: the path itself is the crate name.
    (rel.trim_end_matches(".rs").to_string(), Vec::new())
}

struct Symbols {
    /// Free fns by (crate, module path joined with `::`, name).
    free: BTreeMap<(String, String, String), Vec<usize>>,
    /// Free fns by (crate, name) — the unique-in-crate fallback.
    in_crate: BTreeMap<(String, String), Vec<usize>>,
    /// Impl/trait fns by (type, name).
    assoc: BTreeMap<(String, String), Vec<usize>>,
    /// Impl/trait fns by name — method resolution candidates.
    methods: BTreeMap<String, Vec<usize>>,
    /// Crate names reachable as extern path roots: `graph` and
    /// `gdsearch_graph` both anchor crate `graph`.
    crate_aliases: BTreeMap<String, String>,
}

/// Builds the call graph over `files`.
pub fn build(files: &[SourceFile]) -> CallGraph {
    let mut nodes = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let (krate, file_module) = crate_and_module(&f.rel_path);
        for (ii, item) in f.items.fns.iter().enumerate() {
            let mut id = String::new();
            id.push_str(&krate);
            for m in file_module.iter().chain(item.module_path.iter()) {
                id.push_str("::");
                id.push_str(m);
            }
            if let Some(t) = &item.impl_type {
                id.push_str("::");
                id.push_str(t);
            }
            id.push_str("::");
            id.push_str(&item.name);
            nodes.push(Node {
                file: fi,
                item: ii,
                id,
                crate_name: krate.clone(),
                is_pub: item.is_pub,
                line: item.line,
            });
        }
    }

    let mut sym = Symbols {
        free: BTreeMap::new(),
        in_crate: BTreeMap::new(),
        assoc: BTreeMap::new(),
        methods: BTreeMap::new(),
        crate_aliases: BTreeMap::new(),
    };
    let file_modules: Vec<(String, Vec<String>)> = files
        .iter()
        .map(|f| crate_and_module(&f.rel_path))
        .collect();
    for (ni, n) in nodes.iter().enumerate() {
        let item = &files[n.file].items.fns[n.item];
        let (krate, file_module) = &file_modules[n.file];
        sym.crate_aliases.insert(krate.clone(), krate.clone());
        sym.crate_aliases
            .insert(format!("gdsearch_{krate}"), krate.clone());
        match &item.impl_type {
            Some(t) => {
                sym.assoc
                    .entry((t.clone(), item.name.clone()))
                    .or_default()
                    .push(ni);
                sym.methods.entry(item.name.clone()).or_default().push(ni);
            }
            None => {
                let mut module = file_module.clone();
                module.extend(item.module_path.iter().cloned());
                sym.free
                    .entry((krate.clone(), module.join("::"), item.name.clone()))
                    .or_default()
                    .push(ni);
                sym.in_crate
                    .entry((krate.clone(), item.name.clone()))
                    .or_default()
                    .push(ni);
            }
        }
    }

    // Per-file ident sets for the method-locality filter.
    let file_idents: Vec<BTreeSet<&str>> = files
        .iter()
        .map(|f| {
            f.lexed
                .tokens
                .iter()
                .map(|t| t.lexeme.as_str())
                .filter(|l| is_ident(l))
                .collect()
        })
        .collect();

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut unresolved: BTreeMap<String, usize> = BTreeMap::new();
    let mut resolved_calls = 0usize;

    for ni in 0..nodes.len() {
        let n = &nodes[ni];
        let f = &files[n.file];
        let item = &f.items.fns[n.item];
        let Some((open, close)) = item.body else {
            continue;
        };
        let toks = &f.lexed.tokens;
        let (krate, file_module) = &file_modules[n.file];
        let mut module = file_module.clone();
        module.extend(item.module_path.iter().cloned());

        let mut i = open + 1;
        while i < close {
            let l = lexeme(toks, i);
            if !is_ident(l) || NON_CALL_KEYWORDS.contains(&l) || lexeme(toks, i + 1) != "(" {
                i += 1;
                continue;
            }
            let call = if lexeme(toks, i.wrapping_sub(1)) == "." {
                // `recv.f(…)` — method call, no receiver type known.
                resolve_method(ni, l, &nodes, &sym, &file_idents, files)
                    .ok_or_else(|| format!(".{l}"))
            } else {
                // Walk back over `::`-separated path segments.
                let mut segs: Vec<&str> = Vec::new();
                let mut j = i;
                while j >= 3 && lexeme(toks, j - 1) == ":" && lexeme(toks, j - 2) == ":" {
                    let prev = lexeme(toks, j - 3);
                    if is_ident(prev) {
                        segs.insert(0, prev);
                        j -= 3;
                    } else {
                        // `<T as Trait>::f(…)` / turbofish: opaque.
                        segs.clear();
                        segs.push("<qualified>");
                        break;
                    }
                }
                if segs.first() == Some(&"<qualified>") {
                    Err(l.to_string())
                } else {
                    resolve_path(
                        ni,
                        &segs,
                        l,
                        krate,
                        &module,
                        &nodes,
                        &sym,
                        &file_idents,
                        files,
                    )
                    .ok_or_else(|| {
                        let mut name = segs.join("::");
                        if !name.is_empty() {
                            name.push_str("::");
                        }
                        name.push_str(l);
                        name
                    })
                }
            };
            match call {
                Ok(callee) => {
                    edges[ni].push(callee);
                    resolved_calls += 1;
                }
                Err(name) => {
                    *unresolved.entry(name).or_insert(0) += 1;
                }
            }
            i += 1;
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    CallGraph {
        nodes,
        edges,
        unresolved,
        resolved_calls,
    }
}

/// Resolves a method call `recv.name(…)` from `caller` with locality
/// preference: same file + same impl, then unique in the caller's
/// crate, then unique among methods whose impl type the calling file
/// names. Ambiguity is unresolved, never guessed.
fn resolve_method(
    caller: usize,
    name: &str,
    nodes: &[Node],
    sym: &Symbols,
    file_idents: &[BTreeSet<&str>],
    files: &[SourceFile],
) -> Option<usize> {
    let cands = sym.methods.get(name)?;
    let cn = &nodes[caller];
    let caller_impl = files[cn.file].items.fns[cn.item].impl_type.as_deref();
    if let Some(ty) = caller_impl {
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                nodes[c].file == cn.file
                    && files[nodes[c].file].items.fns[nodes[c].item]
                        .impl_type
                        .as_deref()
                        == Some(ty)
            })
            .collect();
        if same.len() == 1 {
            return Some(same[0]);
        }
    }
    let in_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == cn.crate_name)
        .collect();
    if in_crate.len() == 1 {
        return Some(in_crate[0]);
    }
    let mentioned: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            files[nodes[c].file].items.fns[nodes[c].item]
                .impl_type
                .as_deref()
                .is_some_and(|t| file_idents[cn.file].contains(t))
        })
        .collect();
    if mentioned.len() == 1 {
        return Some(mentioned[0]);
    }
    None
}

/// Resolves `segs::name(…)` from `caller`.
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    caller: usize,
    segs: &[&str],
    name: &str,
    krate: &str,
    module: &[String],
    nodes: &[Node],
    sym: &Symbols,
    file_idents: &[BTreeSet<&str>],
    files: &[SourceFile],
) -> Option<usize> {
    let cn = &nodes[caller];
    let uses = &files[cn.file].items.uses;

    if segs.is_empty() {
        // Bare call: enclosing module chain (innermost out), imports,
        // unique-in-crate.
        let mut m = module.to_vec();
        loop {
            if let Some(v) = sym
                .free
                .get(&(krate.to_string(), m.join("::"), name.to_string()))
            {
                if v.len() == 1 {
                    return Some(v[0]);
                }
            }
            if m.pop().is_none() {
                break;
            }
        }
        for u in uses.iter().filter(|u| !u.glob && u.alias == name) {
            let segs: Vec<&str> = u.path.iter().map(String::as_str).collect();
            if segs.len() > 1 {
                if let Some(hit) = resolve_anchored(
                    &segs[..segs.len() - 1],
                    name,
                    krate,
                    module,
                    sym,
                    nodes,
                    file_idents,
                    cn.file,
                ) {
                    return Some(hit);
                }
            }
        }
        for u in uses.iter().filter(|u| u.glob) {
            let segs: Vec<&str> = u.path.iter().map(String::as_str).collect();
            if let Some(hit) =
                resolve_anchored(&segs, name, krate, module, sym, nodes, file_idents, cn.file)
            {
                return Some(hit);
            }
        }
        let v = sym.in_crate.get(&(krate.to_string(), name.to_string()))?;
        return if v.len() == 1 { Some(v[0]) } else { None };
    }

    // `Self::f(…)`: the caller's own impl type.
    if segs == ["Self"] {
        let ty = files[cn.file].items.fns[cn.item].impl_type.clone()?;
        return assoc_unique(sym, nodes, &ty, name, krate, file_idents, cn.file);
    }

    // Expand a leading import alias: `bfs::run(…)` after
    // `use gdsearch_graph::algo::bfs;`.
    if let Some(u) = uses.iter().find(|u| !u.glob && u.alias == segs[0]) {
        let mut full: Vec<&str> = u.path.iter().map(String::as_str).collect();
        full.extend(&segs[1..]);
        return resolve_anchored(&full, name, krate, module, sym, nodes, file_idents, cn.file);
    }
    resolve_anchored(segs, name, krate, module, sym, nodes, file_idents, cn.file)
}

/// Resolves `segs::name` once the leading alias (if any) is expanded.
/// Understands `crate`/`self`/`super`/`Self` anchors, crate-name roots,
/// associated fns on type-like tails, and falls back to a unique
/// module-suffix match.
#[allow(clippy::too_many_arguments)]
fn resolve_anchored(
    segs: &[&str],
    name: &str,
    krate: &str,
    module: &[String],
    sym: &Symbols,
    nodes: &[Node],
    file_idents: &[BTreeSet<&str>],
    caller_file: usize,
) -> Option<usize> {
    let mut segs = segs.to_vec();
    let mut krate = krate.to_string();
    let mut base: Vec<String> = module.to_vec();
    let mut anchored = false;

    while let Some(&first) = segs.first() {
        match first {
            "crate" => {
                base.clear();
                segs.remove(0);
                anchored = true;
            }
            "self" => {
                segs.remove(0);
                anchored = true;
            }
            "super" => {
                base.pop();
                segs.remove(0);
                anchored = true;
            }
            _ => {
                if let Some(c) = sym.crate_aliases.get(first) {
                    krate = c.clone();
                    base.clear();
                    segs.remove(0);
                    anchored = true;
                }
                break;
            }
        }
    }

    // Associated fn: the last segment is a type name.
    if let Some(&last) = segs.last() {
        if is_type_like(last) {
            return assoc_unique(sym, nodes, last, name, &krate, file_idents, caller_file);
        }
    }

    // Module path relative to the anchor.
    let mut full = base.clone();
    full.extend(segs.iter().map(|s| s.to_string()));
    if let Some(v) = sym
        .free
        .get(&(krate.clone(), full.join("::"), name.to_string()))
    {
        if v.len() == 1 {
            return Some(v[0]);
        }
    }
    // From the crate root (absolute module path without `crate::`).
    let rooted: Vec<String> = segs.iter().map(|s| s.to_string()).collect();
    if let Some(v) = sym
        .free
        .get(&(krate.clone(), rooted.join("::"), name.to_string()))
    {
        if v.len() == 1 {
            return Some(v[0]);
        }
    }
    if anchored {
        return None;
    }
    // Unique suffix match across the workspace: `push::forward(…)` hits
    // `diffusion::push::forward` when nothing else ends that way.
    let suffix = {
        let mut s = segs.join("::");
        s.push_str("::");
        s.push_str(name);
        format!("::{s}")
    };
    let hits: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.id.ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    if hits.len() == 1 {
        return Some(hits[0]);
    }
    None
}

/// Unique associated fn `(ty, name)`, preferring the caller's crate and
/// then files that name the type.
fn assoc_unique(
    sym: &Symbols,
    nodes: &[Node],
    ty: &str,
    name: &str,
    krate: &str,
    file_idents: &[BTreeSet<&str>],
    caller_file: usize,
) -> Option<usize> {
    let cands = sym.assoc.get(&(ty.to_string(), name.to_string()))?;
    if cands.len() == 1 {
        return Some(cands[0]);
    }
    let in_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == krate)
        .collect();
    if in_crate.len() == 1 {
        return Some(in_crate[0]);
    }
    let mentioned: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            file_idents[caller_file].contains(nodes[c].id.split("::").last().unwrap_or(""))
        })
        .collect();
    if mentioned.len() == 1 {
        return Some(mentioned[0]);
    }
    None
}

impl CallGraph {
    /// Renders the graph in Graphviz DOT, one node per function that has
    /// at least one edge (isolated nodes would drown the picture), plus
    /// an unresolved-call summary comment block.
    pub fn to_dot(&self, files: &[SourceFile]) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut live = vec![false; self.nodes.len()];
        for (a, es) in self.edges.iter().enumerate() {
            for &b in es {
                live[a] = true;
                live[b] = true;
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if live[i] {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\\n{}:{}\"];",
                    i, n.id, files[n.file].rel_path, n.line
                );
            }
        }
        for (a, es) in self.edges.iter().enumerate() {
            for &b in es {
                let _ = writeln!(out, "  n{a} -> n{b};");
            }
        }
        let _ = writeln!(
            out,
            "  // {} nodes, {} resolved call sites, {} distinct unresolved names",
            self.nodes.len(),
            self.resolved_calls,
            self.unresolved.len()
        );
        for (name, count) in &self.unresolved {
            let _ = writeln!(out, "  // unresolved {name} x{count}");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let items = parse_items(&lexed);
        SourceFile {
            rel_path: rel.to_string(),
            source: src.to_string(),
            lexed,
            items,
        }
    }

    fn idx(g: &CallGraph, id: &str) -> usize {
        g.nodes.iter().position(|n| n.id == id).unwrap_or_else(|| {
            panic!(
                "{id} missing from {:?}",
                g.nodes.iter().map(|n| &n.id).collect::<Vec<_>>()
            )
        })
    }

    fn has_edge(g: &CallGraph, a: &str, b: &str) -> bool {
        g.edges[idx(g, a)].contains(&idx(g, b))
    }

    #[test]
    fn crate_and_module_mapping() {
        assert_eq!(
            crate_and_module("crates/graph/src/lib.rs"),
            ("graph".into(), vec![])
        );
        assert_eq!(
            crate_and_module("crates/graph/src/algo/bfs.rs"),
            ("graph".into(), vec!["algo".into(), "bfs".into()])
        );
        assert_eq!(
            crate_and_module("crates/embed/src/index/mod.rs"),
            ("embed".into(), vec!["index".into()])
        );
        assert_eq!(
            crate_and_module("tests/tests/walk.rs").0,
            "tests/tests/walk"
        );
    }

    #[test]
    fn bare_and_module_calls_resolve_within_a_crate() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); sub::nested(); }\nfn helper() {}\nmod sub { pub fn nested() { super_helper(); } }\nfn super_helper() {}\n",
            ),
        ];
        let g = build(&files);
        assert!(has_edge(&g, "a::entry", "a::helper"));
        assert!(has_edge(&g, "a::entry", "a::sub::nested"));
        // Bare call from inside `sub` falls back to the module chain.
        assert!(has_edge(&g, "a::sub::nested", "a::super_helper"));
    }

    #[test]
    fn use_imports_resolve_across_crates() {
        let files = [
            file(
                "crates/graph/src/algo/bfs.rs",
                "pub fn run() {}\npub fn depth() {}\n",
            ),
            file(
                "crates/core/src/walk.rs",
                "use gdsearch_graph::algo::bfs;\nuse gdsearch_graph::algo::bfs::depth;\npub fn go() { bfs::run(); depth(); }\n",
            ),
        ];
        let g = build(&files);
        assert!(has_edge(&g, "core::walk::go", "graph::algo::bfs::run"));
        assert!(has_edge(&g, "core::walk::go", "graph::algo::bfs::depth"));
    }

    #[test]
    fn assoc_and_method_calls_resolve_uniquely() {
        let files = [
            file(
                "crates/graph/src/sharded.rs",
                "pub struct ShardedGraph;\nimpl ShardedGraph {\n    pub fn from_graph() -> Self { ShardedGraph }\n    pub fn peers_of(&self) {}\n}\n",
            ),
            file(
                "crates/core/src/scheme.rs",
                "use gdsearch_graph::sharded::ShardedGraph;\npub fn build() { let s = ShardedGraph::from_graph(); s.peers_of(); }\n",
            ),
        ];
        let g = build(&files);
        assert!(has_edge(
            &g,
            "core::scheme::build",
            "graph::sharded::ShardedGraph::from_graph"
        ));
        assert!(has_edge(
            &g,
            "core::scheme::build",
            "graph::sharded::ShardedGraph::peers_of"
        ));
    }

    #[test]
    fn ambiguous_methods_stay_unresolved() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "pub struct X;\nimpl X { pub fn tick(&self) {} }\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "pub struct Y;\nimpl Y { pub fn tick(&self) {} }\n",
            ),
            file("crates/c/src/lib.rs", "pub fn go(v: &V) { v.tick(); }\n"),
        ];
        let g = build(&files);
        assert_eq!(g.edges[idx(&g, "c::go")], Vec::<usize>::new());
        assert_eq!(g.unresolved.get(".tick"), Some(&1));
    }

    #[test]
    fn self_method_calls_prefer_the_same_impl() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "pub struct E;\nimpl E {\n    pub fn run(&self) { self.step(); }\n    fn step(&self) {}\n}\n",
            ),
        ];
        let g = build(&files);
        assert!(has_edge(&g, "a::E::run", "a::E::step"));
    }

    #[test]
    fn externals_are_counted_not_guessed() {
        let files = [file(
            "crates/a/src/lib.rs",
            "pub fn f(v: Vec<u32>) { std::mem::drop(v); }\n",
        )];
        let g = build(&files);
        assert!(g.edges[0].is_empty());
        assert_eq!(g.unresolved.get("std::mem::drop"), Some(&1));
    }

    #[test]
    fn dot_export_names_nodes_and_edges() {
        let files = [file(
            "crates/a/src/lib.rs",
            "pub fn entry() { helper(); }\nfn helper() {}\n",
        )];
        let g = build(&files);
        let dot = g.to_dot(&files);
        assert!(dot.contains("a::entry"));
        assert!(dot.contains("->"));
        assert!(dot.starts_with("digraph callgraph"));
    }
}
