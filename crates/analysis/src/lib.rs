//! `gdsearch-analysis` — workspace determinism & safety analyzer.
//!
//! The repo's central claim is that diffusion results are bit-for-bit
//! identical across engines, shard counts, thread counts, and transports.
//! That claim is *dynamic* (proptests sample the space); this crate makes
//! its preconditions *static*: a hand-rolled Rust lexer ([`lexer`]) feeds
//! a rule engine ([`rules`]) that walks every `.rs` file in the workspace
//! and reports violations of six per-file invariants:
//!
//! 1. **determinism** — no hash-map iteration-order dependence, wall
//!    clocks, OS entropy, or environment reads in the library crates'
//!    result paths;
//! 2. **panic** — no `unwrap`/`expect`/panic-family macros/unchecked
//!    indexing in library code (tests and the bench harness are exempt);
//! 3. **casts** — every `as u32`/`as usize` narrowing cast is audited;
//! 4. **unsafe** — `unsafe` is denied without a `// SAFETY:` argument
//!    *and* an allowlist entry;
//! 5. **wire** — every wire codec module carries a `wire_size`-equality
//!    test, so declared frame sizes cannot drift from encoded sizes;
//! 6. **obs** — result paths never *read* instrumentation.
//!
//! On top of the same lexer, an item parser ([`items`]) and a workspace
//! call-graph builder ([`callgraph`]) feed two *transitive* rules
//! ([`reach`]) that make the first two invariants global:
//!
//! 7. **transitive-determinism** — no public result-path entry point may
//!    reach a nondeterminism source through any call chain, even in
//!    crates rule 1 does not cover;
//! 8. **panic-provenance** — the same reachability for panic sites, each
//!    finding carrying the full `fn (file:line)` provenance chain.
//!
//! Audited exceptions live in `analysis.toml` ([`config`]); each entry
//! carries a mandatory one-line justification, may pin a sub-check and a
//! line pattern, and may cap the number of sites it absorbs (`max`) so a
//! file quietly growing new violations still fails the gate. Unused
//! entries are themselves errors: the allowlist can only shrink.
//!
//! Run `cargo run -p gdsearch-analysis` from the workspace root; the
//! binary exits nonzero on any violation and is a required CI job.

pub mod callgraph;
pub mod config;
pub mod items;
pub mod json;
pub mod lexer;
pub mod reach;
pub mod report;
pub mod rules;
pub mod toml;

use std::fmt;
use std::path::{Path, PathBuf};

use callgraph::SourceFile;
use config::{AllowEntry, Config};
use rules::{Diagnostic, FileCtx};

/// Outcome of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Violations that survived comment justifications and the allowlist,
    /// sorted by (rule, path, line).
    pub violations: Vec<Diagnostic>,
    /// Allowlist bookkeeping errors (stale entries, exceeded `max`).
    pub allowlist_errors: Vec<String>,
    /// Number of scanned files.
    pub files_scanned: usize,
    /// Sites absorbed by allowlist entries.
    pub allowlisted_sites: usize,
    /// Sites suppressed by inline `analysis:allow(rule)` comments.
    pub comment_justified_sites: usize,
    /// The allowlist with per-entry usage counts filled in.
    pub allows: Vec<AllowEntry>,
}

impl Analysis {
    /// Whether the tree is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// Analysis-run failure (I/O or configuration).
#[derive(Debug)]
pub struct AnalysisError(pub String);

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for AnalysisError {}

/// Runs the analyzer over `root` with `cfg`.
pub fn analyze(root: &Path, cfg: &Config) -> Result<Analysis, AnalysisError> {
    analyze_with_graph(root, cfg, false).map(|(a, _)| a)
}

/// Runs the analyzer; with `want_dot`, also returns the workspace call
/// graph rendered as Graphviz DOT (for `--graph-dot`).
pub fn analyze_with_graph(
    root: &Path,
    cfg: &Config,
    want_dot: bool,
) -> Result<(Analysis, Option<String>), AnalysisError> {
    let mut paths = Vec::new();
    for dir in &cfg.roots {
        let base = if dir == "." {
            root.to_path_buf()
        } else {
            root.join(dir)
        };
        collect_rs_files(&base, &mut paths);
    }
    paths.sort();
    paths.dedup();

    let mut cfg = cfg.clone();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut comment_justified = 0usize;

    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &paths {
        let rel = relative_slash_path(root, path);
        if cfg.exclude.iter().any(|e| {
            let e = e.strip_suffix('/').unwrap_or(e);
            rel == e || rel.starts_with(&format!("{e}/"))
        }) {
            continue;
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| AnalysisError(format!("{}: {e}", path.display())))?;
        let lexed = lexer::lex(&src);
        let items = items::parse_items(&lexed);
        sources.push(SourceFile {
            rel_path: rel,
            source: src,
            lexed,
            items,
        });
    }
    let files_scanned = sources.len();

    for f in &sources {
        let lines: Vec<&str> = f.source.lines().collect();
        let ctx = FileCtx {
            rel_path: &f.rel_path,
            lexed: &f.lexed,
            source_lines: &lines,
        };
        rules::run_rules(&ctx, &cfg, &mut raw);
    }

    // The transitive rules (and the DOT export) need the call graph.
    let mut dot = None;
    if cfg.transitive.enabled || cfg.provenance.enabled || want_dot {
        let graph = callgraph::build(&sources);
        reach::run_reach(&sources, &graph, &cfg, &mut raw);
        if want_dot {
            dot = Some(graph.to_dot(&sources));
        }
    }

    // Inline justification: a comment on the flagged line or the line
    // above containing `analysis:allow(<rule>)`. Not honored for
    // `unsafe` (which demands the manifest). Applies uniformly to the
    // lexical and transitive rules — a chain diagnostic is justified at
    // its seed site.
    let lexed_by_rel: std::collections::BTreeMap<&str, &lexer::Lexed> = sources
        .iter()
        .map(|f| (f.rel_path.as_str(), &f.lexed))
        .collect();
    let raw: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let inline_ok = d.rule != "unsafe"
                && lexed_by_rel.get(d.path.as_str()).is_some_and(|lexed| {
                    (d.line.saturating_sub(1)..=d.line).any(|l| {
                        lexed
                            .comments_on(l)
                            .any(|c| c.text.contains(&format!("analysis:allow({})", d.rule)))
                    })
                });
            if inline_ok {
                comment_justified += 1;
            }
            !inline_ok
        })
        .collect();

    // Allowlist pass: the first covering entry absorbs a diagnostic.
    let mut violations = Vec::new();
    let mut allowlisted = 0usize;
    for d in raw {
        let entry = d.allowlistable.then(|| {
            cfg.allows
                .iter_mut()
                .find(|e| e.covers(d.rule, d.check, &d.path, &d.snippet))
        });
        match entry.flatten() {
            Some(e) => {
                e.used += 1;
                allowlisted += 1;
            }
            None => violations.push(d),
        }
    }
    violations.sort_by(|a, b| {
        let ra = config::RULE_NAMES.iter().position(|r| *r == a.rule);
        let rb = config::RULE_NAMES.iter().position(|r| *r == b.rule);
        (ra, &a.path, a.line).cmp(&(rb, &b.path, b.line))
    });

    // Allowlist bookkeeping: stale entries and exceeded caps are errors.
    // Entries for disabled rules are skipped (e.g. a `--rule` subset run
    // must not report the other rules' entries as stale).
    let mut allowlist_errors = Vec::new();
    for e in &cfg.allows {
        let enabled = cfg.rule(&e.rule).is_some_and(|rc| rc.enabled);
        if !enabled {
            continue;
        }
        if e.used == 0 {
            allowlist_errors.push(format!(
                "stale allowlist entry ({} {}): matched no site — delete it",
                e.rule, e.path
            ));
        } else if e.max.is_some_and(|m| e.used > m) {
            allowlist_errors.push(format!(
                "allowlist drift ({} {}): {} sites exceed the audited max of {} — \
                 new violations were added to this file",
                e.rule,
                e.path,
                e.used,
                e.max.unwrap_or(0)
            ));
        }
    }

    Ok((
        Analysis {
            violations,
            allowlist_errors,
            files_scanned,
            allowlisted_sites: allowlisted,
            comment_justified_sites: comment_justified,
            allows: cfg.allows,
        },
        dot,
    ))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, content: &str) {
        let p = dir.join(rel);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(p, content).unwrap();
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("gdsearch-analysis-test")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg_everywhere() -> Config {
        let mut cfg = Config {
            roots: vec![".".into()],
            exclude: Vec::new(),
            ..Config::default()
        };
        for name in config::RULE_NAMES {
            cfg.rule_mut(name).unwrap().paths.clear();
        }
        cfg
    }

    #[test]
    fn end_to_end_violation_and_inline_justification() {
        let dir = scratch("e2e");
        write(&dir, "a.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
        write(
            &dir,
            "b.rs",
            "// analysis:allow(panic) — demo justification\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let a = analyze(&dir, &cfg_everywhere()).unwrap();
        assert_eq!(a.files_scanned, 2);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert_eq!(a.violations[0].path, "a.rs");
        assert_eq!(a.comment_justified_sites, 1);
    }

    #[test]
    fn allowlist_absorbs_and_catches_drift() {
        let dir = scratch("allow");
        write(&dir, "a.rs", "fn f() { g().unwrap(); h().unwrap(); }\n");
        let mut cfg = cfg_everywhere();
        cfg.allows.push(AllowEntry {
            rule: "panic".into(),
            check: Some("unwrap".into()),
            path: "a.rs".into(),
            pattern: None,
            max: Some(2),
            reason: "test".into(),
            used: 0,
        });
        let a = analyze(&dir, &cfg).unwrap();
        assert!(a.clean(), "{:?} {:?}", a.violations, a.allowlist_errors);
        assert_eq!(a.allowlisted_sites, 2);

        // One more unwrap than the audited max: drift error.
        write(
            &dir,
            "a.rs",
            "fn f() { g().unwrap(); h().unwrap(); i().unwrap(); }\n",
        );
        let a = analyze(&dir, &cfg).unwrap();
        assert!(!a.clean());
        assert!(a.allowlist_errors[0].contains("drift"));
    }

    #[test]
    fn stale_entries_fail() {
        let dir = scratch("stale");
        write(&dir, "a.rs", "fn f() {}\n");
        let mut cfg = cfg_everywhere();
        cfg.allows.push(AllowEntry {
            rule: "panic".into(),
            check: None,
            path: "gone.rs".into(),
            pattern: None,
            max: None,
            reason: "obsolete".into(),
            used: 0,
        });
        let a = analyze(&dir, &cfg).unwrap();
        assert!(!a.clean());
        assert!(a.allowlist_errors[0].contains("stale"));
    }

    #[test]
    fn excluded_paths_are_not_scanned() {
        let dir = scratch("exclude");
        write(&dir, "vendor/bad.rs", "fn f() { x.unwrap(); }\n");
        let mut cfg = cfg_everywhere();
        cfg.exclude = vec!["vendor/".into()];
        let a = analyze(&dir, &cfg).unwrap();
        assert_eq!(a.files_scanned, 0);
        assert!(a.clean());
    }
}
