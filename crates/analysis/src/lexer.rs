//! A small hand-rolled Rust tokenizer.
//!
//! The analyzer needs just enough lexical structure to run token-pattern
//! rules without being fooled by comments, strings, raw strings, char
//! literals, or lifetimes — the classic failure modes of `grep`-based
//! linting. It does **not** parse: rules work on the token stream plus a
//! side table of comments (needed for justification markers) and a map of
//! `#[cfg(test)]` / `#[test]` regions (needed for test-code exemptions).
//!
//! `syn` is deliberately not used: the build environment is offline and
//! `vendor/` carries only the API stubs this workspace needs.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized lexeme: identifiers and keywords verbatim, punctuation
    /// as a single char, `"#str"` for any string/char literal, `"#num"`
    /// for any numeric literal, `"#lt"` for lifetimes.
    pub lexeme: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on and the
/// 1-based line it ends on (equal for `//` comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` modules or
    /// `#[test]` functions.
    pub test_regions: Vec<(u32, u32)>,
}

impl Lexed {
    /// Whether `line` falls inside a test module or `#[test]` function.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Comments whose span touches `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.start_line <= line && line <= c.end_line)
    }
}

/// Lexes `src`, returning tokens, comments, and test regions.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = line;
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: start,
                text,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = line;
            let mut depth = 1;
            let mut text = String::from("/*");
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    text.push('/');
                    i += 1;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push('*');
                    i += 1;
                }
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: line,
                text,
            });
            continue;
        }
        // Raw strings / byte strings / raw identifiers: r"", r#""#, br"",
        // b"", c"", r#ident.
        if is_ident_start(c) {
            // Check for string prefixes before treating as an identifier.
            let (prefix_len, hashes_allowed) = match c {
                'r' | 'c' => (1, true),
                'b' if i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '\'') => (1, false),
                'b' if i + 1 < n && chars[i + 1] == 'r' => (2, true),
                _ => (0, false),
            };
            if prefix_len > 0 {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                if hashes_allowed {
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                }
                if j < n && chars[j] == '"' {
                    // Raw or prefixed string: scan to closing quote + hashes.
                    let tok_line = line;
                    let raw = hashes_allowed && (hashes > 0 || chars[i] != 'b' || prefix_len == 2);
                    // For r/br/c strings escapes are inert; for b"" they
                    // behave like normal strings.
                    let escapes = !raw || hashes == 0 && c == 'b' && prefix_len == 1;
                    i = j + 1;
                    loop {
                        if i >= n {
                            break;
                        }
                        let ch = chars[i];
                        if ch == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if escapes && ch == '\\' {
                            i += 2;
                            continue;
                        }
                        if ch == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break;
                            }
                        }
                        i += 1;
                    }
                    out.tokens.push(Token {
                        lexeme: "#str".into(),
                        line: tok_line,
                    });
                    continue;
                }
                if hashes > 0 && j < n && is_ident_start(chars[j]) {
                    // Raw identifier r#ident: lex the identifier itself.
                    let start = j;
                    let mut k = j;
                    while k < n && is_ident_cont(chars[k]) {
                        k += 1;
                    }
                    let ident: String = chars[start..k].iter().collect();
                    out.tokens.push(Token {
                        lexeme: ident,
                        line,
                    });
                    i = k;
                    continue;
                }
                if i + prefix_len < n && chars[i + prefix_len] == '\'' && c == 'b' {
                    // Byte char literal b'x'.
                    i += prefix_len; // fall through to char-literal handling
                    continue;
                }
            }
            // Plain identifier / keyword.
            let start = i;
            while i < n && is_ident_cont(chars[i]) {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            out.tokens.push(Token {
                lexeme: ident,
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let tok_line = line;
            i += 1;
            while i < n {
                let ch = chars[i];
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else if ch == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
                    // `1.5` but not the range `1..5`.
                    i += 1;
                } else if (ch == '+' || ch == '-')
                    && matches!(chars[i - 1], 'e' | 'E')
                    && i + 1 < n
                    && chars[i + 1].is_ascii_digit()
                {
                    // Exponent sign in `1e-5`.
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                lexeme: "#num".into(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote ('a, 'static); char
            // literal otherwise ('a', '\n', '\'').
            let next_is_ident = i + 1 < n && is_ident_cont(chars[i + 1]) && chars[i + 1] != '\\';
            let closes = i + 2 < n && chars[i + 2] == '\'';
            if next_is_ident && !closes {
                let mut k = i + 1;
                while k < n && is_ident_cont(chars[k]) {
                    k += 1;
                }
                out.tokens.push(Token {
                    lexeme: "#lt".into(),
                    line,
                });
                i = k;
                continue;
            }
            // Char literal: consume to closing quote with escapes.
            let tok_line = line;
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '\'' {
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            out.tokens.push(Token {
                lexeme: "#str".into(),
                line: tok_line,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            let tok_line = line;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                lexeme: "#str".into(),
                line: tok_line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            lexeme: c.to_string(),
            line,
        });
        i += 1;
    }

    out.test_regions = find_test_regions(&out.tokens);
    out
}

/// Scans the token stream for `#[cfg(test)] mod … { … }` and
/// `#[test] fn … { … }` regions, returning inclusive line ranges.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].lexeme != "#" {
            i += 1;
            continue;
        }
        // Attribute: `#[ … ]` (balanced brackets). Collect its idents.
        let Some(attr_end) = balanced(tokens, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        let attr = &tokens[i + 1..=attr_end];
        let idents: Vec<&str> = attr.iter().map(|t| t.lexeme.as_str()).collect();
        // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
        // `#[cfg(not(test))]`, which guards *non*-test code.
        let is_test_attr = idents == ["[", "test", "]"]
            || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then find the item's body braces.
        let mut j = attr_end + 1;
        while j < tokens.len() && tokens[j].lexeme == "#" {
            match balanced(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Scan forward to the first `{` or a terminating `;` (e.g.
        // `#[cfg(test)] mod tests;` or a cfg'd use/statement).
        let mut k = j;
        let mut body_open = None;
        while k < tokens.len() {
            match tokens[k].lexeme.as_str() {
                "{" => {
                    body_open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        if let Some(open) = body_open {
            if let Some(close) = balanced(tokens, open, "{", "}") {
                regions.push((tokens[i].line, tokens[close].line));
                i = close + 1;
                continue;
            }
        }
        i = k + 1;
    }
    regions
}

/// Starting with the opener expected at `tokens[start]`, returns the index
/// of the matching closer.
fn balanced(tokens: &[Token], start: usize, open: &str, close: &str) -> Option<usize> {
    if tokens.get(start)?.lexeme != open {
        return None;
    }
    let mut depth = 0i32;
    for (idx, t) in tokens.iter().enumerate().skip(start) {
        if t.lexeme == open {
            depth += 1;
        } else if t.lexeme == close {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lexemes(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.lexeme).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            lexemes("let x = a.unwrap();"),
            ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
        assert_eq!(
            lexemes("1.5e-3 + 0x_ff .. 7"),
            ["#num", "+", "#num", ".", ".", "#num"]
        );
    }

    #[test]
    fn comments_are_trivia_not_tokens() {
        let l = lex("a // HashMap\n/* unwrap() */ b");
        let toks: Vec<_> = l.tokens.iter().map(|t| t.lexeme.as_str()).collect();
        assert_eq!(toks, ["a", "b"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.tokens[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].lexeme, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(lexemes(r#"f("unwrap() HashMap")"#), ["f", "(", "#str", ")"]);
        assert_eq!(lexemes("r#\"as u32 \" quote\"#;"), ["#str", ";"]);
        assert_eq!(lexemes("b\"panic!\""), ["#str"]);
        assert_eq!(lexemes("br#\"todo!\"#"), ["#str"]);
    }

    #[test]
    fn multiline_and_escaped_strings_track_lines() {
        let l = lex("\"a\\\"b\nc\" x");
        assert_eq!(l.tokens[0].lexeme, "#str");
        assert_eq!(l.tokens[1].lexeme, "x");
        assert_eq!(l.tokens[1].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(lexemes("&'a str"), ["&", "#lt", "str"]);
        assert_eq!(lexemes("'x'"), ["#str"]);
        assert_eq!(lexemes(r"'\n'"), ["#str"]);
        assert_eq!(lexemes("'_"), ["#lt"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(lexemes("r#type"), ["type"]);
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let l = lex(src);
        assert_eq!(l.test_regions, vec![(2, 5)]);
        assert!(l.in_test_region(4));
        assert!(!l.in_test_region(1));
        assert!(!l.in_test_region(6));
    }

    #[test]
    fn test_regions_cover_test_fns_and_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() {\n    x();\n}\nfn real() {}\n";
        let l = lex(src);
        assert_eq!(l.test_regions, vec![(1, 5)]);
        assert!(!l.in_test_region(6));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t {\n fn f() {}\n}\n";
        let l = lex(src);
        assert_eq!(l.test_regions, vec![(1, 4)]);
    }
}
