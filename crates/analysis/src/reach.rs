//! Taint/reachability over the workspace call graph (rules 7 & 8).
//!
//! The lexical rules 1 and 2 check nondeterminism and panic sites *per
//! file*, inside an audited path scope. A `HashMap` or `.unwrap()`
//! hidden behind a helper in a crate outside that scope is invisible to
//! them — yet a result-path entry point calling it inherits the hazard.
//! This pass closes that gap transitively:
//!
//! - **Entry points** are the public, non-test functions of the files
//!   the rule's `paths` cover (by default the five deterministic
//!   crates' result surfaces).
//! - **Seeds** are nondeterminism sources (rule 7) or panic sites
//!   (rule 8) found in function bodies of files the corresponding
//!   lexical rule does *not* cover. In-scope sites are already flagged
//!   (or audited) by rules 1–2; seeding only out-of-scope files means
//!   no site is ever reported twice and existing audits stay
//!   authoritative.
//! - A multi-source BFS from the entry points marks every reachable
//!   function; each reachable seed becomes one diagnostic carrying its
//!   **provenance chain** — the shortest call path from an entry point
//!   to the seed, `fn (file:line)` at every hop.
//!
//! Reported line/snippet are the seed site's, so `analysis.toml`
//! entries and inline `analysis:allow(…)` comments scope the same way
//! they do for the lexical rules. Unresolved calls (externals,
//! ambiguous methods) make the pass under-approximate; the lexical
//! rules remain the per-file backstop.

use std::collections::{BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, SourceFile};
use crate::config::{Config, RuleConfig};
use crate::rules::{self, Diagnostic, FileCtx, Site};

/// Runs the enabled transitive rules and appends their diagnostics.
pub fn run_reach(files: &[SourceFile], graph: &CallGraph, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.transitive.enabled {
        run_rule(
            files,
            graph,
            &cfg.transitive,
            &cfg.determinism,
            "transitive-determinism",
            rules::determinism_site_at,
            out,
        );
    }
    if cfg.provenance.enabled {
        run_rule(
            files,
            graph,
            &cfg.provenance,
            &cfg.panic,
            "panic-provenance",
            rules::panic_site_at,
            out,
        );
    }
}

fn run_rule(
    files: &[SourceFile],
    graph: &CallGraph,
    rule_cfg: &RuleConfig,
    lexical: &RuleConfig,
    rule: &'static str,
    site_at: fn(&FileCtx<'_>, usize) -> Option<Site>,
    out: &mut Vec<Diagnostic>,
) {
    let lines: Vec<Vec<&str>> = files.iter().map(|f| f.source.lines().collect()).collect();
    let ctx_for = |fi: usize| FileCtx {
        rel_path: &files[fi].rel_path,
        lexed: &files[fi].lexed,
        source_lines: &lines[fi],
    };

    // Multi-source BFS from the entry points, recording parents so the
    // shortest provenance chain can be reconstructed per seed.
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut visited = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for (ni, n) in graph.nodes.iter().enumerate() {
        let f = &files[n.file];
        if n.is_pub && rule_cfg.applies_to(&f.rel_path) && !f.lexed.in_test_region(n.line) {
            visited[ni] = true;
            queue.push_back(ni);
        }
    }
    while let Some(a) = queue.pop_front() {
        for &b in &graph.edges[a] {
            if !visited[b] {
                visited[b] = true;
                parent[b] = Some(a);
                queue.push_back(b);
            }
        }
    }

    for (ni, n) in graph.nodes.iter().enumerate() {
        if !visited[ni] || lexical.applies_to(&files[n.file].rel_path) {
            continue;
        }
        let item = &files[n.file].items.fns[n.item];
        let Some((open, close)) = item.body else {
            continue;
        };
        let ctx = ctx_for(n.file);
        let mut seen: BTreeSet<(&'static str, u32)> = BTreeSet::new();
        for i in open + 1..close {
            let Some((check, line, message)) = site_at(&ctx, i) else {
                continue;
            };
            if ctx.lexed.in_test_region(line) || !seen.insert((check, line)) {
                continue;
            }
            // Chain: entry → … → seed fn, `fn (file:line)` per hop. The
            // seed hop carries the site line, the rest their decl line.
            let mut chain = Vec::new();
            chain.push(format!("{} ({}:{line})", n.id, files[n.file].rel_path));
            let mut at = ni;
            while let Some(p) = parent[at] {
                let pn = &graph.nodes[p];
                chain.push(format!(
                    "{} ({}:{})",
                    pn.id, files[pn.file].rel_path, pn.line
                ));
                at = p;
            }
            chain.reverse();
            let entry_id = &graph.nodes[at].id;
            out.push(Diagnostic {
                rule,
                check,
                path: files[n.file].rel_path.clone(),
                line,
                message: format!(
                    "{message} — reachable from pub `{entry_id}` \
                     through {} call(s)",
                    chain.len() - 1
                ),
                snippet: ctx.snippet(line),
                allowlistable: true,
                chain,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let items = parse_items(&lexed);
        SourceFile {
            rel_path: rel.to_string(),
            source: src.to_string(),
            lexed,
            items,
        }
    }

    /// Rule 7 scoped to crate `a`, lexical determinism also scoped to
    /// crate `a` — so crates `b`/`c` are seed territory.
    fn cfg() -> Config {
        let mut cfg = Config::default();
        for name in crate::config::RULE_NAMES {
            let rc = cfg.rule_mut(name).unwrap();
            rc.paths = vec!["crates/a/src/".into()];
            rc.exclude.clear();
        }
        cfg
    }

    #[test]
    fn two_hop_chain_is_reported_with_provenance() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "pub fn entry() { gdsearch_b::helper(); }\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "pub fn helper() { gdsearch_c::tainted(); }\n",
            ),
            file(
                "crates/c/src/lib.rs",
                "pub fn tainted() { let m: HashMap<u32, u32> = HashMap::new(); drop(m); }\n",
            ),
        ];
        let g = build(&files);
        let mut out = Vec::new();
        run_reach(&files, &g, &cfg(), &mut out);
        let d: Vec<_> = out
            .iter()
            .filter(|d| d.rule == "transitive-determinism")
            .collect();
        // Two `HashMap` tokens on the line dedup to one site.
        assert_eq!(d.len(), 1, "{out:?}");
        assert_eq!(d[0].check, "hash-collection");
        assert_eq!(d[0].path, "crates/c/src/lib.rs");
        assert_eq!(
            d[0].chain,
            vec![
                "a::entry (crates/a/src/lib.rs:1)".to_string(),
                "b::helper (crates/b/src/lib.rs:1)".to_string(),
                "c::tainted (crates/c/src/lib.rs:1)".to_string(),
            ]
        );
        assert!(d[0].message.contains("a::entry"));
    }

    #[test]
    fn unreachable_seeds_stay_silent() {
        let files = [
            file("crates/a/src/lib.rs", "pub fn entry() {}\n"),
            file(
                "crates/c/src/lib.rs",
                "pub fn tainted() { let m = HashMap::new(); drop(m); }\n",
            ),
        ];
        let g = build(&files);
        let mut out = Vec::new();
        run_reach(&files, &g, &cfg(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn in_scope_sites_are_left_to_the_lexical_rule() {
        // The site is inside crate `a`, which the lexical determinism
        // rule covers — rule 7 must not double-report it.
        let files = [file(
            "crates/a/src/lib.rs",
            "pub fn entry() { let m = HashMap::new(); drop(m); }\n",
        )];
        let g = build(&files);
        let mut out = Vec::new();
        run_reach(&files, &g, &cfg(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_provenance_seeds_at_unwrap_sites() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "pub fn entry(x: Option<u32>) { gdsearch_b::force(x); }\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "pub fn force(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ];
        let g = build(&files);
        let mut out = Vec::new();
        run_reach(&files, &g, &cfg(), &mut out);
        let d: Vec<_> = out
            .iter()
            .filter(|d| d.rule == "panic-provenance")
            .collect();
        assert_eq!(d.len(), 1, "{out:?}");
        assert_eq!(d[0].check, "unwrap");
        assert_eq!(d[0].chain.len(), 2);
    }

    #[test]
    fn private_and_test_fns_are_not_entry_points() {
        let files = [
            file(
                "crates/a/src/lib.rs",
                "fn private_entry() { gdsearch_b::force(); }\n\
                 #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { gdsearch_b::force(); }\n}\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "pub fn force() { panic!(\"boom\") }\n",
            ),
        ];
        let g = build(&files);
        let mut out = Vec::new();
        run_reach(&files, &g, &cfg(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
