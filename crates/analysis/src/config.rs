//! Analyzer configuration: rule toggles, scan scope, and the allowlist.
//!
//! Built-in defaults encode the workspace's invariants; `analysis.toml`
//! at the workspace root can toggle rules, re-scope them (fixtures use
//! this), and — most importantly — carry the audited allowlist entries.

use std::fmt;
use std::path::Path;

use crate::toml::{self, Document, Table};

/// The eight rule identifiers, in report order. Rules 1–6 are lexical
/// (per-file token patterns); rules 7–8 are transitive (whole-workspace
/// call-graph reachability, see [`crate::reach`]).
pub const RULE_NAMES: [&str; 8] = [
    "determinism",
    "panic",
    "casts",
    "unsafe",
    "wire",
    "obs",
    "transitive-determinism",
    "panic-provenance",
];

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub enabled: bool,
    /// Path prefixes (relative to the analysis root, `/`-separated) the
    /// rule applies to. Empty = everything scanned.
    pub paths: Vec<String>,
    /// Path prefixes exempt from the rule even when under `paths`.
    pub exclude: Vec<String>,
    /// For `casts`: the flagged target types of `as` casts.
    pub cast_targets: Vec<String>,
}

impl RuleConfig {
    fn new(paths: &[&str], exclude: &[&str]) -> Self {
        RuleConfig {
            enabled: true,
            paths: paths.iter().map(|s| s.to_string()).collect(),
            exclude: exclude.iter().map(|s| s.to_string()).collect(),
            cast_targets: Vec::new(),
        }
    }

    /// Whether the rule applies to `rel` (a `/`-separated relative path).
    pub fn applies_to(&self, rel: &str) -> bool {
        if !self.enabled {
            return false;
        }
        if self.exclude.iter().any(|p| path_matches(rel, p)) {
            return false;
        }
        self.paths.is_empty() || self.paths.iter().any(|p| path_matches(rel, p))
    }
}

/// One audited exception from `analysis.toml`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry applies to.
    pub rule: String,
    /// Optional sub-check discriminator (e.g. `index`, `unwrap`).
    pub check: Option<String>,
    /// Relative path (exact file, or directory prefix ending in `/`).
    pub path: String,
    /// Optional substring the flagged source line must contain.
    pub pattern: Option<String>,
    /// Optional cap on the number of sites the entry may absorb; more
    /// sites than `max` is an error (the drift-catcher).
    pub max: Option<usize>,
    /// Mandatory one-line justification.
    pub reason: String,
    /// Sites absorbed during this run (filled by the engine).
    pub used: usize,
}

impl AllowEntry {
    /// Whether this entry covers a diagnostic at (`rule`, `check`, `rel`)
    /// whose source line is `line_text`.
    pub fn covers(&self, rule: &str, check: &str, rel: &str, line_text: &str) -> bool {
        self.rule == rule
            && self.check.as_deref().is_none_or(|c| c == check)
            && path_matches(rel, &self.path)
            && self
                .pattern
                .as_deref()
                .is_none_or(|p| line_text.contains(p))
    }
}

/// Full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from scanning entirely.
    pub exclude: Vec<String>,
    pub determinism: RuleConfig,
    pub panic: RuleConfig,
    pub casts: RuleConfig,
    pub unsafe_: RuleConfig,
    pub wire: RuleConfig,
    pub obs: RuleConfig,
    /// Rule 7: for `paths`-scoped entry points (public fns), no call
    /// chain may reach an unaudited nondeterminism source anywhere in
    /// the workspace — even through crates rule 1 does not cover.
    pub transitive: RuleConfig,
    /// Rule 8: same reachability, seeded at panic sites outside rule 2's
    /// scope, with full provenance chains.
    pub provenance: RuleConfig,
    pub allows: Vec<AllowEntry>,
}

/// Library crates whose result paths must stay deterministic (ISSUE 6).
const DETERMINISM_CRATES: [&str; 5] = [
    "crates/graph/src/",
    "crates/diffusion/src/",
    "crates/sim/src/",
    "crates/dist/src/",
    "crates/core/src/",
];

/// Library crates held to panic-freedom and the cast audit (the five
/// deterministic crates plus `embed`; `bench` is a harness, not a
/// library).
const LIBRARY_CRATES: [&str; 6] = [
    "crates/graph/src/",
    "crates/embed/src/",
    "crates/diffusion/src/",
    "crates/sim/src/",
    "crates/dist/src/",
    "crates/core/src/",
];

/// Crates whose *result paths* must never read instrumentation (ISSUE 7):
/// they may thread the write-only `Sink`, but the readable observability
/// types stay in driver code.
const OBS_BLIND_CRATES: [&str; 3] = [
    "crates/graph/src/",
    "crates/diffusion/src/",
    "crates/dist/src/",
];

impl Default for Config {
    fn default() -> Self {
        let mut casts = RuleConfig::new(&LIBRARY_CRATES, &[]);
        casts.cast_targets = vec!["u32".into(), "usize".into()];
        Config {
            roots: vec!["crates".into(), "tests".into(), "examples".into()],
            exclude: vec![
                "vendor/".into(),
                "target/".into(),
                // Rule fixtures violate the rules on purpose.
                "crates/analysis/tests/fixtures/".into(),
            ],
            determinism: RuleConfig::new(&DETERMINISM_CRATES, &[]),
            panic: RuleConfig::new(&LIBRARY_CRATES, &[]),
            casts,
            unsafe_: RuleConfig::new(&[], &[]),
            wire: RuleConfig::new(&["crates/"], &[]),
            obs: RuleConfig::new(&OBS_BLIND_CRATES, &[]),
            transitive: RuleConfig::new(&DETERMINISM_CRATES, &[]),
            provenance: RuleConfig::new(&DETERMINISM_CRATES, &[]),
            allows: Vec::new(),
        }
    }
}

/// Configuration / manifest error.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Loads the manifest at `path` over the defaults.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("{}: {e}", path.display())))?;
        let doc = toml::parse(&src).map_err(|e| ConfigError(format!("{}: {e}", path.display())))?;
        Config::from_document(&doc)
    }

    /// Applies a parsed manifest over the defaults.
    pub fn from_document(doc: &Document) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        for (name, table) in &doc.tables {
            match name.as_str() {
                "" => {}
                "scope" => {
                    if let Some(v) = table.get("roots") {
                        cfg.roots = str_array(v, "scope.roots")?;
                    }
                    if let Some(v) = table.get("exclude") {
                        cfg.exclude = str_array(v, "scope.exclude")?;
                    }
                }
                _ => {
                    let Some(rule) = name.strip_prefix("rules.") else {
                        return Err(ConfigError(format!("unknown table [{name}]")));
                    };
                    let rc = cfg.rule_mut(rule).ok_or_else(|| {
                        ConfigError(format!(
                            "unknown rule [{name}]; rules are {}",
                            RULE_NAMES.join(", ")
                        ))
                    })?;
                    apply_rule_table(rc, rule, table)?;
                }
            }
        }
        if let Some((name, _)) = doc.table_arrays.iter().find(|(n, _)| *n != "allow") {
            return Err(ConfigError(format!("unknown array of tables [[{name}]]")));
        }
        if let Some(entries) = doc.table_arrays.get("allow") {
            for (i, t) in entries.iter().enumerate() {
                cfg.allows.push(parse_allow(t, i)?);
            }
        }
        Ok(cfg)
    }

    /// The rule config named `name`.
    pub fn rule(&self, name: &str) -> Option<&RuleConfig> {
        match name {
            "determinism" => Some(&self.determinism),
            "panic" => Some(&self.panic),
            "casts" => Some(&self.casts),
            "unsafe" => Some(&self.unsafe_),
            "wire" => Some(&self.wire),
            "obs" => Some(&self.obs),
            "transitive-determinism" => Some(&self.transitive),
            "panic-provenance" => Some(&self.provenance),
            _ => None,
        }
    }

    /// The mutable rule config named `name`.
    pub fn rule_mut(&mut self, name: &str) -> Option<&mut RuleConfig> {
        match name {
            "determinism" => Some(&mut self.determinism),
            "panic" => Some(&mut self.panic),
            "casts" => Some(&mut self.casts),
            "unsafe" => Some(&mut self.unsafe_),
            "wire" => Some(&mut self.wire),
            "obs" => Some(&mut self.obs),
            "transitive-determinism" => Some(&mut self.transitive),
            "panic-provenance" => Some(&mut self.provenance),
            _ => None,
        }
    }
}

fn apply_rule_table(rc: &mut RuleConfig, rule: &str, table: &Table) -> Result<(), ConfigError> {
    for (key, value) in table {
        match key.as_str() {
            "enabled" => {
                rc.enabled = value
                    .as_bool()
                    .ok_or_else(|| ConfigError(format!("rules.{rule}.enabled must be a bool")))?;
            }
            "paths" => rc.paths = str_array(value, "paths")?,
            "exclude" => rc.exclude = str_array(value, "exclude")?,
            "cast-targets" if rule == "casts" => {
                rc.cast_targets = str_array(value, "cast-targets")?;
            }
            _ => {
                return Err(ConfigError(format!("unknown key rules.{rule}.{key}")));
            }
        }
    }
    Ok(())
}

fn parse_allow(t: &Table, index: usize) -> Result<AllowEntry, ConfigError> {
    let get_str = |key: &str| -> Result<Option<String>, ConfigError> {
        match t.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| ConfigError(format!("allow[{index}].{key} must be a string"))),
        }
    };
    let rule =
        get_str("rule")?.ok_or_else(|| ConfigError(format!("allow[{index}] missing `rule`")))?;
    if !RULE_NAMES.contains(&rule.as_str()) {
        return Err(ConfigError(format!(
            "allow[{index}] names unknown rule `{rule}`"
        )));
    }
    let path =
        get_str("path")?.ok_or_else(|| ConfigError(format!("allow[{index}] missing `path`")))?;
    let reason = get_str("reason")?
        .filter(|r| !r.trim().is_empty())
        .ok_or_else(|| {
            ConfigError(format!(
                "allow[{index}] ({rule} {path}) missing `reason`: every exception must be justified"
            ))
        })?;
    let max = match t.get("max") {
        None => None,
        Some(v) => Some(v.as_int().filter(|i| *i >= 0).ok_or_else(|| {
            ConfigError(format!("allow[{index}].max must be a non-negative integer"))
        })? as usize),
    };
    for key in t.keys() {
        if !["rule", "check", "path", "pattern", "max", "reason"].contains(&key.as_str()) {
            return Err(ConfigError(format!(
                "allow[{index}] has unknown key `{key}`"
            )));
        }
    }
    Ok(AllowEntry {
        rule,
        check: get_str("check")?,
        path,
        pattern: get_str("pattern")?,
        max,
        reason,
        used: 0,
    })
}

fn str_array(v: &toml::Value, what: &str) -> Result<Vec<String>, ConfigError> {
    v.as_str_array()
        .ok_or_else(|| ConfigError(format!("{what} must be an array of strings")))
}

/// `pat` matches `rel` when equal, or when `pat` is a directory prefix
/// (with or without a trailing `/`).
fn path_matches(rel: &str, pat: &str) -> bool {
    if pat == rel || pat.is_empty() || pat == "." {
        return true;
    }
    let dir = pat.strip_suffix('/').unwrap_or(pat);
    rel.strip_prefix(dir)
        .is_some_and(|rest| rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_matching() {
        assert!(path_matches("crates/graph/src/lib.rs", "crates/graph/src/"));
        assert!(path_matches("crates/graph/src/lib.rs", "crates/graph/src"));
        assert!(path_matches(
            "crates/graph/src/lib.rs",
            "crates/graph/src/lib.rs"
        ));
        assert!(!path_matches("crates/graphx/src/lib.rs", "crates/graph/"));
        assert!(!path_matches("crates/graph/srcx/a.rs", "crates/graph/src"));
    }

    #[test]
    fn defaults_scope_rules_to_library_crates() {
        let cfg = Config::default();
        assert!(cfg.determinism.applies_to("crates/core/src/walk.rs"));
        assert!(!cfg.determinism.applies_to("crates/embed/src/vector.rs"));
        assert!(!cfg.panic.applies_to("crates/bench/src/lib.rs"));
        assert!(cfg.panic.applies_to("crates/embed/src/vector.rs"));
        assert!(cfg.unsafe_.applies_to("examples/quickstart.rs"));
    }

    #[test]
    fn manifest_overrides_and_allows() {
        let doc = toml::parse(
            r#"
[scope]
roots = ["."]
[rules.determinism]
paths = ["."]
[rules.panic]
enabled = false
[[allow]]
rule = "casts"
check = "u32"
path = "crates/graph/src/sparse.rs"
max = 3
reason = "bounded by validated node count"
"#,
        )
        .unwrap();
        let cfg = Config::from_document(&doc).unwrap();
        assert_eq!(cfg.roots, ["."]);
        assert!(!cfg.panic.enabled);
        assert!(cfg.determinism.applies_to("anything/at/all.rs"));
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows[0].covers("casts", "u32", "crates/graph/src/sparse.rs", "x as u32"));
        assert!(!cfg.allows[0].covers("casts", "usize", "crates/graph/src/sparse.rs", "x"));
    }

    #[test]
    fn rejects_unjustified_or_malformed_entries() {
        let no_reason = toml::parse("[[allow]]\nrule = \"panic\"\npath = \"x.rs\"\n").unwrap();
        assert!(Config::from_document(&no_reason).is_err());
        let bad_rule =
            toml::parse("[[allow]]\nrule = \"nope\"\npath = \"x.rs\"\nreason = \"r\"\n").unwrap();
        assert!(Config::from_document(&bad_rule).is_err());
        let unknown_key = toml::parse("[rules.panic]\nfrobnicate = true\n").unwrap();
        assert!(Config::from_document(&unknown_key).is_err());
    }
}
