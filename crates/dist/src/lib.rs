//! Distributed execution of the sharded diffusion engines over simulated
//! transport links.
//!
//! The sharded engines of [`gdsearch_diffusion::sharded`] partition all
//! per-node state by contiguous node range and exchange only boundary
//! data between steps — but in-process, over shared memory. This crate
//! supplies the missing hop of the paper's decentralized premise: each
//! shard becomes a node of the [`gdsearch_sim`] reactor, and halo columns
//! (power sweep) and cross-shard residual mass (push) travel as
//! epoch-tagged [`ShardFrame`]s over bounded, bandwidth-limited links,
//! with round barriers and per-round retransmission of lost frames
//! ([`TransportExchange`]).
//!
//! The headline guarantee carries over from the in-process engines:
//! **distributed results are bit-for-bit identical to
//! [`gdsearch_diffusion::sharded`] for every `(shards, threads)`
//! combination and every transport configuration that lets every frame
//! eventually arrive** — bandwidth, queueing, random loss and churn only
//! change how many ticks and bytes the computation costs, never its
//! output. The argument is in [`exchange`]; `ablation_distributed`
//! measures cost against interconnect bandwidth and CI enforces the
//! bitwise and byte-accounting claims.
//!
//! # Example
//!
//! ```
//! use gdsearch_diffusion::{sharded, PprConfig, Signal};
//! use gdsearch_dist::DistConfig;
//! use gdsearch_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::ring(64)?;
//! let mut e0 = Signal::zeros(64, 2);
//! e0.row_mut(0).copy_from_slice(&[1.0, 0.25]);
//! let scfg = sharded::ShardedConfig::new(PprConfig::new(0.5)?).with_shards(4)?;
//! let (out, stats) = gdsearch_dist::diffuse(&g, &e0, &DistConfig::new(scfg))?;
//! // Bit-for-bit identical to the in-process sharded sweep...
//! let reference = sharded::diffuse(&g, &e0, &scfg)?;
//! assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
//! // ...with every boundary byte accounted on the simulated wire.
//! assert!(stats.frame_bytes > 0);
//! assert_eq!(stats.frame_bytes, stats.net.bytes_sent);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exchange;
pub mod frames;

use gdsearch_diffusion::power::DiffusionResult;
use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{DiffusionError, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{Graph, NodeId, ShardedGraph};
use gdsearch_sim::TransportConfig;

pub use exchange::{ByteMismatch, ExchangeStats, PeerLinkStats, TransportExchange};
pub use frames::ShardFrame;

/// Configuration of a distributed diffusion run: the sharded engine knobs
/// plus the interconnect model and the barrier safety bounds.
#[derive(Debug, Clone)]
pub struct DistConfig {
    sharded: ShardedConfig,
    transport: TransportConfig,
    max_ticks_per_round: u64,
    max_retransmit_rounds: u32,
}

impl DistConfig {
    /// Wraps a sharded-engine configuration with the default interconnect:
    /// [`TransportConfig::default`] links (64 KiB/tick, lossless) and
    /// generous barrier bounds.
    #[must_use]
    pub fn new(sharded: ShardedConfig) -> Self {
        DistConfig {
            sharded,
            transport: TransportConfig::default(),
            max_ticks_per_round: 100_000_000,
            max_retransmit_rounds: 4096,
        }
    }

    /// Sets the interconnect model (bandwidth, queue bounds, loss, churn,
    /// seed, reactor threads).
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Bounds the reactor ticks one barrier round may take before the
    /// exchange reports failure (a wedged interconnect must not hang the
    /// driver).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] for a zero budget.
    pub fn with_max_ticks_per_round(mut self, ticks: u64) -> Result<Self, DiffusionError> {
        if ticks == 0 {
            return Err(DiffusionError::InvalidParameter {
                reason: "per-round tick budget must be positive".into(),
            });
        }
        self.max_ticks_per_round = ticks;
        Ok(self)
    }

    /// Bounds how many retransmission rounds one epoch may need before the
    /// exchange reports failure.
    #[must_use]
    pub fn with_max_retransmit_rounds(mut self, rounds: u32) -> Self {
        self.max_retransmit_rounds = rounds;
        self
    }

    /// The sharded engine configuration.
    #[must_use]
    pub fn sharded(&self) -> &ShardedConfig {
        &self.sharded
    }

    /// The interconnect model.
    #[must_use]
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// The per-round tick budget.
    #[must_use]
    pub fn max_ticks_per_round(&self) -> u64 {
        self.max_ticks_per_round
    }

    /// The per-epoch retransmission budget.
    #[must_use]
    pub fn max_retransmit_rounds(&self) -> u32 {
        self.max_retransmit_rounds
    }
}

/// Diffuses a dense signal with the sharded power sweep, halo columns
/// exchanged over simulated transport links. Bit-for-bit identical to
/// [`sharded::diffuse`] (and hence to the monolithic dense sweep) whenever
/// every frame eventually arrives.
///
/// # Errors
///
/// As [`sharded::diffuse`], plus [`DiffusionError::Exchange`] for
/// transport failures (exhausted retransmission or tick budgets,
/// accounting mismatches).
pub fn diffuse(
    graph: &Graph,
    e0: &Signal,
    config: &DistConfig,
) -> Result<(DiffusionResult, ExchangeStats), DiffusionError> {
    let sharded_graph = ShardedGraph::from_graph(graph, config.sharded.shards())?;
    diffuse_partitioned(&sharded_graph, e0, config)
}

/// [`diffuse`] over a prebuilt partition.
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_partitioned(
    sharded_graph: &ShardedGraph,
    e0: &Signal,
    config: &DistConfig,
) -> Result<(DiffusionResult, ExchangeStats), DiffusionError> {
    let mut exchange = TransportExchange::new(sharded_graph, config)?;
    let result = sharded::diffuse_with_exchange(sharded_graph, e0, &config.sharded, &mut exchange)?;
    Ok((result, exchange.finish()?))
}

/// Computes a single-source PPR column with the sharded forward push,
/// cross-shard residual mass exchanged over simulated transport links.
/// Bit-for-bit identical to [`sharded::ppr_vector`] whenever every frame
/// eventually arrives.
///
/// # Errors
///
/// As [`sharded::ppr_vector`], plus [`DiffusionError::Exchange`] for
/// transport failures.
pub fn ppr_vector(
    graph: &Graph,
    source: NodeId,
    config: &DistConfig,
) -> Result<(Vec<f32>, ExchangeStats), DiffusionError> {
    let sharded_graph = ShardedGraph::from_graph(graph, config.sharded.shards())?;
    ppr_vector_partitioned(&sharded_graph, source, config)
}

/// [`ppr_vector`] over a prebuilt partition.
///
/// # Errors
///
/// As [`ppr_vector`].
pub fn ppr_vector_partitioned(
    sharded_graph: &ShardedGraph,
    source: NodeId,
    config: &DistConfig,
) -> Result<(Vec<f32>, ExchangeStats), DiffusionError> {
    let mut exchange = TransportExchange::new(sharded_graph, config)?;
    let scores =
        sharded::ppr_vector_with_exchange(sharded_graph, source, &config.sharded, &mut exchange)?;
    Ok((scores, exchange.finish()?))
}

/// Diffuses a sparse personalization with one distributed push column per
/// distinct source node. Bit-for-bit identical to
/// [`sharded::diffuse_sparse`] whenever every frame eventually arrives;
/// transport statistics accumulate across the batch.
///
/// # Errors
///
/// As [`sharded::diffuse_sparse`], plus [`DiffusionError::Exchange`] for
/// transport failures.
pub fn diffuse_sparse(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &DistConfig,
) -> Result<(Signal, ExchangeStats), DiffusionError> {
    let sharded_graph = ShardedGraph::from_graph(graph, config.sharded.shards())?;
    diffuse_sparse_partitioned(&sharded_graph, dim, sources, config)
}

/// [`diffuse_sparse`] over a prebuilt partition.
///
/// # Errors
///
/// As [`diffuse_sparse`].
pub fn diffuse_sparse_partitioned(
    sharded_graph: &ShardedGraph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &DistConfig,
) -> Result<(Signal, ExchangeStats), DiffusionError> {
    let mut exchange = TransportExchange::new(sharded_graph, config)?;
    let signal = sharded::diffuse_sparse_with_exchange(
        sharded_graph,
        dim,
        sources,
        &config.sharded,
        &mut exchange,
    )?;
    Ok((signal, exchange.finish()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_diffusion::{power, PprConfig};
    use gdsearch_graph::generators;

    fn cfg(shards: usize) -> DistConfig {
        DistConfig::new(
            ShardedConfig::new(PprConfig::new(0.5).unwrap().with_tolerance(1e-6).unwrap())
                .with_shards(shards)
                .unwrap(),
        )
    }

    #[test]
    fn distributed_power_matches_dense_bitwise() {
        let g = generators::grid(6, 5);
        let mut e0 = Signal::zeros(30, 3);
        e0.row_mut(7).copy_from_slice(&[1.0, 0.5, -0.25]);
        let reference = power::diffuse(&g, &e0, cfg(3).sharded().ppr()).unwrap();
        let (out, stats) = diffuse(&g, &e0, &cfg(3)).unwrap();
        assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
        assert_eq!(out.iterations, reference.iterations);
        assert_eq!(stats.halo_epochs as usize, out.iterations);
        assert_eq!(stats.frame_bytes, stats.net.bytes_sent);
    }

    #[test]
    fn distributed_push_matches_in_process_bitwise() {
        let g = generators::ring(20).unwrap();
        let reference = sharded::ppr_vector(&g, NodeId::new(4), cfg(4).sharded()).unwrap();
        let (scores, stats) = ppr_vector(&g, NodeId::new(4), &cfg(4)).unwrap();
        assert_eq!(scores, reference);
        assert!(stats.residual_epochs > 0);
    }

    #[test]
    fn distributed_sparse_batch_matches_in_process_bitwise() {
        let g = generators::grid(4, 4);
        let sources = vec![
            (NodeId::new(2), Embedding::new(vec![1.0, 0.0])),
            (NodeId::new(11), Embedding::new(vec![0.25, 2.0])),
        ];
        let reference = sharded::diffuse_sparse(&g, 2, &sources, cfg(3).sharded()).unwrap();
        let (out, stats) = diffuse_sparse(&g, 2, &sources, &cfg(3)).unwrap();
        assert_eq!(out, reference);
        assert!(stats.epochs >= 2, "two columns need at least two barriers");
    }

    #[test]
    fn config_validates_budgets() {
        assert!(cfg(2).with_max_ticks_per_round(0).is_err());
        let c = cfg(2)
            .with_max_ticks_per_round(500)
            .unwrap()
            .with_max_retransmit_rounds(7);
        assert_eq!(c.max_ticks_per_round(), 500);
        assert_eq!(c.max_retransmit_rounds(), 7);
    }
}
