//! Wire frames of the distributed shard exchange.
//!
//! Boundary data crosses the simulated interconnect as three frame kinds:
//! [`ShardFrame::Halo`] carries the halo columns one shard owes a peer for
//! one power iteration, [`ShardFrame::Residual`] carries buffered
//! cross-shard residual mass for one push round barrier, and
//! [`ShardFrame::Kick`] is the driver's injected wake-up that makes a
//! shard endpoint transmit its staged frames (kicks are injected locally
//! and never traverse a link, so they do not pollute byte accounting).
//!
//! Every frame is epoch-tagged so round barriers can match deliveries to
//! the exchange round they belong to, and [`WireMessage::wire_size`] is
//! **exact**: it equals the length of [`ShardFrame::encode`]'s output byte
//! for byte (asserted by tests and by the `ablation_distributed` smoke
//! run), so transport byte statistics are truthful.
//!
//! # Encoding
//!
//! Big-endian throughout, one tag byte then the epoch:
//!
//! ```text
//! Kick:     0x00 | epoch u64                                    (9 bytes)
//! Halo:     0x01 | epoch u64 | n u32 | n × f32            (13 + 4n bytes)
//! Residual: 0x02 | epoch u64 | n u32 | n × (u32, f32)     (13 + 8n bytes)
//! ```

use gdsearch_sim::WireMessage;

/// Tag byte + epoch.
const HEADER_BYTES: usize = 1 + 8;
/// Header + payload-length prefix.
const PREFIXED_HEADER_BYTES: usize = HEADER_BYTES + 4;

/// One message of the distributed shard-exchange protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFrame {
    /// Driver-injected wake-up: "transmit your staged frames for `epoch`".
    Kick {
        /// The exchange round being (re)transmitted.
        epoch: u64,
    },
    /// Halo columns for one power iteration: the values of the rows the
    /// destination's [`ExchangePlan`](gdsearch_diffusion::exchange::ExchangePlan)
    /// requests from the sender, concatenated in the destination's halo
    /// order (`rows × dim` floats).
    Halo {
        /// The exchange round the columns belong to.
        epoch: u64,
        /// Row values, `dim` floats per requested row.
        values: Vec<f32>,
    },
    /// Cross-shard residual mass for one push round: `(destination-local
    /// row, weight)` contributions in emission order.
    Residual {
        /// The exchange round the mass belongs to.
        epoch: u64,
        /// Contributions, in the sender's emission order.
        entries: Vec<(u32, f32)>,
    },
}

impl ShardFrame {
    /// The frame's epoch tag.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        match self {
            ShardFrame::Kick { epoch }
            | ShardFrame::Halo { epoch, .. }
            | ShardFrame::Residual { epoch, .. } => *epoch,
        }
    }

    /// Serializes the frame; the returned buffer's length is exactly
    /// [`WireMessage::wire_size`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        match self {
            ShardFrame::Kick { epoch } => {
                buf.push(0);
                buf.extend_from_slice(&epoch.to_be_bytes());
            }
            ShardFrame::Halo { epoch, values } => {
                buf.push(1);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&(values.len() as u32).to_be_bytes());
                for v in values {
                    buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            ShardFrame::Residual { epoch, entries } => {
                buf.push(2);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
                for (row, w) in entries {
                    buf.extend_from_slice(&row.to_be_bytes());
                    buf.extend_from_slice(&w.to_be_bytes());
                }
            }
        }
        debug_assert_eq!(buf.len(), self.wire_size());
        buf
    }

    /// Deserializes a frame produced by [`ShardFrame::encode`]. Values
    /// round-trip bit-for-bit (IEEE-754 bytes are copied verbatim), which
    /// is what lets the distributed engines reproduce the in-process
    /// results exactly.
    ///
    /// Returns `None` for truncated, oversized or unknown-tag buffers.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let tag = *buf.first()?;
        let epoch = u64::from_be_bytes(buf.get(1..HEADER_BYTES)?.try_into().ok()?);
        match tag {
            0 => (buf.len() == HEADER_BYTES).then_some(ShardFrame::Kick { epoch }),
            1 => {
                let n = u32::from_be_bytes(
                    buf.get(HEADER_BYTES..PREFIXED_HEADER_BYTES)?
                        .try_into()
                        .ok()?,
                ) as usize;
                let body = buf.get(PREFIXED_HEADER_BYTES..)?;
                if body.len() != 4 * n {
                    return None;
                }
                let values = body
                    .chunks_exact(4)
                    .map(|c| f32::from_be_bytes(c.try_into().expect("chunk of 4")))
                    .collect();
                Some(ShardFrame::Halo { epoch, values })
            }
            2 => {
                let n = u32::from_be_bytes(
                    buf.get(HEADER_BYTES..PREFIXED_HEADER_BYTES)?
                        .try_into()
                        .ok()?,
                ) as usize;
                let body = buf.get(PREFIXED_HEADER_BYTES..)?;
                if body.len() != 8 * n {
                    return None;
                }
                let entries = body
                    .chunks_exact(8)
                    .map(|c| {
                        (
                            u32::from_be_bytes(c[..4].try_into().expect("chunk of 4")),
                            f32::from_be_bytes(c[4..].try_into().expect("chunk of 4")),
                        )
                    })
                    .collect();
                Some(ShardFrame::Residual { epoch, entries })
            }
            _ => None,
        }
    }
}

impl WireMessage for ShardFrame {
    /// Exact encoded size (asserted against [`ShardFrame::encode`] in
    /// tests) — the transport's byte statistics are meaningful only if
    /// this never drifts from the real encoding.
    fn wire_size(&self) -> usize {
        match self {
            ShardFrame::Kick { .. } => HEADER_BYTES,
            ShardFrame::Halo { values, .. } => PREFIXED_HEADER_BYTES + 4 * values.len(),
            ShardFrame::Residual { entries, .. } => PREFIXED_HEADER_BYTES + 8 * entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ShardFrame> {
        vec![
            ShardFrame::Kick { epoch: 0 },
            ShardFrame::Kick { epoch: u64::MAX },
            ShardFrame::Halo {
                epoch: 7,
                values: vec![],
            },
            ShardFrame::Halo {
                epoch: 42,
                values: vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e-12, f32::MAX],
            },
            ShardFrame::Residual {
                epoch: 9,
                entries: vec![],
            },
            ShardFrame::Residual {
                epoch: 1 << 40,
                entries: vec![(0, 0.125), (u32::MAX, -7.5), (3, f32::MIN_POSITIVE)],
            },
        ]
    }

    #[test]
    fn wire_size_is_exactly_the_encoded_length() {
        for frame in samples() {
            assert_eq!(
                frame.encode().len(),
                frame.wire_size(),
                "wire_size drifted for {frame:?}"
            );
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        for frame in samples() {
            let back = ShardFrame::decode(&frame.encode()).expect("decodes");
            // Compare the bits, not the floats: -0.0 == 0.0 under
            // PartialEq but must still survive the wire unchanged.
            assert_eq!(back.encode(), frame.encode());
            assert_eq!(back.epoch(), frame.epoch());
        }
    }

    #[test]
    fn rejects_malformed_buffers() {
        assert!(ShardFrame::decode(&[]).is_none());
        assert!(ShardFrame::decode(&[9; 9]).is_none(), "unknown tag");
        let buf = ShardFrame::Halo {
            epoch: 1,
            values: vec![1.0, 2.0],
        }
        .encode();
        assert!(ShardFrame::decode(&buf[..buf.len() - 1]).is_none());
        let mut long = buf.clone();
        long.push(0);
        assert!(ShardFrame::decode(&long).is_none());
        let mut bad_len = buf;
        bad_len[12] = 9; // claims 9 floats, carries 2
        assert!(ShardFrame::decode(&bad_len).is_none());
        let kick = ShardFrame::Kick { epoch: 3 }.encode();
        assert!(ShardFrame::decode(&kick[..5]).is_none());
    }
}
