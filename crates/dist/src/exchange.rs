//! The transport-backed [`ShardExchange`]: shards as reactor nodes.
//!
//! [`TransportExchange`] places every shard of a [`ShardedGraph`] on its
//! own node of a [`Reactor`] whose overlay is the *shard peer graph*
//! ([`ShardedGraph::peers_of`](gdsearch_graph::ShardedGraph::peers_of)):
//! one bounded, bandwidth-limited duplex link per pair of shards that
//! share boundary data. Each call to
//! [`exchange_halos`](ShardExchange::exchange_halos) /
//! [`exchange_residuals`](ShardExchange::exchange_residuals) is one
//! **epoch**: a synchronous round barrier in which every peer pair
//! exchanges exactly one epoch-tagged [`ShardFrame`] per direction.
//!
//! # Barrier protocol
//!
//! 1. The driver serializes each shard's outgoing boundary data into
//!    frames, stages them on the shard's endpoint handler, and injects a
//!    [`ShardFrame::Kick`] (injections model node-local work and bypass
//!    the links, so only real frames consume bandwidth).
//! 2. Kicked endpoints transmit their staged frames; the reactor runs
//!    until every queue drains. Frames serialize over the links at the
//!    configured bytes/tick, so a fat halo frame on a thin link costs
//!    many ticks — the quantity `ablation_distributed` measures.
//! 3. The driver collects deliveries. If any expected `(src, dst)` frame
//!    is missing — random loss, a link drop, or a peer that was down —
//!    the owning endpoints are re-kicked and retransmit *only* the
//!    missing frames. The epoch completes when every frame has arrived;
//!    a bounded number of retransmission rounds guards against wedging.
//!
//! # Why results are identical to the in-process exchange
//!
//! Frames carry IEEE-754 bytes verbatim, so values survive the wire
//! bit-for-bit; and the driver applies deliveries in the canonical order
//! of the [`ExchangePlan`] — halo values land in their plan slots,
//! residual mass merges in ascending source-shard order — regardless of
//! the order the transport delivered them in. Bandwidth, queueing, loss
//! and retransmission therefore affect *when* an epoch completes and how
//! many bytes it costs, never *what* the engines compute: the module-level
//! contract of [`gdsearch_diffusion::exchange`].

use std::collections::{BTreeMap, BTreeSet};

use gdsearch_diffusion::exchange::{ExchangePlan, Outbox, ShardExchange};
use gdsearch_diffusion::DiffusionError;
use gdsearch_graph::{Graph, NodeId, ShardedGraph};
use gdsearch_sim::{NetStats, NodeApi, NodeHandler, Reactor, SimError};

use crate::frames::ShardFrame;
use crate::DistConfig;

/// Cumulative transport statistics of one [`TransportExchange`].
///
/// `frames`/`frame_bytes` are the driver's own ledger (every staged
/// transmission, retransmissions included, priced by
/// [`WireMessage::wire_size`](gdsearch_sim::WireMessage::wire_size));
/// `net` is the reactor's independent accounting of the same traffic.
/// [`ExchangeStats::verify_byte_accounting`] cross-checks the two.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExchangeStats {
    /// Completed exchange epochs (round barriers).
    pub epochs: u64,
    /// The reactor tick at which each epoch barrier closed, in epoch
    /// order (`epoch_ticks.len() == epochs`) — the flight recorder's
    /// virtual timebase for `dist.exchange.epoch` trace events.
    pub epoch_ticks: Vec<u64>,
    /// Epochs that moved halo columns (power iterations).
    pub halo_epochs: u64,
    /// Epochs that moved residual mass (push round barriers).
    pub residual_epochs: u64,
    /// Frames the shard endpoints handed to the link fabric,
    /// retransmissions included (the sum of the per-endpoint meters).
    pub frames: u64,
    /// Wire bytes of those frames.
    pub frame_bytes: u64,
    /// Frame retransmissions requested by the barrier after loss or drops
    /// (a request to a machine that is still down re-sends nothing and is
    /// simply re-requested next round).
    pub retransmitted_frames: u64,
    /// Barrier rounds that needed a retransmission.
    pub retransmit_rounds: u64,
    /// Reactor ticks spent (virtual time; link bandwidth is per tick).
    pub ticks: u64,
    /// The reactor's own transport accounting.
    pub net: NetStats,
    /// The first per-peer accounting divergence observed at an epoch
    /// barrier (`None` when every peer's meter agreed with the link
    /// fabric after every epoch).
    pub first_mismatch: Option<ByteMismatch>,
}

/// The first `(peer, epoch)` at which a shard endpoint's own transmission
/// meter disagreed with the reactor's independent per-source accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteMismatch {
    /// The shard (reactor node) whose accounting diverged.
    pub peer: usize,
    /// The epoch after whose barrier the divergence was first seen.
    pub epoch: u64,
    /// Frames the endpoint's own meter claims it handed to the fabric.
    pub expected_frames: u64,
    /// Frames the reactor accounted for that source.
    pub actual_frames: u64,
    /// Bytes the endpoint's own meter claims.
    pub expected_bytes: u64,
    /// Bytes the reactor accounted for that source.
    pub actual_bytes: u64,
}

impl std::fmt::Display for ByteMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer {} at epoch {}: endpoint metered {} frames / {} B, \
             link fabric saw {} frames / {} B",
            self.peer,
            self.epoch,
            self.expected_frames,
            self.expected_bytes,
            self.actual_frames,
            self.actual_bytes
        )
    }
}

/// Cumulative per-directed-peer-pair traffic of one
/// [`TransportExchange`], summed over every epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerLinkStats {
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// Frames staged on this directed pair, retransmissions included.
    pub frames: u64,
    /// Wire bytes of those frames.
    pub bytes: u64,
    /// Retransmissions the barrier requested on this pair.
    pub retransmits: u64,
}

impl ExchangeStats {
    /// Cross-checks the driver's frame ledger against the reactor's
    /// independent byte accounting: every frame the driver staged must
    /// appear in [`NetStats::sent`]/[`NetStats::bytes_sent`] with exactly
    /// its [`wire_size`](gdsearch_sim::WireMessage::wire_size) bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::Exchange`] describing the first
    /// mismatching counter, including the first mismatching
    /// `(peer, epoch, expected, actual)` tuple when the per-epoch barrier
    /// check pinned the divergence to a specific shard.
    pub fn verify_byte_accounting(&self) -> Result<(), DiffusionError> {
        if let Some(m) = &self.first_mismatch {
            return Err(DiffusionError::exchange(format!(
                "per-peer ledger disagrees with transport: first divergence at {m}"
            )));
        }
        if self.frames != self.net.sent {
            return Err(DiffusionError::exchange(format!(
                "frame ledger disagrees with transport: staged {} frames, link fabric saw {}",
                self.frames, self.net.sent
            )));
        }
        if self.frame_bytes != self.net.bytes_sent {
            return Err(DiffusionError::exchange(format!(
                "byte ledger disagrees with transport: staged {} B, link fabric saw {} B",
                self.frame_bytes, self.net.bytes_sent
            )));
        }
        Ok(())
    }
}

/// One shard's protocol endpoint on the reactor: transmits its staged
/// frames when kicked, buffers every delivered frame for the driver, and
/// meters its own outgoing traffic (the ledger
/// [`ExchangeStats::verify_byte_accounting`] cross-checks against the
/// link fabric — a kick that never reaches a churned-down endpoint sends
/// nothing, and the meter must agree).
#[derive(Debug, Default)]
struct ShardEndpoint {
    /// Frames staged for the current epoch, with their destinations.
    staged: Vec<(NodeId, ShardFrame)>,
    /// Which staged frames still need (re)transmission.
    pending: Vec<bool>,
    /// Deliveries awaiting driver collection: `(source shard, frame)`.
    received: Vec<(usize, ShardFrame)>,
    /// Frames this endpoint handed to the link fabric.
    sent_frames: u64,
    /// Their wire bytes, priced by [`gdsearch_sim::WireMessage::wire_size`].
    sent_bytes: u64,
    /// Per-destination `(frames, bytes)` split of the same meter
    /// (endpoint-local state, so updates stay deterministic under the
    /// parallel handler phase).
    sent_by_dest: BTreeMap<usize, (u64, u64)>,
}

impl NodeHandler<ShardFrame> for ShardEndpoint {
    fn handle(&mut self, from: Option<NodeId>, msg: ShardFrame, api: &mut NodeApi<'_, ShardFrame>) {
        use gdsearch_sim::WireMessage;
        match msg {
            ShardFrame::Kick { .. } => {
                for (i, (to, frame)) in self.staged.iter().enumerate() {
                    if self.pending[i] {
                        let bytes = frame.wire_size() as u64;
                        self.sent_frames += 1;
                        self.sent_bytes += bytes;
                        let meter = self.sent_by_dest.entry(to.index()).or_insert((0, 0));
                        meter.0 += 1;
                        meter.1 += bytes;
                        api.send(*to, frame.clone());
                    }
                }
                self.pending.iter_mut().for_each(|p| *p = false);
            }
            frame => {
                let src = from.expect("data frames always arrive over a link");
                self.received.push((src.index(), frame));
            }
        }
    }
}

/// The transport-backed shard interconnect (see the module docs).
///
/// Construct one per diffusion run with [`TransportExchange::new`], pass
/// it to the `*_with_exchange` entry points of
/// [`gdsearch_diffusion::sharded`] (the drivers in [`crate`] do this), and
/// read the final [`ExchangeStats`] with [`TransportExchange::finish`].
pub struct TransportExchange {
    plan: ExchangePlan,
    reactor: Reactor<ShardFrame, ShardEndpoint>,
    epoch: u64,
    max_ticks_per_round: u64,
    max_retransmit_rounds: u32,
    stats: ExchangeStats,
    /// Retransmissions requested per directed `(src, dst)` peer pair.
    retransmits_by_peer: BTreeMap<(usize, usize), u64>,
}

impl std::fmt::Debug for TransportExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportExchange")
            .field("shards", &self.plan.num_shards())
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .finish()
    }
}

fn sim_err(e: SimError) -> DiffusionError {
    DiffusionError::exchange(e.to_string())
}

impl TransportExchange {
    /// Builds the shard overlay (one reactor node per shard, one duplex
    /// link per peer pair) and the link fabric from `config.transport()`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::Exchange`] if the reactor rejects the
    /// overlay or the transport configuration.
    pub fn new(sharded: &ShardedGraph, config: &DistConfig) -> Result<Self, DiffusionError> {
        let plan = ExchangePlan::new(sharded);
        let num_shards = plan.num_shards();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for s in 0..num_shards {
            for &p in plan.peers(s) {
                if p > s {
                    edges.push((s as u32, p as u32));
                }
            }
        }
        let overlay = Graph::from_edges(num_shards as u32, edges)?;
        let endpoints = (0..num_shards).map(|_| ShardEndpoint::default()).collect();
        let reactor =
            Reactor::new(overlay, endpoints, config.transport().clone()).map_err(sim_err)?;
        Ok(TransportExchange {
            plan,
            reactor,
            epoch: 0,
            max_ticks_per_round: config.max_ticks_per_round(),
            max_retransmit_rounds: config.max_retransmit_rounds(),
            stats: ExchangeStats::default(),
            retransmits_by_peer: BTreeMap::new(),
        })
    }

    /// The exchange schedule.
    #[must_use]
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }

    /// Transport statistics so far: the driver's barrier counters, the
    /// per-endpoint transmission meters, and the reactor's [`NetStats`]
    /// snapshot.
    #[must_use]
    pub fn stats(&self) -> ExchangeStats {
        let mut stats = self.stats.clone();
        stats.net = *self.reactor.stats();
        for s in 0..self.plan.num_shards() {
            let endpoint = self
                .reactor
                .handler(NodeId::new(s as u32))
                .expect("one endpoint per shard");
            stats.frames += endpoint.sent_frames;
            stats.frame_bytes += endpoint.sent_bytes;
        }
        stats
    }

    /// Finishes the run: verifies the driver's frame ledger against the
    /// reactor's byte accounting and returns the final statistics.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::Exchange`] on any accounting mismatch —
    /// the "bytes-on-the-wire" numbers reported by the ablation would be
    /// untrustworthy.
    pub fn finish(self) -> Result<ExchangeStats, DiffusionError> {
        let stats = self.stats();
        stats.verify_byte_accounting()?;
        Ok(stats)
    }

    /// Runs one epoch-tagged round barrier: stages `outgoing[src]`
    /// (`(dest, frame)` pairs), kicks the senders, drives the reactor
    /// until every frame arrived (retransmitting lost ones), and returns
    /// the deliveries per destination in **ascending source order**.
    fn run_epoch(
        &mut self,
        outgoing: Vec<Vec<(usize, ShardFrame)>>,
    ) -> Result<Vec<Vec<(usize, ShardFrame)>>, DiffusionError> {
        let epoch = self.epoch;
        let num_shards = self.plan.num_shards();
        let mut expected: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (src, frames) in outgoing.iter().enumerate() {
            for (dest, frame) in frames {
                debug_assert_eq!(frame.epoch(), epoch, "frame tagged with a stale epoch");
                if !expected.insert((src, *dest)) {
                    return Err(DiffusionError::exchange(format!(
                        "duplicate frame {src} -> {dest} staged in epoch {epoch}"
                    )));
                }
            }
        }
        let mut inbox: Vec<Vec<(usize, ShardFrame)>> = vec![Vec::new(); num_shards];
        if !expected.is_empty() {
            for (src, frames) in outgoing.into_iter().enumerate() {
                if frames.is_empty() {
                    continue;
                }
                let endpoint = self
                    .reactor
                    .handler_mut(NodeId::new(src as u32))
                    .map_err(sim_err)?;
                endpoint.pending = vec![true; frames.len()];
                endpoint.staged = frames
                    .into_iter()
                    .map(|(dest, frame)| (NodeId::new(dest as u32), frame))
                    .collect();
                self.reactor
                    .inject(NodeId::new(src as u32), ShardFrame::Kick { epoch })
                    .map_err(sim_err)?;
            }
            let mut rounds = 0u32;
            loop {
                let before = self.reactor.now_tick();
                self.reactor
                    .run_to_completion(self.max_ticks_per_round)
                    .map_err(|e| {
                        DiffusionError::exchange(format!(
                            "epoch {epoch} exceeded the per-round tick budget: {e}"
                        ))
                    })?;
                self.stats.ticks += self.reactor.now_tick() - before;
                for (dest, slot) in inbox.iter_mut().enumerate() {
                    let endpoint = self
                        .reactor
                        .handler_mut(NodeId::new(dest as u32))
                        .map_err(sim_err)?;
                    for (src, frame) in endpoint.received.drain(..) {
                        if frame.epoch() != epoch {
                            return Err(DiffusionError::exchange(format!(
                                "epoch mismatch: expected {epoch}, frame from shard {src} \
                                 carries {}",
                                frame.epoch()
                            )));
                        }
                        if !expected.remove(&(src, dest)) {
                            return Err(DiffusionError::exchange(format!(
                                "unexpected frame {src} -> {dest} in epoch {epoch}"
                            )));
                        }
                        slot.push((src, frame));
                    }
                }
                if expected.is_empty() {
                    break;
                }
                // Some frames were lost or dropped: retransmit exactly the
                // missing (src, dest) pairs.
                rounds += 1;
                if rounds > self.max_retransmit_rounds {
                    return Err(DiffusionError::exchange(format!(
                        "epoch {epoch}: {} frames still missing after {} retransmission \
                         rounds",
                        expected.len(),
                        self.max_retransmit_rounds
                    )));
                }
                self.stats.retransmit_rounds += 1;
                let missing: Vec<(usize, usize)> = expected.iter().copied().collect();
                let mut kick_srcs: Vec<usize> = Vec::new();
                for &(src, dest) in &missing {
                    let endpoint = self
                        .reactor
                        .handler_mut(NodeId::new(src as u32))
                        .map_err(sim_err)?;
                    for (i, (to, _)) in endpoint.staged.iter().enumerate() {
                        if to.index() == dest {
                            endpoint.pending[i] = true;
                        }
                    }
                    self.stats.retransmitted_frames += 1;
                    *self.retransmits_by_peer.entry((src, dest)).or_insert(0) += 1;
                    if kick_srcs.last() != Some(&src) {
                        kick_srcs.push(src);
                    }
                }
                for src in kick_srcs {
                    self.reactor
                        .inject(NodeId::new(src as u32), ShardFrame::Kick { epoch })
                        .map_err(sim_err)?;
                }
            }
        }
        // Canonicalize: deliveries in ascending source order, independent
        // of transport timing.
        for slot in &mut inbox {
            slot.sort_by_key(|(src, _)| *src);
        }
        // Epoch barrier cross-check: every endpoint's own transmission
        // meter must agree with the reactor's independent per-source
        // accounting. The first divergence is pinned to its (peer, epoch)
        // so verify_byte_accounting can report where the ledgers split.
        if self.stats.first_mismatch.is_none() {
            for s in 0..num_shards {
                let node = NodeId::new(s as u32);
                let (actual_frames, actual_bytes) =
                    self.reactor.sent_from(node).map_err(sim_err)?;
                let endpoint = self.reactor.handler(node).map_err(sim_err)?;
                if (endpoint.sent_frames, endpoint.sent_bytes) != (actual_frames, actual_bytes) {
                    self.stats.first_mismatch = Some(ByteMismatch {
                        peer: s,
                        epoch,
                        expected_frames: endpoint.sent_frames,
                        actual_frames,
                        expected_bytes: endpoint.sent_bytes,
                        actual_bytes,
                    });
                    break;
                }
            }
        }
        self.stats.epochs += 1;
        self.stats.epoch_ticks.push(self.reactor.now_tick());
        Ok(inbox)
    }

    /// Cumulative per-directed-peer traffic: one row per `(src, dst)`
    /// pair that staged at least one frame, in ascending `(src, dst)`
    /// order. Plain data — callers fold these into whatever metrics
    /// system they use; the exchange itself stays free of observability
    /// types.
    #[must_use]
    pub fn per_peer_stats(&self) -> Vec<PeerLinkStats> {
        let mut rows = Vec::new();
        for s in 0..self.plan.num_shards() {
            let Ok(endpoint) = self.reactor.handler(NodeId::new(s as u32)) else {
                continue;
            };
            for (&dst, &(frames, bytes)) in &endpoint.sent_by_dest {
                rows.push(PeerLinkStats {
                    src: s,
                    dst,
                    frames,
                    bytes,
                    retransmits: self
                        .retransmits_by_peer
                        .get(&(s, dst))
                        .copied()
                        .unwrap_or(0),
                });
            }
        }
        rows
    }
}

impl ShardExchange for TransportExchange {
    fn exchange_halos(
        &mut self,
        dim: usize,
        currents: &[Vec<f32>],
        inputs: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError> {
        let num_shards = self.plan.num_shards();
        // Local blocks never touch the interconnect.
        for (s, input) in inputs.iter_mut().enumerate() {
            self.plan.copy_local(s, dim, &currents[s], input);
        }
        self.epoch += 1;
        let epoch = self.epoch;
        // Serialize the requested halo rows, one frame per (owner, dest)
        // peer pair.
        let mut outgoing: Vec<Vec<(usize, ShardFrame)>> = vec![Vec::new(); num_shards];
        for dest in 0..num_shards {
            for group in self.plan.halo_groups(dest) {
                let src = &currents[group.src];
                let mut values = Vec::with_capacity(group.rows.len() * dim);
                for &row in &group.rows {
                    let row = row as usize * dim;
                    values.extend_from_slice(&src[row..row + dim]);
                }
                outgoing[group.src].push((dest, ShardFrame::Halo { epoch, values }));
            }
        }
        let inbox = self.run_epoch(outgoing)?;
        self.stats.halo_epochs += 1;
        // Scatter into the plan's slots: frames and halo groups are both
        // in ascending source order, so they zip exactly.
        for (dest, (input, frames)) in inputs.iter_mut().zip(&inbox).enumerate() {
            let groups = self.plan.halo_groups(dest);
            if frames.len() != groups.len() {
                return Err(DiffusionError::exchange(format!(
                    "shard {dest}: {} halo frames for {} plan groups",
                    frames.len(),
                    groups.len()
                )));
            }
            for (group, (src, frame)) in groups.iter().zip(frames) {
                let ShardFrame::Halo { values, .. } = frame else {
                    return Err(DiffusionError::exchange(format!(
                        "shard {dest}: expected a halo frame from {src}, got {frame:?}"
                    )));
                };
                if *src != group.src || values.len() != group.rows.len() * dim {
                    return Err(DiffusionError::exchange(format!(
                        "shard {dest}: halo frame from {src} does not match the plan \
                         group from {} ({} values for {} rows × {dim})",
                        group.src,
                        values.len(),
                        group.rows.len()
                    )));
                }
                for (i, &slot) in group.slots.iter().enumerate() {
                    let slot = slot as usize * dim;
                    input[slot..slot + dim].copy_from_slice(&values[i * dim..(i + 1) * dim]);
                }
            }
        }
        Ok(())
    }

    fn exchange_residuals(
        &mut self,
        outboxes: &[Outbox],
        residuals: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError> {
        let num_shards = self.plan.num_shards();
        self.epoch += 1;
        let epoch = self.epoch;
        let mut outgoing: Vec<Vec<(usize, ShardFrame)>> = vec![Vec::new(); num_shards];
        for (src, outbox) in outboxes.iter().enumerate() {
            for (dest, entries) in outbox.iter().enumerate() {
                if dest == src {
                    continue; // self-mass is applied locally below
                }
                if self.plan.peers(src).binary_search(&dest).is_ok() {
                    // Peers always exchange a frame — empty frames keep the
                    // barrier's expectation static across rounds.
                    outgoing[src].push((
                        dest,
                        ShardFrame::Residual {
                            epoch,
                            entries: entries.clone(),
                        },
                    ));
                } else if !entries.is_empty() {
                    return Err(DiffusionError::exchange(format!(
                        "shard {src} buffered residual mass for non-peer {dest}"
                    )));
                }
            }
        }
        let inbox = self.run_epoch(outgoing)?;
        self.stats.residual_epochs += 1;
        // Merge in canonical ascending source order, the local self-box
        // taking its own position in the sequence.
        for (dest, (residual, frames)) in residuals.iter_mut().zip(&inbox).enumerate() {
            let mut frames = frames.iter().peekable();
            for src in 0..num_shards {
                if src == dest {
                    ExchangePlan::apply_residuals(&outboxes[dest][dest], residual);
                    continue;
                }
                if let Some((frame_src, frame)) = frames.peek() {
                    if *frame_src == src {
                        let ShardFrame::Residual { entries, .. } = frame else {
                            return Err(DiffusionError::exchange(format!(
                                "shard {dest}: expected a residual frame from {src}, \
                                 got {frame:?}"
                            )));
                        };
                        ExchangePlan::apply_residuals(entries, residual);
                        frames.next();
                    }
                }
            }
            if frames.next().is_some() {
                return Err(DiffusionError::exchange(format!(
                    "shard {dest}: leftover residual frames after the merge"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_diffusion::exchange::InProcessExchange;
    use gdsearch_diffusion::{sharded, PprConfig};
    use gdsearch_graph::generators;
    use gdsearch_sim::TransportConfig;

    fn sharded_cfg(shards: usize) -> sharded::ShardedConfig {
        sharded::ShardedConfig::new(PprConfig::new(0.5).unwrap().with_tolerance(1e-6).unwrap())
            .with_shards(shards)
            .unwrap()
    }

    #[test]
    fn halo_exchange_matches_in_process_bitwise() {
        let g = generators::social_circles_like_scaled(60, &mut {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(5)
        })
        .unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        let dim = 3;
        let currents: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| {
                (0..shard.num_local_nodes() * dim)
                    .map(|j| (shard.start() as usize * dim + j) as f32 * 0.5)
                    .collect()
            })
            .collect();
        let blank: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![0.0; shard.slot_count() * dim])
            .collect();
        let mut reference = blank.clone();
        InProcessExchange::new(&sg, 2)
            .exchange_halos(dim, &currents, &mut reference)
            .unwrap();
        let config = DistConfig::new(sharded_cfg(4));
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        let mut inputs = blank;
        ex.exchange_halos(dim, &currents, &mut inputs).unwrap();
        assert_eq!(inputs, reference);
        let stats = ex.finish().unwrap();
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.halo_epochs, 1);
        assert!(stats.frames > 0);
        assert_eq!(stats.retransmitted_frames, 0);
    }

    #[test]
    fn residual_exchange_matches_in_process_bitwise() {
        let g = generators::ring(12).unwrap();
        let sg = ShardedGraph::from_graph(&g, 3).unwrap();
        let mut outboxes: Vec<Outbox> = vec![vec![Vec::new(); 3]; 3];
        // Ring shards: peers are the adjacent ranges (and 0-2 wrap).
        outboxes[0][1] = vec![(0, 0.5), (0, 0.25)];
        outboxes[1][2] = vec![(1, 0.75)];
        outboxes[2][0] = vec![(3, 1.5)];
        outboxes[1][1] = vec![(2, 2.0)];
        let fresh = || -> Vec<Vec<f32>> {
            sg.shards()
                .iter()
                .map(|s| vec![0.0; s.num_local_nodes()])
                .collect()
        };
        let mut reference = fresh();
        InProcessExchange::new(&sg, 1)
            .exchange_residuals(&outboxes, &mut reference)
            .unwrap();
        let config = DistConfig::new(sharded_cfg(3));
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        let mut residuals = fresh();
        ex.exchange_residuals(&outboxes, &mut residuals).unwrap();
        assert_eq!(residuals, reference);
        ex.finish().unwrap();
    }

    #[test]
    fn lost_frames_are_retransmitted_to_the_same_values() {
        let g = generators::ring(16).unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        let dim = 2;
        let currents: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![1.25; shard.num_local_nodes() * dim])
            .collect();
        let fresh: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![0.0; shard.slot_count() * dim])
            .collect();
        let mut reference = fresh.clone();
        InProcessExchange::new(&sg, 1)
            .exchange_halos(dim, &currents, &mut reference)
            .unwrap();
        let lossy = TransportConfig::default()
            .with_loss_probability(0.4)
            .unwrap()
            .with_seed(11);
        let config = DistConfig::new(sharded_cfg(4)).with_transport(lossy);
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        for _ in 0..12 {
            let mut inputs = fresh.clone();
            ex.exchange_halos(dim, &currents, &mut inputs).unwrap();
            assert_eq!(inputs, reference);
        }
        let stats = ex.finish().unwrap();
        assert!(
            stats.retransmitted_frames > 0,
            "40% loss over 12 epochs must trigger retransmission"
        );
    }

    #[test]
    fn per_peer_stats_cross_check_the_aggregate_ledger() {
        let g = generators::ring(16).unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        let dim = 2;
        let currents: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![0.5; shard.num_local_nodes() * dim])
            .collect();
        let mut inputs: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![0.0; shard.slot_count() * dim])
            .collect();
        let lossy = TransportConfig::default()
            .with_loss_probability(0.3)
            .unwrap()
            .with_seed(7);
        let config = DistConfig::new(sharded_cfg(4)).with_transport(lossy);
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        for _ in 0..6 {
            ex.exchange_halos(dim, &currents, &mut inputs).unwrap();
        }
        let rows = ex.per_peer_stats();
        assert!(!rows.is_empty());
        // Rows are sorted by (src, dst) and sum to the aggregate meters.
        let sorted: Vec<(usize, usize)> = rows.iter().map(|r| (r.src, r.dst)).collect();
        let mut expected = sorted.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        let stats = ex.finish().unwrap();
        assert_eq!(rows.iter().map(|r| r.frames).sum::<u64>(), stats.frames);
        assert_eq!(rows.iter().map(|r| r.bytes).sum::<u64>(), stats.frame_bytes);
        assert_eq!(
            rows.iter().map(|r| r.retransmits).sum::<u64>(),
            stats.retransmitted_frames
        );
        assert_eq!(stats.first_mismatch, None);
    }

    #[test]
    fn mismatch_errors_cite_the_first_peer_epoch_tuple() {
        let stats = ExchangeStats {
            frames: 3,
            frame_bytes: 120,
            first_mismatch: Some(ByteMismatch {
                peer: 2,
                epoch: 5,
                expected_frames: 3,
                actual_frames: 2,
                expected_bytes: 120,
                actual_bytes: 80,
            }),
            ..ExchangeStats::default()
        };
        let err = stats.verify_byte_accounting().unwrap_err().to_string();
        assert!(err.contains("peer 2"), "{err}");
        assert!(err.contains("epoch 5"), "{err}");
        assert!(err.contains("3 frames"), "{err}");
        assert!(err.contains("2 frames"), "{err}");
        assert!(err.contains("120 B"), "{err}");
        assert!(err.contains("80 B"), "{err}");
    }

    #[test]
    fn single_shard_needs_no_wire() {
        let g = generators::ring(8).unwrap();
        let sg = ShardedGraph::from_graph(&g, 1).unwrap();
        let config = DistConfig::new(sharded_cfg(1));
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        let currents = vec![vec![2.0f32; 8]];
        let mut inputs = vec![vec![0.0f32; 8]];
        ex.exchange_halos(1, &currents, &mut inputs).unwrap();
        assert_eq!(inputs[0], currents[0]);
        let stats = ex.finish().unwrap();
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.net.bytes_sent, 0);
    }

    #[test]
    fn retransmission_budget_is_enforced() {
        let g = generators::ring(8).unwrap();
        let sg = ShardedGraph::from_graph(&g, 2).unwrap();
        let always_lossy = TransportConfig::default()
            .with_loss_probability(1.0)
            .unwrap();
        let config = DistConfig::new(sharded_cfg(2))
            .with_transport(always_lossy)
            .with_max_retransmit_rounds(3);
        let mut ex = TransportExchange::new(&sg, &config).unwrap();
        let currents: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|s| vec![1.0; s.num_local_nodes()])
            .collect();
        let mut inputs: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|s| vec![0.0; s.slot_count()])
            .collect();
        let err = ex.exchange_halos(1, &currents, &mut inputs).unwrap_err();
        assert!(matches!(err, DiffusionError::Exchange { .. }), "{err}");
    }
}
