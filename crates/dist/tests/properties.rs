//! Property-based tests of the distributed sharded engines: whatever the
//! interconnect does — narrow links, random loss, node churn — the
//! transport-backed exchange must reproduce the in-process sharded results
//! **bit for bit**, because the canonical schedule and the canonical
//! application order are independent of delivery timing.

use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{power, PprConfig, Signal};
use gdsearch_dist::DistConfig;
use gdsearch_graph::{generators, Graph, NodeId};
use gdsearch_sim::churn::{ChurnEvent, ChurnKind, ChurnSchedule};
use gdsearch_sim::{SimTime, TransportConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ring, Erdős–Rényi and Barabási–Albert families — the acceptance
/// criteria's graph classes (ER may be disconnected, BA is hub-heavy with
/// fat halos).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 4u32..36, 0u64..1000).prop_map(|(family, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => generators::ring(n).unwrap(),
            1 => generators::erdos_renyi(n, 0.15, &mut rng).unwrap(),
            _ => generators::barabasi_albert(n, 2, &mut rng).unwrap(),
        }
    })
}

fn random_signal(n: usize, dim: usize, seed: u64) -> Signal {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e0 = Signal::zeros(n, dim);
    for u in 0..n {
        for d in 0..dim {
            e0.row_mut(u)[d] = rng.random::<f32>();
        }
    }
    e0
}

fn sharded_cfg(alpha: f32, shards: usize, threads: usize) -> ShardedConfig {
    ShardedConfig::new(PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap())
        .with_shards(shards)
        .unwrap()
        .with_threads(threads)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under ample bandwidth and zero loss, the distributed power sweep is
    /// bit-for-bit identical to the in-process sharded sweep (and hence to
    /// the monolithic dense engine) on ring/ER/BA for every
    /// `(shards, threads)` combination — signal, iterations, residual,
    /// with every wire byte accounted.
    #[test]
    fn distributed_power_is_bitwise_identical_under_ample_bandwidth(
        g in arb_graph(),
        alpha in 0.1f32..1.0,
        dim in 1usize..4,
        signal_seed in 0u64..1000,
    ) {
        let n = g.num_nodes();
        let e0 = random_signal(n, dim, signal_seed);
        let dense = power::diffuse(&g, &e0, sharded_cfg(alpha, 1, 1).ppr()).unwrap();
        for shards in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                let scfg = sharded_cfg(alpha, shards, threads);
                let reference = sharded::diffuse(&g, &e0, &scfg).unwrap();
                let (out, stats) = gdsearch_dist::diffuse(
                    &g,
                    &e0,
                    &DistConfig::new(scfg),
                ).unwrap();
                prop_assert_eq!(
                    out.signal.as_slice(),
                    reference.signal.as_slice(),
                    "{} shards x {} threads drifted over the wire",
                    shards,
                    threads
                );
                prop_assert_eq!(out.iterations, reference.iterations);
                prop_assert_eq!(out.residual.to_bits(), reference.residual.to_bits());
                prop_assert_eq!(out.signal.as_slice(), dense.signal.as_slice());
                prop_assert_eq!(stats.frame_bytes, stats.net.bytes_sent);
                prop_assert_eq!(stats.retransmitted_frames, 0);
                prop_assert_eq!(stats.halo_epochs as usize, out.iterations);
            }
        }
    }

    /// Under ample bandwidth and zero loss, the distributed push column is
    /// bit-for-bit identical to the in-process sharded push on ring/ER/BA
    /// for every `(shards, threads)` combination.
    #[test]
    fn distributed_push_is_bitwise_identical_under_ample_bandwidth(
        g in arb_graph(),
        alpha in 0.1f32..1.0,
        src in 0usize..36,
    ) {
        let n = g.num_nodes();
        let source = NodeId::new((src % n) as u32);
        let reference =
            sharded::ppr_vector(&g, source, &sharded_cfg(alpha, 1, 1)).unwrap();
        for shards in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                let scfg = sharded_cfg(alpha, shards, threads);
                let (scores, stats) = gdsearch_dist::ppr_vector(
                    &g,
                    source,
                    &DistConfig::new(scfg),
                ).unwrap();
                prop_assert_eq!(
                    &scores,
                    &reference,
                    "{} shards x {} threads drifted over the wire",
                    shards,
                    threads
                );
                prop_assert_eq!(stats.frame_bytes, stats.net.bytes_sent);
            }
        }
    }

    /// Narrow links, random frame loss and a shard machine that is down
    /// for the first ticks of the run change how long the exchange takes
    /// and how many retransmissions it needs — but per-round
    /// retransmission recovers the **exact** fixed point, bit for bit.
    #[test]
    fn retransmission_recovers_the_exact_fixed_point_under_loss_and_churn(
        g in arb_graph(),
        alpha in 0.2f32..0.9,
        loss in 0.05f64..0.45,
        down_ticks in 1u64..12,
        seed in 0u64..1000,
    ) {
        let n = g.num_nodes();
        let e0 = random_signal(n, 2, seed);
        let shards = 3usize;
        let scfg = sharded_cfg(alpha, shards, 2);
        let reference = sharded::diffuse(&g, &e0, &scfg).unwrap();
        // Shard machine 1 starts down and comes back after `down_ticks`;
        // frames sent to it meanwhile are dropped and must be
        // retransmitted once it recovers.
        let churn = ChurnSchedule::from_events(vec![
            ChurnEvent {
                time: SimTime::ZERO,
                node: NodeId::new(1),
                kind: ChurnKind::Down,
            },
            ChurnEvent {
                time: SimTime::new(down_ticks as f64).unwrap(),
                node: NodeId::new(1),
                kind: ChurnKind::Up,
            },
        ]);
        let transport = TransportConfig::default()
            .with_bandwidth(256)
            .unwrap()
            .with_queue_capacity(8)
            .unwrap()
            .with_loss_probability(loss)
            .unwrap()
            .with_seed(seed)
            .with_churn(churn);
        let dcfg = DistConfig::new(scfg).with_transport(transport);
        let (out, stats) = gdsearch_dist::diffuse(&g, &e0, &dcfg).unwrap();
        prop_assert_eq!(
            out.signal.as_slice(),
            reference.signal.as_slice(),
            "loss {} + churn {} ticks corrupted the fixed point",
            loss,
            down_ticks
        );
        prop_assert_eq!(out.iterations, reference.iterations);
        prop_assert_eq!(stats.frame_bytes, stats.net.bytes_sent);
        // The adversarial interconnect must actually have bitten (unless
        // this partition produced no cross-shard frames at all).
        if stats.frames > 0 && g.num_nodes() > shards {
            prop_assert!(
                stats.retransmitted_frames > 0 || stats.net.lost == 0,
                "loss was rolled but nothing was retransmitted"
            );
        }
    }
}
