//! Property-based tests for the diffusion substrate: PPR's mathematical
//! identities must hold on arbitrary graphs and inputs.

use gdsearch_diffusion::filter::{GraphFilter, PolynomialFilter, PprFilter};
use gdsearch_diffusion::push::{self, PushConfig};
use gdsearch_diffusion::{exact, per_source, power, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::sparse::Normalization;
use gdsearch_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..30, 0u32..40, 0u64..1000).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_connected(n, extra, &mut rng).unwrap()
    })
}

/// Ring, Erdős–Rényi and Barabási–Albert families — the graph classes the
/// push-engine acceptance criteria name. ER may be disconnected and BA is
/// hub-heavy, which stresses the degree-scaled frontier and the residual
/// bounds from different directions.
fn arb_push_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 4u32..36, 0u64..1000).prop_map(|(family, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => generators::ring(n).unwrap(),
            1 => generators::erdos_renyi(n, 0.15, &mut rng).unwrap(),
            _ => generators::barabasi_albert(n, 2, &mut rng).unwrap(),
        }
    })
}

fn one_hot(n: usize, u: usize) -> Signal {
    let mut s = Signal::zeros(n, 1);
    s.row_mut(u % n.max(1))[0] = 1.0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The workpool-sharded dense sweeps are bit-for-bit identical to the
    /// sequential engine for every thread count, on arbitrary graphs and
    /// dense multi-column signals.
    #[test]
    fn power_threaded_is_bitwise_deterministic(
        g in arb_graph(),
        alpha in 0.1f32..1.0,
        dim in 1usize..5,
        signal_seed in 0u64..1000,
    ) {
        let n = g.num_nodes();
        let mut rng = StdRng::seed_from_u64(signal_seed);
        let mut e0 = Signal::zeros(n, dim);
        for u in 0..n {
            for d in 0..dim {
                e0.row_mut(u)[d] = rng.random::<f32>();
            }
        }
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let reference = power::diffuse(&g, &e0, &cfg).unwrap();
        for threads in [2usize, 4, 7] {
            let out = power::diffuse_threaded(&g, &e0, &cfg, threads).unwrap();
            prop_assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
            prop_assert_eq!(out.iterations, reference.iterations);
            prop_assert_eq!(out.residual.to_bits(), reference.residual.to_bits());
        }
    }

    /// Power iteration matches the exact dense solve.
    #[test]
    fn power_matches_exact(g in arb_graph(), alpha in 0.1f32..1.0, src in 0usize..30) {
        let n = g.num_nodes();
        let e0 = one_hot(n, src);
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let truth = exact::diffuse(&g, &e0, &cfg).unwrap();
        let approx = power::diffuse(&g, &e0, &cfg).unwrap();
        prop_assert!(approx.converged);
        prop_assert!(truth.max_abs_diff(&approx.signal).unwrap() < 1e-4);
    }

    /// The diffused signal is entrywise non-negative for non-negative input
    /// and bounded by the input's max (the filter is an average of
    /// substochastic propagations).
    #[test]
    fn ppr_preserves_nonnegativity(g in arb_graph(), alpha in 0.1f32..1.0) {
        let n = g.num_nodes();
        let e0 = one_hot(n, 0);
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let out = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        for u in 0..n {
            prop_assert!(out.row(u)[0] >= -1e-6);
            prop_assert!(out.row(u)[0] <= 1.0 + 1e-4);
        }
    }

    /// Column-stochastic PPR conserves total mass.
    #[test]
    fn mass_conservation(g in arb_graph(), alpha in 0.1f32..1.0) {
        let n = g.num_nodes();
        let e0 = one_hot(n, 1);
        let cfg = PprConfig::new(alpha)
            .unwrap()
            .with_normalization(Normalization::ColumnStochastic)
            .with_tolerance(1e-6)
            .unwrap();
        let out = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        let mass = out.column_mass()[0];
        prop_assert!((mass - 1.0).abs() < 1e-3, "mass {mass}");
    }

    /// Per-source decomposition equals dense diffusion for any source.
    #[test]
    fn per_source_equals_dense(g in arb_graph(), alpha in 0.1f32..1.0, src in 0usize..30) {
        let n = g.num_nodes();
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let src = NodeId::new((src % n) as u32);
        let h = per_source::ppr_vector(&g, src, &cfg).unwrap();
        let dense = power::diffuse(&g, &one_hot(n, src.index()), &cfg)
            .unwrap()
            .signal;
        for (u, hu) in h.iter().enumerate() {
            prop_assert!((hu - dense.row(u)[0]).abs() < 1e-4);
        }
    }

    /// The truncated PPR polynomial converges to the filter fixed point as
    /// the order grows.
    #[test]
    fn polynomial_truncation_converges(g in arb_graph(), alpha in 0.3f32..1.0) {
        let n = g.num_nodes();
        let e0 = one_hot(n, 0);
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let fixed = PprFilter::new(cfg).apply(&g, &e0).unwrap();
        // Order chosen so (1-alpha)^order < 1e-4.
        let order = ((1e-4f32.ln()) / (1.0 - alpha + 1e-6).ln()).ceil() as usize + 1;
        let truncated =
            PolynomialFilter::ppr_truncation(alpha, order, Normalization::ColumnStochastic)
                .unwrap()
                .apply(&g, &e0)
                .unwrap();
        prop_assert!(fixed.max_abs_diff(&truncated).unwrap() < 1e-3);
    }

    /// Diffusion commutes with linear combination of inputs.
    #[test]
    fn linearity(g in arb_graph(), alpha in 0.1f32..1.0, s in -3.0f32..3.0) {
        let n = g.num_nodes();
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let x = one_hot(n, 0);
        let y = one_hot(n, n.saturating_sub(1));
        let hx = power::diffuse(&g, &x, &cfg).unwrap().signal;
        let hy = power::diffuse(&g, &y, &cfg).unwrap().signal;
        // z = x + s*y
        let mut z = Signal::zeros(n, 1);
        z.row_mut(0)[0] += 1.0;
        z.row_mut(n - 1)[0] += s;
        let hz = power::diffuse(&g, &z, &cfg).unwrap().signal;
        for u in 0..n {
            let expect = hx.row(u)[0] + s * hy.row(u)[0];
            prop_assert!((hz.row(u)[0] - expect).abs() < 1e-3);
        }
    }

    /// Higher alpha concentrates more mass at the source.
    #[test]
    fn alpha_controls_locality(g in arb_graph()) {
        let n = g.num_nodes();
        let e0 = one_hot(n, 0);
        let run = |alpha: f32| {
            let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
            power::diffuse(&g, &e0, &cfg).unwrap().signal.row(0)[0]
        };
        let heavy = run(0.1);
        let light = run(0.9);
        prop_assert!(light >= heavy - 1e-5,
            "self-mass at alpha 0.9 ({light}) must exceed alpha 0.1 ({heavy})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forward push agrees with the exact dense solve within the
    /// configured tolerance on every graph family (single source).
    #[test]
    fn push_matches_exact(g in arb_push_graph(), alpha in 0.1f32..1.0, src in 0usize..36) {
        let n = g.num_nodes();
        let src = src % n;
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let mut e0 = Signal::zeros(n, 1);
        e0.row_mut(src)[0] = 1.0;
        let truth = exact::diffuse(&g, &e0, &cfg).unwrap();
        let h = push::ppr_vector(&g, NodeId::new(src as u32), &PushConfig::new(cfg)).unwrap();
        for (u, hu) in h.iter().enumerate() {
            prop_assert!((hu - truth.row(u)[0]).abs() < 1e-4, "node {u}");
        }
    }

    /// Multi-source batched push agrees with the exact solve of the summed
    /// personalization (duplicate source nodes included).
    #[test]
    fn push_batch_matches_exact(g in arb_push_graph(), alpha in 0.1f32..1.0, seed in 0u64..1000) {
        let n = g.num_nodes();
        let dim = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<(NodeId, Embedding)> = (0..4)
            .map(|_| {
                (
                    NodeId::new(rng.random_range(0..n as u32)),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let pushed = push::diffuse_sparse(&g, dim, &sources, &PushConfig::new(cfg)).unwrap();
        let e0 = Signal::from_sparse_rows(n, dim, &sources).unwrap();
        let truth = exact::diffuse(&g, &e0, &cfg).unwrap();
        prop_assert!(pushed.max_abs_diff(&truth).unwrap() < 1e-3);
    }

    /// The batched driver is bit-for-bit deterministic across thread
    /// counts: 1 worker and 4 workers must produce identical signals.
    #[test]
    fn push_is_deterministic_across_threads(g in arb_push_graph(), seed in 0u64..1000) {
        let n = g.num_nodes();
        let dim = 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<(NodeId, Embedding)> = (0..6)
            .map(|_| {
                (
                    NodeId::new(rng.random_range(0..n as u32)),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let ppr = PprConfig::new(0.5).unwrap().with_tolerance(1e-6).unwrap();
        let single = push::diffuse_sparse(
            &g, dim, &sources, &PushConfig::new(ppr).with_threads(1).unwrap(),
        ).unwrap();
        let quad = push::diffuse_sparse(
            &g, dim, &sources, &PushConfig::new(ppr).with_threads(4).unwrap(),
        ).unwrap();
        prop_assert_eq!(single, quad, "thread count leaked into the output");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The gossip simulator is documented as fully deterministic under a
    /// seeded RNG: identical seeds must reproduce the run bit-for-bit
    /// (signal, update count and virtual clock included).
    #[test]
    fn gossip_is_deterministic_per_seed(g in arb_graph(), seed in 0u64..1000, delay in 0.0f64..2.0) {
        use gdsearch_diffusion::gossip::{self, GossipConfig};

        let n = g.num_nodes();
        let e0 = one_hot(n, 0);
        let cfg = GossipConfig::new(PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap())
            .with_mean_delay(delay)
            .unwrap();
        let a = gossip::diffuse(&g, &e0, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = gossip::diffuse(&g, &e0, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a, b, "same seed must reproduce the gossip run exactly");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded power sweep is bit-for-bit identical to the monolithic
    /// dense engine on ring/ER/BA graphs for every `(shards, threads)`
    /// combination — signal, iteration count and residual included.
    #[test]
    fn sharded_power_is_bitwise_identical_to_dense(
        g in arb_push_graph(),
        alpha in 0.1f32..1.0,
        dim in 1usize..4,
        signal_seed in 0u64..1000,
    ) {
        use gdsearch_diffusion::sharded::{self, ShardedConfig};

        let n = g.num_nodes();
        let mut rng = StdRng::seed_from_u64(signal_seed);
        let mut e0 = Signal::zeros(n, dim);
        for u in 0..n {
            for d in 0..dim {
                e0.row_mut(u)[d] = rng.random::<f32>();
            }
        }
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let reference = power::diffuse(&g, &e0, &cfg).unwrap();
        for shards in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                let scfg = ShardedConfig::new(cfg)
                    .with_shards(shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap();
                let out = sharded::diffuse(&g, &e0, &scfg).unwrap();
                prop_assert_eq!(
                    out.signal.as_slice(),
                    reference.signal.as_slice(),
                    "{} shards x {} threads drifted from the dense sweep",
                    shards,
                    threads
                );
                prop_assert_eq!(out.iterations, reference.iterations);
                prop_assert_eq!(out.residual.to_bits(), reference.residual.to_bits());
                prop_assert_eq!(out.converged, reference.converged);
            }
        }
    }

    /// The sharded push column is bit-for-bit identical to its unsharded
    /// counterpart (the single-shard, single-thread instance) on ring/ER/BA
    /// graphs for every `(shards, threads)` combination, and agrees with
    /// the scalar sweep engine to the shared accuracy contract.
    #[test]
    fn sharded_push_is_bitwise_shard_invariant(
        g in arb_push_graph(),
        alpha in 0.1f32..1.0,
        src in 0usize..36,
    ) {
        use gdsearch_diffusion::sharded::{self, ShardedConfig};

        let n = g.num_nodes();
        let source = NodeId::new((src % n) as u32);
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let unsharded = ShardedConfig::new(cfg);
        let reference = sharded::ppr_vector(&g, source, &unsharded).unwrap();
        for shards in [2usize, 7] {
            for threads in [1usize, 4] {
                let scfg = ShardedConfig::new(cfg)
                    .with_shards(shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap();
                let out = sharded::ppr_vector(&g, source, &scfg).unwrap();
                prop_assert_eq!(
                    &out,
                    &reference,
                    "{} shards x {} threads drifted from the unsharded push",
                    shards,
                    threads
                );
            }
        }
        let sweep = per_source::ppr_vector(&g, source, &cfg).unwrap();
        for u in 0..n {
            prop_assert!(
                (reference[u] - sweep[u]).abs() < 1e-4,
                "node {} disagrees with the sweep engine",
                u
            );
        }
    }

    /// Uneven partitions (`n % shards != 0`) and all-single-node shards
    /// leave both sharded engines bitwise unchanged.
    #[test]
    fn uneven_and_singleton_partitions_change_nothing(
        n in 3u32..24,
        alpha in 0.2f32..0.9,
        extra in 0u32..20,
        seed in 0u64..500,
    ) {
        use gdsearch_diffusion::sharded::{self, ShardedConfig};

        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng).unwrap();
        let n = g.num_nodes();
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-6).unwrap();
        let e0 = one_hot(n, 1);
        let dense = power::diffuse(&g, &e0, &cfg).unwrap();
        let push_ref = sharded::ppr_vector(&g, NodeId::new(1), &ShardedConfig::new(cfg)).unwrap();
        // n - 1 shards never divides n evenly for n >= 3; n shards makes
        // every shard a single node.
        for shards in [n - 1, n] {
            let scfg = ShardedConfig::new(cfg).with_shards(shards).unwrap();
            let out = sharded::diffuse(&g, &e0, &scfg).unwrap();
            prop_assert_eq!(out.signal.as_slice(), dense.signal.as_slice());
            let h = sharded::ppr_vector(&g, NodeId::new(1), &scfg).unwrap();
            prop_assert_eq!(&h, &push_ref, "{} shards drifted", shards);
        }
    }
}
