//! Asynchronous diffusion on real OS threads.
//!
//! The gossip engine in [`crate::gossip`] *simulates* asynchrony; this
//! module runs the same chaotic-relaxation update
//!
//! ```text
//! e_u ← a e0_u + (1−a) Σ_v A[u][v] e_v
//! ```
//!
//! on a pool of worker threads (std scoped threads) that read their
//! neighbors' *live* values through per-node `parking_lot` RwLocks — reads
//! and writes genuinely interleave, as they would across real peers. The
//! update is a `(1−a)`-contraction, so chaotic relaxation converges to the
//! same fixed point regardless of interleaving (Chazan–Miranker); the tests
//! check agreement with the synchronous engine.

use gdsearch_graph::sparse::{transition_matrix, CsrMatrix};
use gdsearch_graph::Graph;
use parking_lot::RwLock;

use crate::convergence::Convergence;
use crate::{DiffusionError, PprConfig, Signal};

/// Outcome of a threaded asynchronous diffusion.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedResult {
    /// Final estimates, one row per node.
    pub signal: Signal,
    /// Full shard passes performed across all workers, plus the sequential
    /// certification sweeps.
    pub passes: usize,
    /// Whether the final *certified* global residual met the tolerance.
    pub converged: bool,
}

/// Runs asynchronous diffusion on `num_threads` workers.
///
/// Nodes are sharded round-robin across workers; each worker sweeps its
/// shard repeatedly until its own sweep-residual falls below the tolerance
/// *and* every other worker has also settled (a worker whose neighbors'
/// values still move will see its residual rise again, so the joint
/// condition is stable). The per-worker pass budget is
/// `config.max_iterations()`.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `num_threads == 0` and
/// [`DiffusionError::ShapeMismatch`] if `e0` and `graph` disagree.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{power, threaded, PprConfig, Signal};
/// use gdsearch_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::grid(5, 5);
/// let mut e0 = Signal::zeros(25, 2);
/// e0.row_mut(12).copy_from_slice(&[1.0, -1.0]);
/// let cfg = PprConfig::new(0.4)?.with_tolerance(1e-6)?;
/// let sync = power::diffuse(&g, &e0, &cfg)?.signal;
/// let out = threaded::diffuse(&g, &e0, &cfg, 4)?;
/// assert!(out.converged);
/// assert!(out.signal.max_abs_diff(&sync)? < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn diffuse(
    graph: &Graph,
    e0: &Signal,
    config: &PprConfig,
    num_threads: usize,
) -> Result<ThreadedResult, DiffusionError> {
    if num_threads == 0 {
        return Err(DiffusionError::invalid_parameter(
            "num_threads must be positive",
        ));
    }
    let n = graph.num_nodes();
    if e0.num_nodes() != n {
        return Err(DiffusionError::ShapeMismatch {
            expected: (n, e0.dim()),
            got: (e0.num_nodes(), e0.dim()),
        });
    }
    let dim = e0.dim();
    if n == 0 || dim == 0 {
        return Ok(ThreadedResult {
            signal: Signal::zeros(n, dim),
            passes: 0,
            converged: true,
        });
    }
    let matrix = transition_matrix(graph, config.normalization());
    let alpha = config.alpha();
    let tol = config.tolerance();
    let max_passes = config.max_iterations();

    // One RwLock per node row: workers read neighbors' live values and
    // write their own rows; cross-row staleness is the asynchrony.
    let rows: Vec<RwLock<Vec<f32>>> = (0..n).map(|u| RwLock::new(e0.row(u).to_vec())).collect();
    // Last-pass residual of each worker, observed by all workers to decide
    // joint termination.
    let residuals: Vec<RwLock<f32>> = (0..num_threads)
        .map(|_| RwLock::new(f32::INFINITY))
        .collect();
    let shards: Vec<Vec<usize>> = (0..num_threads)
        .map(|w| (w..n).step_by(num_threads).collect())
        .collect();

    // Set when any worker exhausts its budget, so quiet workers waiting for
    // the pool to settle do not wait forever.
    let gave_up = std::sync::atomic::AtomicBool::new(false);

    let mut worker_outcomes: Vec<(usize, bool)> = vec![(0, false); num_threads];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for (worker, shard) in shards.iter().enumerate() {
            let rows = &rows;
            let residuals = &residuals;
            let matrix = &matrix;
            let e0 = &e0;
            let gave_up = &gave_up;
            handles.push(scope.spawn(move || {
                use std::sync::atomic::Ordering;
                let mut passes = 0usize;
                let mut converged = false;
                let mut scratch = vec![0.0f32; dim];
                // Quiet passes (shard already settled, waiting for peers) do
                // not consume the budget — otherwise a fast worker burns its
                // passes spinning before slower threads are even scheduled.
                // They are still bounded to guarantee termination.
                let mut quiet_spins = 0usize;
                let max_quiet_spins = max_passes.saturating_mul(64).max(1 << 20);
                loop {
                    let mut max_delta = 0.0f32;
                    for &u in shard {
                        compute_row(matrix, rows, e0, alpha, u, dim, &mut scratch);
                        let mut row = rows[u].write();
                        for (r, s) in row.iter_mut().zip(&scratch) {
                            let d = (*s - *r).abs();
                            if d > max_delta {
                                max_delta = d;
                            }
                            *r = *s;
                        }
                    }
                    *residuals[worker].write() = max_delta;
                    if max_delta <= tol {
                        // Settle only when the whole pool is quiet; if a
                        // neighbor shard still moves, our residual will rise
                        // again on the next pass.
                        let all_quiet = residuals.iter().all(|r| *r.read() <= tol);
                        if all_quiet {
                            converged = true;
                            break;
                        }
                        if gave_up.load(Ordering::Relaxed) {
                            break;
                        }
                        quiet_spins += 1;
                        if quiet_spins >= max_quiet_spins {
                            gave_up.store(true, Ordering::Relaxed);
                            break;
                        }
                        std::thread::yield_now();
                    } else {
                        passes += 1;
                        if passes >= max_passes || gave_up.load(Ordering::Relaxed) {
                            gave_up.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                (passes, converged)
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            worker_outcomes[i] = h.join().expect("diffusion worker panicked");
        }
    });

    let mut signal = Signal::zeros(n, dim);
    for (u, row) in rows.iter().enumerate() {
        signal.row_mut(u).copy_from_slice(&row.read());
    }
    let mut passes: usize = worker_outcomes.iter().map(|(p, _)| p).sum();

    // Certification polish: the workers' all-quiet snapshot is inherently
    // racy (a peer can publish a quiet residual and then move again), so
    // finish with sequential sweeps until the *global* residual provably
    // meets the tolerance. Near the fixed point this costs one or two
    // sweeps; if the workers gave up early it degrades gracefully into
    // plain power iteration on the remaining budget.
    let mut conv = Convergence::new();
    let mut next = Signal::zeros(n, dim);
    while conv.iters < config.max_iterations() {
        matrix.mul_dense_into(signal.as_slice(), dim.max(1), next.as_mut_slice());
        let mut residual = 0.0f32;
        for (i, nx) in next.as_mut_slice().iter_mut().enumerate() {
            *nx = (1.0 - alpha) * *nx + alpha * e0.as_slice()[i];
            residual = residual.max((*nx - signal.as_slice()[i]).abs());
        }
        std::mem::swap(&mut signal, &mut next);
        passes += 1;
        if conv.record(residual, tol) {
            break;
        }
    }
    Ok(ThreadedResult {
        signal,
        passes,
        converged: conv.converged,
    })
}

/// Computes node `u`'s update `a e0_u + (1−a) Σ_v A[u][v] e_v` from live
/// neighbor rows into `out`.
fn compute_row(
    matrix: &CsrMatrix,
    rows: &[RwLock<Vec<f32>>],
    e0: &Signal,
    alpha: f32,
    u: usize,
    dim: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    for (v, w) in matrix.row(u) {
        let neighbor = rows[v as usize].read();
        for (o, x) in out.iter_mut().zip(neighbor.iter()) {
            *o += w * x;
        }
    }
    for (k, o) in out.iter_mut().enumerate() {
        *o = (1.0 - alpha) * *o + alpha * e0.row(u)[k];
    }
    let _ = dim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power;
    use gdsearch_graph::generators;
    use rand::SeedableRng;

    fn one_hot(n: usize, u: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(u)[0] = 1.0;
        s
    }

    #[test]
    fn matches_synchronous_fixed_point() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = generators::social_circles_like_scaled(120, &mut rng).unwrap();
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-7).unwrap();
        let e0 = one_hot(120, 3);
        let sync = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        for threads in [1, 2, 4] {
            let out = diffuse(&g, &e0, &cfg, threads).unwrap();
            assert!(out.converged, "{threads} threads must converge");
            assert!(
                out.signal.max_abs_diff(&sync).unwrap() < 1e-3,
                "{threads} threads drifted from the fixed point"
            );
        }
    }

    #[test]
    fn multi_dim_and_many_threads() {
        let g = generators::grid(8, 8);
        let cfg = PprConfig::new(0.3).unwrap().with_tolerance(1e-6).unwrap();
        let mut e0 = Signal::zeros(64, 4);
        e0.row_mut(0).copy_from_slice(&[1.0, 2.0, -1.0, 0.5]);
        e0.row_mut(63).copy_from_slice(&[0.5, 0.0, 1.0, -2.0]);
        let sync = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        let out = diffuse(&g, &e0, &cfg, 8).unwrap();
        assert!(out.converged);
        assert!(out.signal.max_abs_diff(&sync).unwrap() < 1e-3);
        assert!(out.passes >= 8, "every worker performs at least one pass");
    }

    #[test]
    fn zero_threads_rejected() {
        let g = generators::ring(4).unwrap();
        assert!(diffuse(&g, &Signal::zeros(4, 1), &PprConfig::default(), 0).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = generators::ring(4).unwrap();
        assert!(diffuse(&g, &Signal::zeros(5, 1), &PprConfig::default(), 2).is_err());
    }

    #[test]
    fn empty_graph_trivially_converges() {
        let g = gdsearch_graph::Graph::empty(0);
        let out = diffuse(&g, &Signal::zeros(0, 3), &PprConfig::default(), 2).unwrap();
        assert!(out.converged);
        assert_eq!(out.passes, 0);
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        let g = generators::ring(40).unwrap();
        let cfg = PprConfig::new(0.05)
            .unwrap()
            .with_tolerance(1e-12)
            .unwrap()
            .with_max_iterations(2);
        let out = diffuse(&g, &one_hot(40, 0), &cfg, 2).unwrap();
        assert!(!out.converged);
    }
}
