//! Forward-push evaluation of single-source PPR with residual queues.
//!
//! Every sweep-based engine in this crate pays `O(iters · E)` per
//! diffusion. Forward push (Andersen–Chung–Lang local clustering; PowerWalk,
//! arXiv:1608.06054) instead maintains, per node, an **estimate** `p` and a
//! **residual** `r` with the invariant
//!
//! ```text
//! h_s = p + M r,          M = a (I − (1−a) A)^{-1},
//! ```
//!
//! starting from `p = 0, r = δ_s`. A *push* at node `u` moves the certain
//! part of `u`'s residual into the estimate and forwards the rest one hop:
//!
//! ```text
//! p(u) += a · r(u);    r(v) += (1−a) · r(u) · A[v][u]  for v ∈ N(u);    r(u) = 0.
//! ```
//!
//! Only nodes whose residual is large relative to their degree
//! (`r(u) > rmax · deg(u)`) sit on the FIFO frontier, so total work is
//! proportional to the *pushed mass* — sublinear in the graph for local
//! sources — instead of `iters · E`.
//!
//! # Accuracy guarantee
//!
//! `rmax` is a frontier granularity, not the accuracy contract. After each
//! drain the engine evaluates a rigorous bound on `‖M r‖∞ = ‖h_s − p‖∞`
//! (see [`PprConfig::tolerance`](crate::PprConfig::tolerance) for the
//! tolerance semantics) and keeps halving `rmax` until the bound meets the
//! tolerance, so results are interchangeable with
//! [`crate::per_source::ppr_vector`]. For the undirected graphs of this
//! workspace the bounds are, with `θ = max_u r(u)/deg(u)` and `d_max` the
//! maximum degree (reversibility of the simple random walk gives
//! `h_u(v) = (deg(v)/deg(u)) · h_v(u)` in the column-stochastic case):
//!
//! * column-stochastic: `‖M r‖∞ ≤ min(‖r‖₁, d_max · θ)`;
//! * row-stochastic: `‖M r‖∞ ≤ max_u r(u)` (rows of `M` sum to 1);
//! * symmetric: `‖M r‖∞ ≤ √d_max · max_u r(u)/√deg(u)`
//!   (via `M_sym = D^{1/2} M_row D^{-1/2}`).
//!
//! Residuals stay non-negative throughout (the personalization is `δ_s`
//! and `A` is non-negative), which is what makes the bounds valid.
//!
//! # Batched multi-source driver
//!
//! [`diffuse_sparse`] computes one push column per *distinct* source node
//! on a [`crate::workpool`] of scoped threads and rank-1-accumulates the
//! columns into the dense [`Signal`] exactly like
//! [`crate::per_source::diffuse_sparse`]. Column computation is a pure
//! function of `(graph, source, config)` and accumulation happens on the
//! calling thread in ascending node order, so the output is **bit-for-bit
//! identical for every thread count**.

use std::collections::{BTreeMap, VecDeque};

use gdsearch_embed::Embedding;
use gdsearch_graph::sparse::Normalization;
use gdsearch_graph::{Graph, NodeId};
use gdsearch_obs::Sink;

use crate::convergence::Convergence;
use crate::degrees::DegreeTables;
use crate::{workpool, DiffusionError, PprConfig, Signal};

/// Node count above which [`crate::per_source::auto_diffuse`] prefers the
/// push engine over scalar power iteration for sparse personalizations.
///
/// Below this size a full `O(iters · E)` scalar sweep is already cheap and
/// the push engine's queue bookkeeping does not pay for itself; above it,
/// push wins increasingly with `N` (the `engines` Criterion bench and the
/// `ablation_engines` bin measure the gap).
pub const AUTO_PUSH_MIN_NODES: usize = 4096;

/// Configuration of the forward-push engine: the PPR filter parameters
/// plus the push-specific knobs.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{push::PushConfig, PprConfig};
///
/// # fn main() -> Result<(), gdsearch_diffusion::DiffusionError> {
/// let cfg = PushConfig::new(PprConfig::new(0.5)?)
///     .with_rmax(1e-4)?
///     .with_threads(4)?;
/// assert_eq!(cfg.threads(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushConfig {
    ppr: PprConfig,
    rmax: f32,
    threads: usize,
}

impl PushConfig {
    /// Creates a push configuration with defaults: initial `rmax` equal to
    /// the PPR tolerance and a single worker thread.
    ///
    /// `rmax` only controls where the frontier refinement *starts* — the
    /// result always meets `ppr.tolerance()` (see the module docs), so the
    /// default is a reasonable schedule for any graph.
    #[must_use]
    pub fn new(ppr: PprConfig) -> Self {
        PushConfig {
            ppr,
            rmax: ppr.tolerance().max(f32::MIN_POSITIVE),
            threads: 1,
        }
    }

    /// Sets the initial frontier granularity: nodes enter the push queue
    /// while `r(u) > rmax · deg(u)`. Larger values start coarser and rely
    /// on more halving rounds; the final accuracy is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless `rmax` is
    /// positive and finite.
    pub fn with_rmax(mut self, rmax: f32) -> Result<Self, DiffusionError> {
        if !rmax.is_finite() || rmax <= 0.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "rmax must be positive and finite, got {rmax}"
            )));
        }
        self.rmax = rmax;
        Ok(self)
    }

    /// Sets the worker-thread count of the batched multi-source driver.
    /// The output is identical for every thread count (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Result<Self, DiffusionError> {
        if threads == 0 {
            return Err(DiffusionError::invalid_parameter(
                "threads must be positive",
            ));
        }
        self.threads = threads;
        Ok(self)
    }

    /// The PPR filter parameters.
    #[must_use]
    pub fn ppr(&self) -> &PprConfig {
        &self.ppr
    }

    /// Initial frontier granularity.
    #[must_use]
    pub fn rmax(&self) -> f32 {
        self.rmax
    }

    /// Worker threads of the batched driver.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Outcome of a single-source push with its work counters — what the
/// benches and the `ablation_engines` bin report.
#[derive(Debug, Clone, PartialEq)]
pub struct PushResult {
    /// The PPR column `h_s` to the certified accuracy.
    pub values: Vec<f32>,
    /// Individual push operations performed (each costs `deg(u)` work).
    pub pushes: usize,
    /// Frontier drains performed (one per `rmax` refinement level).
    pub drains: usize,
    /// The certified final bound on `‖h_s − values‖∞`.
    pub residual_bound: f32,
    /// The frontier granularity at which the bound was certified.
    pub final_rmax: f32,
    /// High-water frontier queue length over the whole computation.
    pub frontier_peak: usize,
}

/// The graph plus its degree tables — everything a column push reads.
///
/// The degree scalars and the certified residual bound live in
/// [`crate::degrees::DegreeTables`], shared with the sharded push engine
/// so the bound formulas exist exactly once.
struct PushContext<'g> {
    graph: &'g Graph,
    tables: DegreeTables,
}

impl<'g> PushContext<'g> {
    fn new(graph: &'g Graph, norm: Normalization) -> Self {
        PushContext {
            graph,
            tables: DegreeTables::from_graph(graph, norm),
        }
    }

    /// Rigorous bound on `‖M r‖∞`, the L∞ distance between the current
    /// estimate and the fixed point (derivations in the module docs).
    fn residual_bound(&self, residual: &[f32]) -> f32 {
        self.tables
            .residual_bound(residual.iter().copied().enumerate())
    }
}

/// Computes one push column to the certified tolerance. Pure in
/// `(ctx, source, config)`: the batched driver relies on this for
/// thread-count determinism.
fn push_column(
    ctx: &PushContext<'_>,
    source: u32,
    config: &PushConfig,
) -> Result<(Vec<f32>, PushResult), DiffusionError> {
    let n = ctx.graph.num_nodes();
    let alpha = config.ppr.alpha();
    let tolerance = config.ppr.tolerance();
    let budget = config.ppr.max_iterations().saturating_mul(n.max(1));

    let mut estimate = vec![0.0f32; n];
    let mut residual = vec![0.0f32; n];
    residual[source as usize] = 1.0;
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(source);
    in_queue[source as usize] = true;

    let mut rmax = config.rmax;
    let mut pushes = 0usize;
    let mut frontier_peak = queue.len();
    let mut conv = Convergence::new();
    loop {
        // Drain the frontier at the current granularity.
        while let Some(u) = queue.pop_front() {
            // The queue only grows between pops, so observing its length
            // at every pop (plus the popped head) captures the high-water
            // mark exactly.
            frontier_peak = frontier_peak.max(queue.len() + 1);
            let ui = u as usize;
            in_queue[ui] = false;
            let ru = residual[ui];
            if ru <= rmax * ctx.tables.deg_scale[ui] {
                continue;
            }
            if pushes >= budget {
                return Err(DiffusionError::NotConverged {
                    iterations: pushes,
                    residual: ctx.residual_bound(&residual),
                });
            }
            pushes += 1;
            residual[ui] = 0.0;
            estimate[ui] += alpha * ru;
            let spread = (1.0 - alpha) * ru;
            if spread <= 0.0 {
                continue;
            }
            // Forward the remaining mass along column u of A. The column's
            // nonzeros are exactly u's neighbors (the graph is undirected).
            let neighbors = ctx.graph.neighbor_slice(NodeId::new(u));
            match ctx.tables.norm {
                Normalization::ColumnStochastic => {
                    // A[v][u] = 1/deg(u), uniform over neighbors.
                    let w = spread * ctx.tables.inv_deg[ui];
                    for v in neighbors {
                        let vi = v.index();
                        residual[vi] += w;
                        if !in_queue[vi] && residual[vi] > rmax * ctx.tables.deg_scale[vi] {
                            in_queue[vi] = true;
                            queue.push_back(v.as_u32());
                        }
                    }
                }
                Normalization::RowStochastic => {
                    // A[v][u] = 1/deg(v).
                    for v in neighbors {
                        let vi = v.index();
                        residual[vi] += spread * ctx.tables.inv_deg[vi];
                        if !in_queue[vi] && residual[vi] > rmax * ctx.tables.deg_scale[vi] {
                            in_queue[vi] = true;
                            queue.push_back(v.as_u32());
                        }
                    }
                }
                Normalization::Symmetric => {
                    // A[v][u] = 1/(sqrt(deg(u)) sqrt(deg(v))).
                    let w = spread * ctx.tables.inv_sqrt_deg[ui];
                    for v in neighbors {
                        let vi = v.index();
                        residual[vi] += w * ctx.tables.inv_sqrt_deg[vi];
                        if !in_queue[vi] && residual[vi] > rmax * ctx.tables.deg_scale[vi] {
                            in_queue[vi] = true;
                            queue.push_back(v.as_u32());
                        }
                    }
                }
            }
        }
        // Certify: does the remaining residual mass already guarantee the
        // tolerance? If so the estimate is interchangeable with the sweep
        // engines' output.
        let bound = ctx.residual_bound(&residual);
        if conv.record(bound, tolerance) {
            break;
        }
        // Not yet: halve the granularity and rebuild the frontier.
        rmax *= 0.5;
        for (ui, r) in residual.iter().enumerate() {
            if !in_queue[ui] && *r > rmax * ctx.tables.deg_scale[ui] {
                in_queue[ui] = true;
                queue.push_back(ui as u32);
            }
        }
        // Sub-denormal rmax with an empty frontier means the residuals
        // cannot be refined any further in f32 — report honestly instead
        // of spinning.
        if queue.is_empty() && rmax < f32::MIN_POSITIVE {
            return Err(DiffusionError::NotConverged {
                iterations: pushes,
                residual: bound,
            });
        }
    }
    let stats = PushResult {
        values: Vec::new(),
        pushes,
        drains: conv.iters,
        residual_bound: conv.residual,
        final_rmax: rmax,
        frontier_peak,
    };
    Ok((estimate, stats))
}

/// Computes the single-source PPR vector `h_s` by forward push, certified
/// to `config.ppr().tolerance()` in L∞.
///
/// Interchangeable with [`crate::per_source::ppr_vector`]; sublinear in the
/// graph when the diffusion is local.
///
/// # Errors
///
/// Returns [`DiffusionError::Graph`] if `source` is out of range and
/// [`DiffusionError::NotConverged`] if the push budget
/// (`max_iterations · N` pushes) is exhausted.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::push::{self, PushConfig};
/// use gdsearch_diffusion::PprConfig;
/// use gdsearch_graph::{generators, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(5);
/// let cfg = PushConfig::new(PprConfig::new(0.5)?);
/// let h = push::ppr_vector(&g, NodeId::new(0), &cfg)?;
/// // Weight decays with distance from the source.
/// assert!(h[0] > h[1] && h[1] > h[2]);
/// # Ok(())
/// # }
/// ```
pub fn ppr_vector(
    graph: &Graph,
    source: NodeId,
    config: &PushConfig,
) -> Result<Vec<f32>, DiffusionError> {
    Ok(ppr_vector_detailed(graph, source, config)?.values)
}

/// [`ppr_vector`] with the push-work counters attached.
///
/// # Errors
///
/// As [`ppr_vector`].
pub fn ppr_vector_detailed(
    graph: &Graph,
    source: NodeId,
    config: &PushConfig,
) -> Result<PushResult, DiffusionError> {
    graph.check_node(source)?;
    let ctx = PushContext::new(graph, config.ppr.normalization());
    let (values, mut stats) = push_column(&ctx, source.as_u32(), config)?;
    stats.values = values;
    Ok(stats)
}

/// Diffuses a sparse personalization — `(source node, embedding)` pairs —
/// with one push column per distinct source node, sharded across
/// `config.threads()` scoped workers.
///
/// Equivalent (to tolerance) to [`crate::per_source::diffuse_sparse`] and
/// the dense engines; bit-for-bit identical output for every thread count.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] for ragged embeddings or
/// out-of-range sources, [`DiffusionError::NotConverged`] on push-budget
/// exhaustion.
pub fn diffuse_sparse(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &PushConfig,
) -> Result<Signal, DiffusionError> {
    diffuse_sparse_observed(graph, dim, sources, config, &mut Sink::disabled())
}

/// [`diffuse_sparse`] with deterministic work instrumentation: per-column
/// push counts, drains and frontier peaks are recorded into `sink` in the
/// sequential accumulation loop (ascending source order), so recording
/// never perturbs the result and registries are bit-identical across
/// thread counts.
///
/// Metrics: `diffusion.push.columns` / `.pushes` / `.drains` (counters),
/// `diffusion.push.column_pushes` / `.frontier_peak` (histograms).
///
/// # Errors
///
/// As [`diffuse_sparse`].
pub fn diffuse_sparse_observed(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &PushConfig,
    sink: &mut Sink<'_>,
) -> Result<Signal, DiffusionError> {
    let n = graph.num_nodes();
    let mut out = Signal::zeros(n, dim);
    // Group repeated source nodes (diffusion is linear, so their
    // personalizations sum) — one column per distinct node. BTreeMap keeps
    // accumulation in ascending node order: deterministic.
    let mut grouped: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
    for (node, emb) in sources {
        if emb.dim() != dim {
            return Err(DiffusionError::ShapeMismatch {
                expected: (n, dim),
                got: (node.index(), emb.dim()),
            });
        }
        if node.index() >= n {
            return Err(DiffusionError::ShapeMismatch {
                expected: (n, dim),
                got: (node.index(), dim),
            });
        }
        grouped
            .entry(node.as_u32())
            .and_modify(|acc| {
                for (a, e) in acc.iter_mut().zip(emb.as_slice()) {
                    *a += e;
                }
            })
            .or_insert_with(|| emb.as_slice().to_vec());
    }
    if grouped.is_empty() || dim == 0 {
        return Ok(out);
    }
    let ctx = PushContext::new(graph, config.ppr.normalization());
    let nodes: Vec<u32> = grouped.keys().copied().collect();
    // Columns are computed in parallel but compressed to their nonzero
    // support in the worker, so peak memory tracks the diffusion's actual
    // locality rather than |sources| · N.
    let columns = workpool::map_batched(&nodes, config.threads, |&u| {
        push_column(&ctx, u, config).map(|(estimate, stats)| {
            let compressed = estimate
                .into_iter()
                .enumerate()
                .filter(|&(_, w)| w != 0.0)
                .map(|(ui, w)| (ui as u32, w))
                .collect::<Vec<(u32, f32)>>();
            (compressed, stats)
        })
    });
    for (source, column) in nodes.iter().zip(columns) {
        let (column, stats) = column?;
        // Sequential, ascending source order: deterministic for every
        // worker count.
        sink.add("diffusion.push.columns", 1);
        sink.add("diffusion.push.pushes", stats.pushes as u64);
        sink.add("diffusion.push.drains", stats.drains as u64);
        sink.record("diffusion.push.column_pushes", stats.pushes as u64);
        sink.record("diffusion.push.frontier_peak", stats.frontier_peak as u64);
        let emb = &grouped[source];
        for (u, weight) in column {
            let row = out.row_mut(u as usize);
            for (r, e) in row.iter_mut().zip(emb) {
                *r += weight * e;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, per_source, power};
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seeded(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn one_hot(n: usize, u: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(u)[0] = 1.0;
        s
    }

    fn push_cfg(alpha: f32, tol: f32) -> PushConfig {
        PushConfig::new(PprConfig::new(alpha).unwrap().with_tolerance(tol).unwrap())
    }

    #[test]
    fn matches_exact_oracle_across_alphas() {
        let g = generators::social_circles_like_scaled(50, &mut seeded(1)).unwrap();
        for alpha in [0.1f32, 0.5, 0.9] {
            let cfg = push_cfg(alpha, 1e-6);
            let truth = exact::diffuse(&g, &one_hot(50, 7), cfg.ppr()).unwrap();
            let h = ppr_vector(&g, NodeId::new(7), &cfg).unwrap();
            for (u, hu) in h.iter().enumerate() {
                assert!(
                    (hu - truth.row(u)[0]).abs() < 1e-4,
                    "alpha {alpha}, node {u}"
                );
            }
        }
    }

    #[test]
    fn matches_exact_under_all_normalizations() {
        let g = generators::grid(5, 5);
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let ppr = PprConfig::new(0.4)
                .unwrap()
                .with_tolerance(1e-6)
                .unwrap()
                .with_normalization(norm);
            let cfg = PushConfig::new(ppr);
            let truth = exact::diffuse(&g, &one_hot(25, 12), &ppr).unwrap();
            let h = ppr_vector(&g, NodeId::new(12), &cfg).unwrap();
            for (u, hu) in h.iter().enumerate() {
                assert!((hu - truth.row(u)[0]).abs() < 1e-4, "{norm:?}, node {u}");
            }
        }
    }

    #[test]
    fn column_mass_is_preserved() {
        let g = generators::social_circles_like_scaled(80, &mut seeded(2)).unwrap();
        let cfg = push_cfg(0.3, 1e-7);
        let h = ppr_vector(&g, NodeId::new(11), &cfg).unwrap();
        let total: f32 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "column mass {total}");
        assert!(h.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn certifies_within_tolerance_of_fixed_point() {
        let g = generators::grid(8, 8);
        let cfg = push_cfg(0.5, 1e-5);
        let out = ppr_vector_detailed(&g, NodeId::new(0), &cfg).unwrap();
        assert!(out.residual_bound <= 1e-5);
        assert!(out.pushes > 0);
        assert!(out.drains >= 1);
        assert!(out.final_rmax > 0.0);
    }

    #[test]
    fn batched_matches_per_source() {
        let g = generators::social_circles_like_scaled(70, &mut seeded(3)).unwrap();
        let dim = 5;
        let mut rng = seeded(4);
        let sources: Vec<(NodeId, Embedding)> = (0..4)
            .map(|i| {
                (
                    NodeId::new(i * 13),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let ppr = PprConfig::new(0.4).unwrap().with_tolerance(1e-7).unwrap();
        let pushed = diffuse_sparse(&g, dim, &sources, &PushConfig::new(ppr)).unwrap();
        let swept = per_source::diffuse_sparse(&g, dim, &sources, &ppr).unwrap();
        assert!(
            pushed.max_abs_diff(&swept).unwrap() < 1e-4,
            "push vs per-source disagree"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = generators::social_circles_like_scaled(90, &mut seeded(5)).unwrap();
        let dim = 4;
        let mut rng = seeded(6);
        let sources: Vec<(NodeId, Embedding)> = (0..8)
            .map(|_| {
                (
                    NodeId::new(rng.random_range(0..90)),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let base = push_cfg(0.5, 1e-6);
        let reference = diffuse_sparse(&g, dim, &sources, &base).unwrap();
        for threads in [2usize, 4, 8] {
            let cfg = base.with_threads(threads).unwrap();
            let out = diffuse_sparse(&g, dim, &sources, &cfg).unwrap();
            assert_eq!(out, reference, "{threads} threads drifted bitwise");
        }
    }

    #[test]
    fn duplicate_sources_accumulate() {
        let g = generators::ring(12).unwrap();
        let sources = vec![
            (NodeId::new(3), Embedding::new(vec![1.0, 0.0])),
            (NodeId::new(3), Embedding::new(vec![0.5, 2.0])),
        ];
        let ppr = PprConfig::new(0.5).unwrap().with_tolerance(1e-7).unwrap();
        let pushed = diffuse_sparse(&g, 2, &sources, &PushConfig::new(ppr)).unwrap();
        let e0 = Signal::from_sparse_rows(12, 2, &sources).unwrap();
        let dense = power::diffuse(&g, &e0, &ppr).unwrap().signal;
        assert!(pushed.max_abs_diff(&dense).unwrap() < 1e-4);
    }

    #[test]
    fn alpha_one_is_pure_teleport() {
        let g = generators::ring(6).unwrap();
        let cfg = push_cfg(1.0, 1e-6);
        let out = ppr_vector_detailed(&g, NodeId::new(2), &cfg).unwrap();
        assert!((out.values[2] - 1.0).abs() < 1e-6);
        assert!(out
            .values
            .iter()
            .enumerate()
            .all(|(u, &v)| u == 2 || v == 0.0));
        assert_eq!(out.pushes, 1);
    }

    #[test]
    fn isolated_node_keeps_teleport_share_only() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let cfg = push_cfg(0.5, 1e-7);
        let h = ppr_vector(&g, NodeId::new(2), &cfg).unwrap();
        assert!((h[2] - 0.5).abs() < 1e-6);
        assert_eq!(h[0], 0.0);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn rejects_out_of_range_and_ragged() {
        let g = generators::ring(5).unwrap();
        let cfg = PushConfig::new(PprConfig::default());
        assert!(ppr_vector(&g, NodeId::new(9), &cfg).is_err());
        assert!(diffuse_sparse(&g, 2, &[(NodeId::new(9), Embedding::zeros(2))], &cfg).is_err());
        assert!(diffuse_sparse(&g, 2, &[(NodeId::new(0), Embedding::zeros(3))], &cfg).is_err());
    }

    #[test]
    fn empty_sources_give_zero_signal() {
        let g = generators::ring(5).unwrap();
        let cfg = PushConfig::new(PprConfig::default());
        let out = diffuse_sparse(&g, 4, &[], &cfg).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn budget_exhaustion_errors() {
        let g = generators::ring(30).unwrap();
        let ppr = PprConfig::new(0.01)
            .unwrap()
            .with_tolerance(1e-12)
            .unwrap()
            .with_max_iterations(1);
        let cfg = PushConfig::new(ppr);
        assert!(matches!(
            ppr_vector(&g, NodeId::new(0), &cfg),
            Err(DiffusionError::NotConverged { .. })
        ));
    }

    #[test]
    fn invalid_knobs_rejected() {
        let cfg = PushConfig::new(PprConfig::default());
        assert!(cfg.with_rmax(0.0).is_err());
        assert!(cfg.with_rmax(-1.0).is_err());
        assert!(cfg.with_rmax(f32::NAN).is_err());
        assert!(cfg.with_threads(0).is_err());
        assert!(cfg.with_rmax(1e-3).unwrap().with_threads(8).is_ok());
    }

    #[test]
    fn coarse_initial_rmax_still_meets_tolerance() {
        // rmax is a schedule knob, not an accuracy knob: starting absurdly
        // coarse must still land within tolerance of the oracle.
        let g = generators::grid(6, 6);
        let ppr = PprConfig::new(0.5).unwrap().with_tolerance(1e-6).unwrap();
        let cfg = PushConfig::new(ppr).with_rmax(10.0).unwrap();
        let truth = exact::diffuse(&g, &one_hot(36, 5), &ppr).unwrap();
        let h = ppr_vector(&g, NodeId::new(5), &cfg).unwrap();
        for (u, hu) in h.iter().enumerate() {
            assert!((hu - truth.row(u)[0]).abs() < 1e-4, "node {u}");
        }
    }

    use gdsearch_graph::Graph;
}
