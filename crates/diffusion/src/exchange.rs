//! The shard-boundary exchange abstraction of the sharded engines.
//!
//! The engines in [`crate::sharded`] keep all per-node state partitioned by
//! shard and only move *boundary* data between steps: halo columns of the
//! previous iterate (power sweep) and cross-shard residual mass (push).
//! This module factors that movement into the [`ShardExchange`] trait so
//! the same canonical schedule can run over different interconnects:
//!
//! * [`InProcessExchange`] — shards share an address space; frames are
//!   plain memory copies scheduled over [`crate::workpool`] (the PR 4
//!   behaviour, bitwise unchanged);
//! * a transport-backed implementation (the `gdsearch-dist` crate) — each
//!   shard is a node in the simulator's bounded-bandwidth reactor and
//!   frames serialize onto links as wire messages, with round barriers and
//!   per-round retransmission.
//!
//! # Determinism contract
//!
//! Implementations must be *value-faithful and order-free*: the bytes an
//! implementation delivers must be exactly the values requested by the
//! [`ExchangePlan`], and all order-sensitive work — which slot a halo value
//! lands in, the ascending-source order residual contributions are applied
//! in — is fixed by the plan and by this module's application helpers, not
//! by delivery timing. Any implementation that meets the contract makes
//! the sharded engines produce bit-for-bit the same output, which is how
//! the distributed backend inherits the PR 4 guarantee.

use gdsearch_graph::ShardedGraph;

use crate::{workpool, DiffusionError};

/// One shard's buffered outgoing residual mass: per destination shard, a
/// list of `(destination-local row, weight)` contributions in emission
/// order (ascending source, then ascending neighbor).
pub type Outbox = Vec<Vec<(u32, f32)>>;

/// The halo rows one shard needs from one owning peer, with the input
/// slots they land in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloGroup {
    /// The owning (source) shard.
    pub src: usize,
    /// Owner-local row indices, in the destination's halo order
    /// (ascending global node id).
    pub rows: Vec<u32>,
    /// Destination slot indices, parallel to `rows`.
    pub slots: Vec<u32>,
}

/// The static exchange schedule of a partition: who needs which rows from
/// whom, and where gathered values land. Built once per partition; every
/// [`ShardExchange`] implementation interprets it the same way.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    num_shards: usize,
    /// Per shard: slot index of the first local row (`halo_split`).
    local_slot_base: Vec<usize>,
    /// Per destination shard: its halo requests, grouped by owning shard
    /// in ascending `src` order.
    halo_groups: Vec<Vec<HaloGroup>>,
    /// Per shard: its exchange peers ([`ShardedGraph::peers_of`]),
    /// ascending.
    peers: Vec<Vec<usize>>,
}

impl ExchangePlan {
    /// Builds the exchange schedule of `sharded`.
    #[must_use]
    pub fn new(sharded: &ShardedGraph) -> Self {
        let num_shards = sharded.num_shards();
        let mut halo_groups = Vec::with_capacity(num_shards);
        let mut peers = Vec::with_capacity(num_shards);
        for shard in sharded.shards() {
            // The halo is sorted by global id, so owners come in ascending
            // contiguous runs — one group per owning shard.
            let mut groups: Vec<HaloGroup> = Vec::new();
            for (i, &h) in shard.halo().iter().enumerate() {
                let owner = sharded.owner_of(h);
                let row = h.as_u32() - sharded.shard(owner).start();
                let slot = shard.halo_slot(i) as u32;
                match groups.last_mut() {
                    Some(g) if g.src == owner => {
                        g.rows.push(row);
                        g.slots.push(slot);
                    }
                    _ => groups.push(HaloGroup {
                        src: owner,
                        rows: vec![row],
                        slots: vec![slot],
                    }),
                }
            }
            // Derive the peer list from the groups themselves so the two
            // can never desynchronize (it equals `ShardedGraph::peers_of`,
            // cross-checked by the plan tests).
            peers.push(groups.iter().map(|g| g.src).collect());
            halo_groups.push(groups);
        }
        ExchangePlan {
            num_shards,
            local_slot_base: sharded.shards().iter().map(|s| s.halo_split()).collect(),
            halo_groups,
            peers,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Slot index of shard `s`'s first local row.
    #[must_use]
    pub fn local_slot_base(&self, s: usize) -> usize {
        self.local_slot_base[s]
    }

    /// Shard `s`'s halo requests, grouped by owning shard ascending.
    #[must_use]
    pub fn halo_groups(&self, s: usize) -> &[HaloGroup] {
        &self.halo_groups[s]
    }

    /// Shard `s`'s exchange peers, ascending.
    #[must_use]
    pub fn peers(&self, s: usize) -> &[usize] {
        &self.peers[s]
    }

    /// Copies shard `s`'s local block of the current iterate into the
    /// local slots of its input vector — boundary-free data every
    /// implementation moves without touching the interconnect.
    pub fn copy_local(&self, s: usize, dim: usize, current: &[f32], input: &mut [f32]) {
        let base = self.local_slot_base[s] * dim;
        input[base..base + current.len()].copy_from_slice(current);
    }

    /// Applies one source shard's residual contributions for destination
    /// `dest`, one entry at a time in emission order — the only order the
    /// determinism argument of [`crate::sharded`] permits.
    pub fn apply_residuals(entries: &[(u32, f32)], residual: &mut [f32]) {
        for &(row, w) in entries {
            residual[row as usize] += w;
        }
    }
}

/// Moves boundary data between shards for the sharded engines.
///
/// Implementations own an [`ExchangePlan`] and must honour the module-level
/// determinism contract: identical values in identical application order,
/// however the bytes travel.
pub trait ShardExchange {
    /// Fills each shard's slot-layout input with the current iterate:
    /// `inputs[s]` receives shard `s`'s own block in its local slots plus
    /// every halo value (gathered from the owning shards) in its halo
    /// slots. One call is one synchronous round of the power sweep's halo
    /// exchange.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::Exchange`] when boundary data cannot be
    /// delivered (transport failure, retransmission budget exhausted, …);
    /// the in-process implementation is infallible.
    fn exchange_halos(
        &mut self,
        dim: usize,
        currents: &[Vec<f32>],
        inputs: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError>;

    /// Delivers every shard's buffered cross-shard residual mass:
    /// `outboxes[s][d]` is applied to `residuals[d]`, source shards in
    /// ascending order, each box one contribution at a time in emission
    /// order. One call is one round barrier of the sharded push.
    ///
    /// # Errors
    ///
    /// As [`ShardExchange::exchange_halos`].
    fn exchange_residuals(
        &mut self,
        outboxes: &[Outbox],
        residuals: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError>;
}

/// The shared-address-space exchange: halo gathers and residual merges are
/// memory copies parallelized over [`crate::workpool`]. This is exactly
/// the boundary movement the PR 4 engines performed inline — bit-for-bit
/// identical output for every `(shards, threads)`.
#[derive(Debug)]
pub struct InProcessExchange {
    plan: ExchangePlan,
    threads: usize,
}

impl InProcessExchange {
    /// Builds the in-process exchange for a partition, scheduling copy
    /// work over `threads` workers (the worker count never affects the
    /// result).
    #[must_use]
    pub fn new(sharded: &ShardedGraph, threads: usize) -> Self {
        InProcessExchange {
            plan: ExchangePlan::new(sharded),
            threads: threads.max(1),
        }
    }

    /// The exchange schedule.
    #[must_use]
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }
}

impl ShardExchange for InProcessExchange {
    fn exchange_halos(
        &mut self,
        dim: usize,
        currents: &[Vec<f32>],
        inputs: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError> {
        let plan = &self.plan;
        let mut items: Vec<(usize, &mut Vec<f32>)> = inputs.iter_mut().enumerate().collect();
        workpool::map_batched_mut(&mut items, self.threads, |(s, input)| {
            plan.copy_local(*s, dim, &currents[*s], input);
            for group in plan.halo_groups(*s) {
                let src = currents[group.src].as_slice();
                for (&row, &slot) in group.rows.iter().zip(&group.slots) {
                    let row = row as usize * dim;
                    let slot = slot as usize * dim;
                    input[slot..slot + dim].copy_from_slice(&src[row..row + dim]);
                }
            }
        });
        Ok(())
    }

    fn exchange_residuals(
        &mut self,
        outboxes: &[Outbox],
        residuals: &mut [Vec<f32>],
    ) -> Result<(), DiffusionError> {
        let mut items: Vec<(usize, &mut Vec<f32>)> = residuals.iter_mut().enumerate().collect();
        workpool::map_batched_mut(&mut items, self.threads, |(dest, residual)| {
            // Source shards in ascending order = ascending source node id
            // (the determinism argument in the `sharded` module docs).
            for src_box in outboxes {
                ExchangePlan::apply_residuals(&src_box[*dest], residual);
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::{generators, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_covers_every_halo_slot_exactly_once() {
        let g = generators::social_circles_like_scaled(70, &mut StdRng::seed_from_u64(3)).unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        let plan = ExchangePlan::new(&sg);
        for (s, shard) in sg.shards().iter().enumerate() {
            let mut covered = vec![false; shard.slot_count()];
            for local in 0..shard.num_local_nodes() {
                covered[plan.local_slot_base(s) + local] = true;
            }
            let mut last_src = None;
            for group in plan.halo_groups(s) {
                assert!(last_src < Some(group.src), "groups not ascending");
                last_src = Some(group.src);
                assert_eq!(group.rows.len(), group.slots.len());
                for (&row, &slot) in group.rows.iter().zip(&group.slots) {
                    // The slot maps back to the global id the row names.
                    let owner = sg.shard(group.src);
                    let global = NodeId::new(owner.start() + row);
                    assert_eq!(shard.slot_of(global), Some(slot as usize));
                    assert!(!covered[slot as usize], "slot covered twice");
                    covered[slot as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "uncovered slot in shard {s}");
            // The plan's peer list (derived from the groups) agrees with
            // the graph-level derivation.
            assert_eq!(
                plan.peers(s),
                sg.peers_of(s),
                "peers disagree for shard {s}"
            );
        }
    }

    #[test]
    fn in_process_halo_exchange_reconstructs_slot_views() {
        let g = generators::grid(5, 4);
        let sg = ShardedGraph::from_graph(&g, 3).unwrap();
        let dim = 2;
        // currents[s][local * dim + d] = global id * 10 + d: recognizable.
        let currents: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| {
                (0..shard.num_local_nodes() * dim)
                    .map(|j| {
                        let (local, d) = (j / dim, j % dim);
                        (shard.start() as usize + local) as f32 * 10.0 + d as f32
                    })
                    .collect()
            })
            .collect();
        let mut inputs: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|shard| vec![f32::NAN; shard.slot_count() * dim])
            .collect();
        for threads in [1usize, 4] {
            let mut ex = InProcessExchange::new(&sg, threads);
            ex.exchange_halos(dim, &currents, &mut inputs).unwrap();
            for (shard, input) in sg.shards().iter().zip(&inputs) {
                for u in g.node_ids() {
                    if let Some(slot) = shard.slot_of(u) {
                        for d in 0..dim {
                            assert_eq!(
                                input[slot * dim + d],
                                u.index() as f32 * 10.0 + d as f32,
                                "shard {}..{} slot {slot}",
                                shard.start(),
                                shard.end()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn in_process_residual_exchange_merges_in_source_order() {
        let g = generators::ring(9).unwrap();
        let sg = ShardedGraph::from_graph(&g, 3).unwrap();
        let mut ex = InProcessExchange::new(&sg, 2);
        let mut outboxes: Vec<Outbox> = vec![vec![Vec::new(); 3]; 3];
        outboxes[0][1] = vec![(0, 0.5), (0, 0.25)];
        outboxes[2][1] = vec![(1, 1.0)];
        outboxes[1][1] = vec![(2, 2.0)]; // self-delivery participates too
        let mut residuals: Vec<Vec<f32>> = sg
            .shards()
            .iter()
            .map(|s| vec![0.0; s.num_local_nodes()])
            .collect();
        ex.exchange_residuals(&outboxes, &mut residuals).unwrap();
        assert_eq!(residuals[1], vec![0.75, 1.0, 2.0]);
        assert!(residuals[0].iter().all(|&r| r == 0.0));
    }
}
