//! Deterministic work batching over scoped OS threads.
//!
//! The multi-source push driver ([`crate::push::diffuse_sparse`]) is
//! embarrassingly parallel across sources, but its output must be
//! *bit-for-bit identical* regardless of the worker count — the experiment
//! harness and the property tests rely on engine determinism. This module
//! provides the one primitive that makes that easy: an order-preserving
//! parallel map. Each item is processed by a pure function on some worker
//! (round-robin sharding, the [`crate::threaded`] precedent), results are
//! reassembled by item index on the calling thread, and nothing about the
//! scheduling can leak into the output.
//!
//! Built on `std::thread::scope` — no extra dependencies, workers may
//! borrow from the caller's stack.

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning outputs in item order.
///
/// Determinism contract: `f` is applied to each item exactly once and the
/// result vector is ordered by item index, so as long as `f` itself is a
/// pure function of its argument the output is independent of `threads`.
///
/// `threads` is clamped to `1..=items.len()`; with one worker (or one
/// item) everything runs inline on the calling thread with no spawn
/// overhead.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::workpool;
///
/// let squares = workpool::map_batched(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_batched<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let f = &f;
            handles.push(scope.spawn(move || {
                // Round-robin sharding: worker w takes items w, w+T, w+2T, …
                let mut out = Vec::new();
                let mut i = worker;
                while i < items.len() {
                    out.push((i, f(&items[i])));
                    i += threads;
                }
                out
            }));
        }
        for handle in handles {
            // Re-raise worker panics with their original payload.
            let results = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (i, value) in results {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item index is assigned to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 7, 16] {
            let out = map_batched(&items, threads, |&x| x * 10);
            assert_eq!(out, (0..100).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        // Float accumulation inside f is per-item, so outputs must match
        // bitwise whatever the worker count.
        let items: Vec<f32> = (0..57).map(|i| i as f32 * 0.37).collect();
        let reference = map_batched(&items, 1, |&x| (x.sin() + 1.0) / (x.cos() + 2.0));
        for threads in [2, 4, 8] {
            let out = map_batched(&items, threads, |&x| (x.sin() + 1.0) / (x.cos() + 2.0));
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_batched(&empty, 4, |&x| x).is_empty());
        assert_eq!(map_batched(&[41u32], 4, |&x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_batched(&[1u32, 2, 3], 64, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let offset = 100u32;
        let out = map_batched(&[1u32, 2, 3], 2, |&x| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }
}
