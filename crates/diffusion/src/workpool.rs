//! Deterministic work batching over scoped OS threads.
//!
//! The multi-source push driver ([`crate::push::diffuse_sparse`]) is
//! embarrassingly parallel across sources, but its output must be
//! *bit-for-bit identical* regardless of the worker count — the experiment
//! harness and the property tests rely on engine determinism. This module
//! provides the one primitive that makes that easy: an order-preserving
//! parallel map. Each item is processed by a pure function on some worker
//! (round-robin sharding, the [`crate::threaded`] precedent), results are
//! reassembled by item index on the calling thread, and nothing about the
//! scheduling can leak into the output.
//!
//! Built on `std::thread::scope` — no extra dependencies, workers may
//! borrow from the caller's stack.

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning outputs in item order.
///
/// Determinism contract: `f` is applied to each item exactly once and the
/// result vector is ordered by item index, so as long as `f` itself is a
/// pure function of its argument the output is independent of `threads`.
///
/// `threads` is clamped to `1..=items.len()`; with one worker (or one
/// item) everything runs inline on the calling thread with no spawn
/// overhead.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::workpool;
///
/// let squares = workpool::map_batched(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_batched<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let f = &f;
            handles.push(scope.spawn(move || {
                // Round-robin sharding: worker w takes items w, w+T, w+2T, …
                let mut out = Vec::new();
                let mut i = worker;
                while i < items.len() {
                    out.push((i, f(&items[i])));
                    i += threads;
                }
                out
            }));
        }
        for handle in handles {
            // Re-raise worker panics with their original payload.
            let results = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (i, value) in results {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item index is assigned to exactly one worker"))
        .collect()
}

/// Maps `f` over `items` in place on up to `threads` scoped worker
/// threads, returning the per-item outputs in item order.
///
/// The mutable sibling of [`map_batched`], for stages whose items carry
/// their own mutable state (per-node handlers, RNGs, output buffers).
/// Sharding is by contiguous chunk (`chunks_mut` hands each worker a
/// disjoint subslice), so no synchronization is needed and the borrow
/// checker proves the items disjoint.
///
/// Determinism contract: `f` runs on each item exactly once and only ever
/// sees that item, so as long as `f(&mut item)` is a pure function of the
/// item's own state, both the mutations and the returned vector are
/// independent of `threads` — chunk boundaries move with the worker count,
/// but no item can observe them.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::workpool;
///
/// let mut items = [1u64, 2, 3, 4];
/// let old = workpool::map_batched_mut(&mut items, 2, |x| {
///     let before = *x;
///     *x *= 10;
///     before
/// });
/// assert_eq!(items, [10, 20, 30, 40]);
/// assert_eq!(old, vec![1, 2, 3, 4]);
/// ```
pub fn map_batched_mut<I, O, F>(items: &mut [I], threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(&mut I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut outputs: Vec<(usize, Vec<O>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (index, chunk) in items.chunks_mut(chunk_size).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || (index, chunk.iter_mut().map(f).collect())));
        }
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    outputs.sort_by_key(|&(index, _)| index);
    outputs.into_iter().flat_map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 7, 16] {
            let out = map_batched(&items, threads, |&x| x * 10);
            assert_eq!(out, (0..100).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        // Float accumulation inside f is per-item, so outputs must match
        // bitwise whatever the worker count.
        let items: Vec<f32> = (0..57).map(|i| i as f32 * 0.37).collect();
        let reference = map_batched(&items, 1, |&x| (x.sin() + 1.0) / (x.cos() + 2.0));
        for threads in [2, 4, 8] {
            let out = map_batched(&items, threads, |&x| (x.sin() + 1.0) / (x.cos() + 2.0));
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_batched(&empty, 4, |&x| x).is_empty());
        assert_eq!(map_batched(&[41u32], 4, |&x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_batched(&[1u32, 2, 3], 64, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let offset = 100u32;
        let out = map_batched(&[1u32, 2, 3], 2, |&x| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn mut_map_mutates_and_orders_outputs() {
        for threads in [1, 2, 3, 7, 16] {
            let mut items: Vec<u64> = (0..53).collect();
            let out = map_batched_mut(&mut items, threads, |x| {
                *x += 1;
                *x * 2
            });
            assert_eq!(items, (1..=53).collect::<Vec<_>>());
            assert_eq!(out, (1..=53).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn mut_map_handles_empty_and_excess_threads() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(map_batched_mut(&mut empty, 4, |x| *x).is_empty());
        let mut one = [9u32];
        assert_eq!(map_batched_mut(&mut one, 64, |x| *x + 1), vec![10]);
    }

    #[test]
    fn mut_map_items_see_only_themselves() {
        // Per-item accumulator state must come out identical for every
        // thread count (the reactor's determinism rests on this).
        let reference: Vec<(f32, f32)> = {
            let mut items: Vec<f32> = (0..41).map(|i| i as f32 * 0.61).collect();
            let out = map_batched_mut(&mut items, 1, |x| {
                *x = x.sin() * 3.0;
                *x
            });
            items.into_iter().zip(out).collect()
        };
        for threads in [2, 4, 8] {
            let mut items: Vec<f32> = (0..41).map(|i| i as f32 * 0.61).collect();
            let out = map_batched_mut(&mut items, threads, |x| {
                *x = x.sin() * 3.0;
                *x
            });
            let got: Vec<(f32, f32)> = items.into_iter().zip(out).collect();
            assert_eq!(got, reference);
        }
    }
}
