//! Graph filters: weighted aggregations of multi-hop propagations
//! (paper §II-C).
//!
//! A graph filter with impulse response `H = Σ_k c_k A^k` maps a node
//! signal `E0` to `H E0`. Personalized PageRank is the filter with
//! `c_k = a (1−a)^k`; the heat kernel uses `c_k = e^{-t} t^k / k!`. Both
//! are low-pass: they weight short propagations more, concentrating each
//! node's diffused value around its graph neighborhood.

use gdsearch_graph::sparse::{transition_matrix, Normalization};
use gdsearch_graph::Graph;

use crate::{power, DiffusionError, PprConfig, Signal};

/// A graph filter: maps an input node signal to its diffused form.
///
/// Object-safe so filters can be swapped behind `Box<dyn GraphFilter>` in
/// scheme configurations.
pub trait GraphFilter {
    /// Applies the filter to `signal` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] if `signal` and `graph`
    /// disagree on node count, or engine-specific failures.
    fn apply(&self, graph: &Graph, signal: &Signal) -> Result<Signal, DiffusionError>;

    /// Human-readable filter name for reports.
    fn name(&self) -> &'static str;
}

/// Personalized PageRank filter `a (I − (1−a) A)^{-1}` (paper Eq. 6),
/// evaluated by power iteration.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::filter::{GraphFilter, PprFilter};
/// use gdsearch_diffusion::{PprConfig, Signal};
/// use gdsearch_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let filter = PprFilter::new(PprConfig::new(0.5)?);
/// let g = generators::ring(6)?;
/// let mut e0 = Signal::zeros(6, 1);
/// e0.row_mut(0)[0] = 1.0;
/// let e = filter.apply(&g, &e0)?;
/// assert!(e.row(0)[0] > e.row(3)[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprFilter {
    config: PprConfig,
}

impl PprFilter {
    /// Creates the filter from a validated configuration.
    #[must_use]
    pub fn new(config: PprConfig) -> Self {
        PprFilter { config }
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &PprConfig {
        &self.config
    }
}

impl GraphFilter for PprFilter {
    fn apply(&self, graph: &Graph, signal: &Signal) -> Result<Signal, DiffusionError> {
        power::diffuse_converged(graph, signal, &self.config)
    }

    fn name(&self) -> &'static str {
        "personalized-pagerank"
    }
}

/// Truncated heat-kernel filter `e^{-t (I − A)} ≈ Σ_{k≤K} e^{-t} t^k/k! A^k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatKernelFilter {
    t: f32,
    order: usize,
    normalization: Normalization,
}

impl HeatKernelFilter {
    /// Creates a heat-kernel filter with diffusion time `t`, Taylor
    /// truncation `order`, and the given normalization.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless `t > 0` and
    /// `order >= 1`.
    pub fn new(t: f32, order: usize, normalization: Normalization) -> Result<Self, DiffusionError> {
        if !t.is_finite() || t <= 0.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "heat-kernel time must be positive, got {t}"
            )));
        }
        if order == 0 {
            return Err(DiffusionError::invalid_parameter(
                "heat-kernel order must be at least 1",
            ));
        }
        Ok(HeatKernelFilter {
            t,
            order,
            normalization,
        })
    }

    /// Diffusion time `t`.
    #[must_use]
    pub fn t(&self) -> f32 {
        self.t
    }

    /// Taylor truncation order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }
}

impl GraphFilter for HeatKernelFilter {
    fn apply(&self, graph: &Graph, signal: &Signal) -> Result<Signal, DiffusionError> {
        let coefficients = heat_coefficients(self.t, self.order);
        PolynomialFilter::new(coefficients, self.normalization)?.apply(graph, signal)
    }

    fn name(&self) -> &'static str {
        "heat-kernel"
    }
}

/// Taylor coefficients `e^{-t} t^k / k!` for `k = 0..=order`.
fn heat_coefficients(t: f32, order: usize) -> Vec<f32> {
    let mut coefficients = Vec::with_capacity(order + 1);
    let scale = (-t).exp();
    let mut term = 1.0f32; // t^k / k!
    coefficients.push(scale * term);
    for k in 1..=order {
        term *= t / k as f32;
        coefficients.push(scale * term);
    }
    coefficients
}

/// Arbitrary polynomial filter `Σ_k c_k A^k`.
///
/// PPR and the heat kernel are special cases; arbitrary coefficients allow
/// experimenting with other low-pass (or band-pass) responses.
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialFilter {
    coefficients: Vec<f32>,
    normalization: Normalization,
}

impl PolynomialFilter {
    /// Creates a polynomial filter from hop coefficients
    /// (`coefficients[k]` weights `A^k`).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] if `coefficients` is
    /// empty or contains non-finite values.
    pub fn new(
        coefficients: Vec<f32>,
        normalization: Normalization,
    ) -> Result<Self, DiffusionError> {
        if coefficients.is_empty() {
            return Err(DiffusionError::invalid_parameter(
                "polynomial filter needs at least one coefficient",
            ));
        }
        if coefficients.iter().any(|c| !c.is_finite()) {
            return Err(DiffusionError::invalid_parameter(
                "polynomial coefficients must be finite",
            ));
        }
        Ok(PolynomialFilter {
            coefficients,
            normalization,
        })
    }

    /// PPR's truncated polynomial form: `c_k = a (1−a)^k` for
    /// `k = 0..=order`. Useful to cross-validate the closed-form engines.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] for `alpha` outside
    /// `(0, 1]`.
    pub fn ppr_truncation(
        alpha: f32,
        order: usize,
        normalization: Normalization,
    ) -> Result<Self, DiffusionError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "alpha must lie in (0, 1], got {alpha}"
            )));
        }
        let coefficients = (0..=order)
            .map(|k| alpha * (1.0 - alpha).powi(k as i32))
            .collect();
        PolynomialFilter::new(coefficients, normalization)
    }

    /// The hop coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &[f32] {
        &self.coefficients
    }
}

impl GraphFilter for PolynomialFilter {
    fn apply(&self, graph: &Graph, signal: &Signal) -> Result<Signal, DiffusionError> {
        let n = graph.num_nodes();
        if signal.num_nodes() != n {
            return Err(DiffusionError::ShapeMismatch {
                expected: (n, signal.dim()),
                got: (signal.num_nodes(), signal.dim()),
            });
        }
        let dim = signal.dim();
        let matrix = transition_matrix(graph, self.normalization);
        let mut out = Signal::zeros(n, dim);
        let mut term = signal.clone(); // A^k E0
        let mut scratch = Signal::zeros(n, dim);
        for (k, &c) in self.coefficients.iter().enumerate() {
            if k > 0 {
                matrix.mul_dense_into(term.as_slice(), dim.max(1), scratch.as_mut_slice());
                std::mem::swap(&mut term, &mut scratch);
            }
            if c != 0.0 {
                for (o, t) in out.as_mut_slice().iter_mut().zip(term.as_slice()) {
                    *o += c * t;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "polynomial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;

    fn one_hot(n: usize, u: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(u)[0] = 1.0;
        s
    }

    #[test]
    fn ppr_truncation_approaches_exact_ppr() {
        let g = generators::grid(4, 4);
        let e0 = one_hot(16, 5);
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-8).unwrap();
        let exact = PprFilter::new(cfg).apply(&g, &e0).unwrap();
        let truncated = PolynomialFilter::ppr_truncation(0.5, 60, Normalization::ColumnStochastic)
            .unwrap()
            .apply(&g, &e0)
            .unwrap();
        assert!(
            exact.max_abs_diff(&truncated).unwrap() < 1e-4,
            "60-term truncation should match the fixed point"
        );
    }

    #[test]
    fn identity_polynomial_is_identity() {
        let g = generators::ring(7).unwrap();
        let e0 = one_hot(7, 3);
        let out = PolynomialFilter::new(vec![1.0], Normalization::ColumnStochastic)
            .unwrap()
            .apply(&g, &e0)
            .unwrap();
        assert!(out.max_abs_diff(&e0).unwrap() < 1e-7);
    }

    #[test]
    fn one_hop_polynomial_spreads_to_neighbors() {
        let g = generators::star(5);
        let e0 = one_hot(5, 0);
        // Pure one-hop: c = [0, 1]. Column-stochastic A moves 1/deg(0) = 1/4
        // of the hub's mass to each leaf.
        let out = PolynomialFilter::new(vec![0.0, 1.0], Normalization::ColumnStochastic)
            .unwrap()
            .apply(&g, &e0)
            .unwrap();
        assert!(out.row(0)[0].abs() < 1e-7);
        for leaf in 1..5 {
            assert!((out.row(leaf)[0] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn heat_kernel_is_low_pass() {
        let g = generators::path(9);
        let e0 = one_hot(9, 0);
        let filter = HeatKernelFilter::new(1.0, 20, Normalization::ColumnStochastic).unwrap();
        let out = filter.apply(&g, &e0).unwrap();
        let values: Vec<f32> = (0..9).map(|u| out.row(u)[0]).collect();
        for w in values.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-6,
                "heat mass decays along a path: {values:?}"
            );
        }
        assert_eq!(filter.name(), "heat-kernel");
        assert_eq!(filter.t(), 1.0);
        assert_eq!(filter.order(), 20);
    }

    #[test]
    fn heat_coefficients_sum_to_one_in_the_limit() {
        let c = heat_coefficients(0.7, 40);
        let total: f32 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "Σ e^-t t^k/k! = 1, got {total}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(HeatKernelFilter::new(0.0, 5, Normalization::Symmetric).is_err());
        assert!(HeatKernelFilter::new(1.0, 0, Normalization::Symmetric).is_err());
        assert!(PolynomialFilter::new(vec![], Normalization::Symmetric).is_err());
        assert!(PolynomialFilter::new(vec![f32::NAN], Normalization::Symmetric).is_err());
        assert!(PolynomialFilter::ppr_truncation(0.0, 5, Normalization::Symmetric).is_err());
    }

    #[test]
    fn filters_are_object_safe() {
        let filters: Vec<Box<dyn GraphFilter>> = vec![
            Box::new(PprFilter::new(PprConfig::default())),
            Box::new(HeatKernelFilter::new(1.0, 10, Normalization::ColumnStochastic).unwrap()),
            Box::new(
                PolynomialFilter::new(vec![0.5, 0.5], Normalization::ColumnStochastic).unwrap(),
            ),
        ];
        let g = generators::ring(5).unwrap();
        let e0 = one_hot(5, 0);
        for f in &filters {
            let out = f.apply(&g, &e0).unwrap();
            assert_eq!(out.num_nodes(), 5);
            assert!(!f.name().is_empty());
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = generators::ring(5).unwrap();
        let filter = PolynomialFilter::new(vec![1.0], Normalization::ColumnStochastic).unwrap();
        assert!(filter.apply(&g, &Signal::zeros(6, 1)).is_err());
    }
}
