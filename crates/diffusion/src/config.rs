use gdsearch_graph::sparse::Normalization;
use serde::{Deserialize, Serialize};

use crate::DiffusionError;

/// Parameters of the Personalized PageRank filter and its iterative
/// evaluation.
///
/// `alpha` is the paper's teleport probability `a`: at every step a random
/// walk returns to its origin with probability `a`, so diffusion reaches
/// `1/a` hops on average. Low `alpha` = heavy (wide) diffusion, high
/// `alpha` = light (local) diffusion. The paper evaluates
/// `a ∈ {0.1, 0.5, 0.9}`.
///
/// # Tolerance semantics
///
/// This is the single normative statement of what [`tolerance`] means —
/// every engine's docs refer here. The tolerance is an additive **L∞
/// accuracy target on the PPR fixed point** `E = a (I − (1−a) A)^{-1} E0`:
///
/// * the sweep engines ([`crate::power`], [`crate::per_source`],
///   [`crate::threaded`], [`crate::gossip`]) stop when the max-abs residual
///   of one synchronous update falls below it; because the update is a
///   `(1−a)`-contraction, the true L∞ distance to the fixed point is then
///   at most `tolerance · (1−a)/a`;
/// * the push engine ([`crate::push`]) certifies
///   `‖estimate − fixed point‖∞ ≤ tolerance` directly from its residual
///   mass.
///
/// Either way, two engines run at the same tolerance agree entrywise to
/// `O(tolerance)`, which is what the cross-engine tests assert.
///
/// [`tolerance`]: PprConfig::tolerance
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::PprConfig;
///
/// # fn main() -> Result<(), gdsearch_diffusion::DiffusionError> {
/// let cfg = PprConfig::new(0.5)?.with_tolerance(1e-6)?.with_max_iterations(500);
/// assert_eq!(cfg.alpha(), 0.5);
/// assert!(PprConfig::new(0.0).is_err()); // never teleporting never converges
/// assert!(cfg.with_tolerance(f32::NAN).is_err()); // tolerance must be finite
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PprConfig {
    alpha: f32,
    tolerance: f32,
    max_iterations: usize,
    normalization: Normalization,
}

impl PprConfig {
    /// Creates a configuration with the given teleport probability and
    /// defaults: tolerance `1e-6`, 1,000 max iterations, column-stochastic
    /// normalization.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless
    /// `0 < alpha <= 1`.
    pub fn new(alpha: f32) -> Result<Self, DiffusionError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "alpha must lie in (0, 1], got {alpha}"
            )));
        }
        Ok(PprConfig {
            alpha,
            tolerance: 1e-6,
            max_iterations: 1000,
            normalization: Normalization::ColumnStochastic,
        })
    }

    /// Sets the convergence tolerance (see the [type docs](PprConfig)
    /// for the exact semantics: an additive L∞ target on the fixed point).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless `tolerance` is
    /// positive and finite — a NaN or infinite tolerance would make every
    /// engine's convergence check vacuous or unsatisfiable.
    pub fn with_tolerance(mut self, tolerance: f32) -> Result<Self, DiffusionError> {
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "tolerance must be positive and finite, got {tolerance}"
            )));
        }
        self.tolerance = tolerance;
        Ok(self)
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the adjacency normalization.
    #[must_use]
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Teleport probability `a`.
    #[must_use]
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Convergence tolerance — an additive L∞ accuracy target on the fixed
    /// point; see the [type docs](PprConfig) for the per-engine reading.
    #[must_use]
    pub fn tolerance(&self) -> f32 {
        self.tolerance
    }

    /// Iteration budget.
    #[must_use]
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Adjacency normalization.
    #[must_use]
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Average random-walk length `1/a` — the paper's "effective diffusion
    /// radius".
    #[must_use]
    pub fn mean_walk_length(&self) -> f32 {
        1.0 / self.alpha
    }
}

impl Default for PprConfig {
    /// The paper's moderate setting: `a = 0.5`.
    fn default() -> Self {
        // Mirrors `new(0.5)` without the fallible path: 0.5 is statically
        // inside (0, 1], and `Default` must not be able to panic.
        PprConfig {
            alpha: 0.5,
            tolerance: 1e-6,
            max_iterations: 1000,
            normalization: Normalization::ColumnStochastic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_alpha_domain() {
        assert!(PprConfig::new(0.0).is_err());
        assert!(PprConfig::new(-0.3).is_err());
        assert!(PprConfig::new(1.5).is_err());
        assert!(PprConfig::new(f32::NAN).is_err());
        assert!(PprConfig::new(1.0).is_ok());
        assert!(PprConfig::new(0.001).is_ok());
    }

    #[test]
    fn validates_tolerance_domain() {
        let cfg = PprConfig::default();
        assert!(cfg.with_tolerance(f32::NAN).is_err());
        assert!(cfg.with_tolerance(f32::INFINITY).is_err());
        assert!(cfg.with_tolerance(f32::NEG_INFINITY).is_err());
        assert!(cfg.with_tolerance(0.0).is_err());
        assert!(cfg.with_tolerance(-1e-6).is_err());
        assert!(cfg.with_tolerance(1e-9).is_ok());
    }

    #[test]
    fn builder_chain() {
        let cfg = PprConfig::new(0.1)
            .unwrap()
            .with_tolerance(1e-4)
            .unwrap()
            .with_max_iterations(50)
            .with_normalization(Normalization::Symmetric);
        assert_eq!(cfg.tolerance(), 1e-4);
        assert_eq!(cfg.max_iterations(), 50);
        assert_eq!(cfg.normalization(), Normalization::Symmetric);
        assert!((cfg.mean_walk_length() - 10.0).abs() < 1e-5);
    }

    #[test]
    fn default_is_papers_moderate_alpha() {
        assert_eq!(PprConfig::default().alpha(), 0.5);
    }
}
