use gdsearch_embed::Embedding;
use gdsearch_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::DiffusionError;

/// A graph signal: one `dim`-dimensional value per node, stored row-major
/// (`N × dim`).
///
/// Rows are node embeddings; the diffusion engines treat the whole signal
/// as a dense matrix so vector dimensions diffuse independently (paper
/// §II-C: "graph filters operate independently on each vector dimension").
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::Signal;
/// use gdsearch_embed::Embedding;
///
/// # fn main() -> Result<(), gdsearch_diffusion::DiffusionError> {
/// let mut s = Signal::zeros(3, 2);
/// s.set_row(1, &Embedding::new(vec![1.0, 2.0]))?;
/// assert_eq!(s.row(1), &[1.0, 2.0]);
/// assert_eq!(s.row(0), &[0.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    num_nodes: usize,
    dim: usize,
    data: Vec<f32>,
}

impl Signal {
    /// The all-zero signal of shape `num_nodes × dim`.
    #[must_use]
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        Signal {
            num_nodes,
            dim,
            data: vec![0.0; num_nodes * dim],
        }
    }

    /// Builds a signal from one embedding per node.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] if rows disagree on
    /// dimensionality.
    pub fn from_rows(rows: &[Embedding]) -> Result<Self, DiffusionError> {
        let dim = rows.first().map(Embedding::dim).unwrap_or(0);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            if r.dim() != dim {
                return Err(DiffusionError::ShapeMismatch {
                    expected: (rows.len(), dim),
                    got: (i, r.dim()),
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Ok(Signal {
            num_nodes: rows.len(),
            dim,
            data,
        })
    }

    /// Builds a mostly-zero signal of shape `num_nodes × dim` with the given
    /// `(node, embedding)` rows set. Entries naming the same node
    /// *accumulate* (sum), consistent with the linearity of diffusion —
    /// `per_source` engines treat repeated sources the same way.
    ///
    /// This matches the experiments' sparse personalization: only nodes that
    /// host documents have non-zero rows.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] for wrong-dimension rows or
    /// out-of-range nodes.
    pub fn from_sparse_rows(
        num_nodes: usize,
        dim: usize,
        rows: &[(NodeId, Embedding)],
    ) -> Result<Self, DiffusionError> {
        let mut signal = Signal::zeros(num_nodes, dim);
        for (node, emb) in rows {
            if node.index() >= num_nodes || emb.dim() != dim {
                return Err(DiffusionError::ShapeMismatch {
                    expected: (num_nodes, dim),
                    got: (node.index(), emb.dim()),
                });
            }
            for (r, e) in signal.row_mut(node.index()).iter_mut().zip(emb.as_slice()) {
                *r += e;
            }
        }
        Ok(signal)
    }

    /// Number of nodes (rows).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Dimensionality of each node value (columns).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The row of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes`.
    #[inline]
    #[must_use]
    pub fn row(&self, u: usize) -> &[f32] {
        &self.data[u * self.dim..(u + 1) * self.dim]
    }

    /// Mutable row of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes`.
    #[inline]
    pub fn row_mut(&mut self, u: usize) -> &mut [f32] {
        &mut self.data[u * self.dim..(u + 1) * self.dim]
    }

    /// Copies `value` into node `u`'s row.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] if `u` is out of range or
    /// the value has the wrong dimension.
    pub fn set_row(&mut self, u: usize, value: &Embedding) -> Result<(), DiffusionError> {
        if u >= self.num_nodes || value.dim() != self.dim {
            return Err(DiffusionError::ShapeMismatch {
                expected: (self.num_nodes, self.dim),
                got: (u, value.dim()),
            });
        }
        self.row_mut(u).copy_from_slice(value.as_slice());
        Ok(())
    }

    /// Node `u`'s row as an owned [`Embedding`].
    ///
    /// # Panics
    ///
    /// Panics if `u >= num_nodes`.
    #[must_use]
    pub fn row_embedding(&self, u: usize) -> Embedding {
        Embedding::new(self.row(u).to_vec())
    }

    /// Flat row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Largest absolute componentwise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Signal) -> Result<f32, DiffusionError> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Frobenius (entrywise L2) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::ShapeMismatch`] if shapes differ.
    pub fn l2_diff(&self, other: &Signal) -> Result<f32, DiffusionError> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt())
    }

    /// Sum over nodes of each dimension: the total "mass" per column.
    /// Column-stochastic PPR preserves this for stochastic inputs.
    #[must_use]
    pub fn column_mass(&self) -> Vec<f32> {
        let mut mass = vec![0.0f32; self.dim];
        for u in 0..self.num_nodes {
            for (m, v) in mass.iter_mut().zip(self.row(u)) {
                *m += v;
            }
        }
        mass
    }

    fn check_same_shape(&self, other: &Signal) -> Result<(), DiffusionError> {
        if self.num_nodes != other.num_nodes || self.dim != other.dim {
            return Err(DiffusionError::ShapeMismatch {
                expected: (self.num_nodes, self.dim),
                got: (other.num_nodes, other.dim),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let s = Signal::zeros(4, 3);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.dim(), 3);
        assert!(s.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_and_access() {
        let s = Signal::from_rows(&[
            Embedding::new(vec![1.0, 2.0]),
            Embedding::new(vec![3.0, 4.0]),
        ])
        .unwrap();
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[3.0, 4.0]);
        assert_eq!(s.row_embedding(1).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(
            Signal::from_rows(&[Embedding::new(vec![1.0]), Embedding::new(vec![1.0, 2.0]),])
                .is_err()
        );
    }

    #[test]
    fn sparse_rows() {
        let s = Signal::from_sparse_rows(
            5,
            2,
            &[
                (NodeId::new(1), Embedding::new(vec![1.0, 1.0])),
                (NodeId::new(4), Embedding::new(vec![2.0, 0.0])),
            ],
        )
        .unwrap();
        assert_eq!(s.row(0), &[0.0, 0.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
        assert_eq!(s.row(4), &[2.0, 0.0]);
        assert!(Signal::from_sparse_rows(2, 2, &[(NodeId::new(5), Embedding::zeros(2))]).is_err());
    }

    #[test]
    fn sparse_rows_accumulate_duplicates() {
        let s = Signal::from_sparse_rows(
            3,
            2,
            &[
                (NodeId::new(1), Embedding::new(vec![1.0, 2.0])),
                (NodeId::new(1), Embedding::new(vec![0.5, -1.0])),
            ],
        )
        .unwrap();
        assert_eq!(s.row(1), &[1.5, 1.0]);
    }

    #[test]
    fn set_row_validates() {
        let mut s = Signal::zeros(2, 2);
        assert!(s.set_row(0, &Embedding::new(vec![1.0, 2.0])).is_ok());
        assert!(s.set_row(2, &Embedding::zeros(2)).is_err());
        assert!(s.set_row(0, &Embedding::zeros(3)).is_err());
    }

    #[test]
    fn diffs() {
        let a = Signal::from_rows(&[Embedding::new(vec![1.0, 0.0])]).unwrap();
        let b = Signal::from_rows(&[Embedding::new(vec![0.0, 2.0])]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 2.0).abs() < 1e-6);
        assert!((a.l2_diff(&b).unwrap() - 5.0f32.sqrt()).abs() < 1e-6);
        let c = Signal::zeros(2, 2);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn column_mass_sums_rows() {
        let s = Signal::from_rows(&[
            Embedding::new(vec![1.0, 2.0]),
            Embedding::new(vec![3.0, -1.0]),
        ])
        .unwrap();
        assert_eq!(s.column_mass(), vec![4.0, 1.0]);
    }
}
