//! Shared residual/convergence bookkeeping for the iterative engines.
//!
//! Every engine in this crate ([`crate::power`], [`crate::per_source`],
//! [`crate::gossip`], [`crate::threaded`], [`crate::push`]) tracks the same
//! three facts about its progress toward the PPR fixed point: how many
//! residual observations it has made, the most recent residual, and whether
//! that residual met the configured tolerance. [`Convergence`] centralizes
//! that bookkeeping so every engine reports budget exhaustion identically
//! (see [`PprConfig::tolerance`](crate::PprConfig::tolerance) for what the
//! tolerance means).

use crate::DiffusionError;

/// Progress of an iterative diffusion toward its fixed point.
///
/// `record` each residual observation (a power-iteration sweep, a gossip
/// certification, a push-phase residual bound); the struct keeps the
/// iteration count, the last residual, and the converged flag consistent.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::Convergence;
///
/// let mut conv = Convergence::new();
/// assert!(!conv.record(0.5, 1e-3)); // still above tolerance
/// assert!(conv.record(1e-4, 1e-3)); // converged
/// assert_eq!(conv.iters, 2);
/// assert!(conv.converged);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Residual observations recorded so far (sweeps, certifications,
    /// drain phases — whatever the engine's unit of progress is).
    pub iters: usize,
    /// Most recently recorded residual; `f32::INFINITY` before the first
    /// observation.
    pub residual: f32,
    /// Whether the most recent residual met the tolerance it was recorded
    /// against.
    pub converged: bool,
}

impl Convergence {
    /// Starts tracking: zero iterations, infinite residual, not converged.
    #[must_use]
    pub fn new() -> Self {
        Convergence {
            iters: 0,
            residual: f32::INFINITY,
            converged: false,
        }
    }

    /// Records one residual observation against `tolerance` and returns
    /// whether the engine may stop (`residual <= tolerance`).
    pub fn record(&mut self, residual: f32, tolerance: f32) -> bool {
        self.iters += 1;
        self.residual = residual;
        self.converged = residual <= tolerance;
        self.converged
    }

    /// The [`DiffusionError::NotConverged`] describing this state — for
    /// engines that turn budget exhaustion into an error.
    #[must_use]
    pub fn error(&self) -> DiffusionError {
        DiffusionError::NotConverged {
            iterations: self.iters,
            residual: self.residual,
        }
    }

    /// Returns `Ok(self)` when converged, [`DiffusionError::NotConverged`]
    /// otherwise — for engines whose callers require convergence.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::NotConverged`] with the recorded iteration
    /// count and residual when the tolerance was never met.
    pub fn require(self) -> Result<Self, DiffusionError> {
        if self.converged {
            Ok(self)
        } else {
            Err(self.error())
        }
    }
}

impl Default for Convergence {
    fn default() -> Self {
        Convergence::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unconverged_with_infinite_residual() {
        let conv = Convergence::new();
        assert_eq!(conv.iters, 0);
        assert!(conv.residual.is_infinite());
        assert!(!conv.converged);
        assert!(conv.require().is_err());
    }

    #[test]
    fn record_tracks_iters_and_convergence() {
        let mut conv = Convergence::new();
        assert!(!conv.record(1.0, 0.1));
        assert!(!conv.record(0.5, 0.1));
        assert!(conv.record(0.05, 0.1));
        assert_eq!(conv.iters, 3);
        assert_eq!(conv.residual, 0.05);
        assert!(conv.require().is_ok());
    }

    #[test]
    fn convergence_is_not_sticky() {
        // A residual that rises back above tolerance (asynchronous engines)
        // must clear the flag again.
        let mut conv = Convergence::new();
        assert!(conv.record(0.05, 0.1));
        assert!(!conv.record(0.2, 0.1));
        assert!(!conv.converged);
    }

    #[test]
    fn error_carries_state() {
        let mut conv = Convergence::new();
        conv.record(0.7, 0.1);
        match conv.error() {
            DiffusionError::NotConverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 1);
                assert_eq!(residual, 0.7);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
