//! Per-source decomposition of PPR diffusion.
//!
//! Diffusion is linear (Eq. 4: `E = H E0`), so when only a few nodes carry
//! non-zero personalization — the common case in the paper's experiments,
//! where `M` documents land on at most `M` hosts out of 4,039 nodes — it is
//! cheaper to compute one *scalar* PPR column per source,
//!
//! ```text
//! h_s = a (I − (1−a) A)^{-1} δ_s            (one vector per source s)
//! E   = Σ_s h_s ⊗ e0_s                      (rank-1 accumulation)
//! ```
//!
//! than to power-iterate the dense `N × dim` signal. The flop-count
//! crossover is at `|sources| ≈ dim`, the measured wall-clock crossover
//! near `dim / 4` (dense rows are more cache-friendly); [`auto_diffuse`]
//! picks the cheaper engine.

use gdsearch_embed::Embedding;
use gdsearch_graph::sparse::{transition_matrix, CsrMatrix};
use gdsearch_graph::{Graph, NodeId};

use crate::convergence::Convergence;
use crate::{power, push, sharded, workpool, DiffusionError, PprConfig, Signal};

/// Computes the single-source PPR vector `h_s`: entry `u` is the weight
/// with which source `s`'s personalization reaches node `u`.
///
/// # Errors
///
/// Returns [`DiffusionError::Graph`] if `source` is out of range and
/// [`DiffusionError::NotConverged`] if the iteration budget is exhausted.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{per_source, PprConfig};
/// use gdsearch_graph::{generators, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(5);
/// let h = per_source::ppr_vector(&g, NodeId::new(0), &PprConfig::new(0.5)?)?;
/// // Weight decays with distance from the source.
/// assert!(h[0] > h[1] && h[1] > h[2]);
/// # Ok(())
/// # }
/// ```
pub fn ppr_vector(
    graph: &Graph,
    source: NodeId,
    config: &PprConfig,
) -> Result<Vec<f32>, DiffusionError> {
    graph.check_node(source)?;
    let matrix = transition_matrix(graph, config.normalization());
    ppr_vector_with_matrix(&matrix, source, config)
}

/// [`ppr_vector`] with a prebuilt transition matrix.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `source` is out of range
/// and [`DiffusionError::NotConverged`] on budget exhaustion.
pub fn ppr_vector_with_matrix(
    matrix: &CsrMatrix,
    source: NodeId,
    config: &PprConfig,
) -> Result<Vec<f32>, DiffusionError> {
    let n = matrix.n_rows();
    if source.index() >= n {
        return Err(DiffusionError::invalid_parameter(format!(
            "source {source} out of range for {n} nodes"
        )));
    }
    let alpha = config.alpha();
    let mut current = vec![0.0f32; n];
    current[source.index()] = 1.0;
    let mut next = vec![0.0f32; n];
    let mut conv = Convergence::new();
    while conv.iters < config.max_iterations() {
        matrix.mul_vec_into(&current, &mut next);
        let mut max_delta = 0.0f32;
        for (i, nx) in next.iter_mut().enumerate() {
            *nx *= 1.0 - alpha;
            if i == source.index() {
                *nx += alpha;
            }
            let delta = (*nx - current[i]).abs();
            if delta > max_delta {
                max_delta = delta;
            }
        }
        std::mem::swap(&mut current, &mut next);
        if conv.record(max_delta, config.tolerance()) {
            return Ok(current);
        }
    }
    Err(conv.error())
}

/// Diffuses a sparse personalization — `(source node, embedding)` pairs —
/// by per-source decomposition, with the per-source columns computed over
/// [`crate::workpool`] on all available cores.
///
/// Equivalent (to tolerance) to dense power iteration on the corresponding
/// sparse [`Signal`], but costs `O(|sources| · iters · E)` scalar work
/// instead of `O(iters · E · dim)`. The output is identical for every
/// worker count (see [`diffuse_sparse_threaded`]), so defaulting to the
/// machine's parallelism is safe.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] for ragged embeddings or
/// out-of-range sources, [`DiffusionError::NotConverged`] on budget
/// exhaustion.
pub fn diffuse_sparse(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &PprConfig,
) -> Result<Signal, DiffusionError> {
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(sources.len().max(1));
    diffuse_sparse_threaded(graph, dim, sources, config, threads)
}

/// [`diffuse_sparse`] with an explicit worker count.
///
/// Each column `h_s` is a pure function of `(matrix, s, config)`, columns
/// are computed in waves of `threads` over the order-preserving
/// [`crate::workpool::map_batched`], and the rank-1 accumulation happens on
/// the calling thread in source order — so the output is **bit-for-bit
/// identical for every thread count** (and identical to the historical
/// sequential loop). Waves bound peak memory at `threads` dense columns.
///
/// # Errors
///
/// As [`diffuse_sparse`].
pub fn diffuse_sparse_threaded(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &PprConfig,
    threads: usize,
) -> Result<Signal, DiffusionError> {
    let n = graph.num_nodes();
    for (node, emb) in sources {
        if emb.dim() != dim || node.index() >= n {
            return Err(DiffusionError::ShapeMismatch {
                expected: (n, dim),
                got: (node.index(), emb.dim()),
            });
        }
    }
    let threads = threads.max(1);
    let matrix = transition_matrix(graph, config.normalization());
    let mut out = Signal::zeros(n, dim);
    for wave in sources.chunks(threads) {
        let columns = workpool::map_batched(wave, threads, |(node, _)| {
            ppr_vector_with_matrix(&matrix, *node, config)
        });
        for ((_, emb), h) in wave.iter().zip(columns) {
            let h = h?;
            for (u, weight) in h.iter().enumerate() {
                if *weight == 0.0 {
                    continue;
                }
                let row = out.row_mut(u);
                for (r, e) in row.iter_mut().zip(emb.as_slice()) {
                    *r += weight * e;
                }
            }
        }
    }
    Ok(out)
}

/// Picks the cheapest engine for a sparse personalization.
///
/// The crossover model has two axes:
///
/// * **few vs. many sources** — the flop-count crossover between
///   per-source decomposition and dense power iteration sits at
///   `|sources| ≈ dim`, but the dense engine's contiguous row operations
///   are ≈ 4× more efficient per flop than per-source sparse passes; the
///   `engine_crossover` Criterion bench measures the break-even near
///   `dim / 4`;
/// * **sweep vs. push** — within the few-source regime, scalar power
///   iteration still pays `O(iters · E)` per source while forward push
///   ([`crate::push`]) pays only for the pushed mass. Push's queue
///   bookkeeping has a constant overhead, so it is selected when the graph
///   is large (`N ≥` [`push::AUTO_PUSH_MIN_NODES`]) *and* the
///   personalization is genuinely sparse (`|sources| · 16 ≤ N`); the
///   batched driver then uses all available cores (the result is
///   identical for every thread count);
/// * **monolithic vs. sharded** — at
///   [`sharded::AUTO_SHARD_MIN_NODES`] and above, both regimes route
///   through the [`crate::sharded`] engines instead, so adjacency and
///   signal state are partitioned by node range rather than held as one
///   block. The sharded engines are bit-for-bit identical for every
///   `(shards, threads)` combination (and the sharded sweep is identical
///   to [`power::diffuse`] itself), so the machine-dependent defaults
///   cannot leak into the output.
///
/// # Errors
///
/// As [`diffuse_sparse`] / [`push::diffuse_sparse`] /
/// [`sharded::diffuse_sparse`] / [`power::diffuse`].
pub fn auto_diffuse(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &PprConfig,
) -> Result<Signal, DiffusionError> {
    let n = graph.num_nodes();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if n >= sharded::AUTO_SHARD_MIN_NODES {
        // At this scale the monolithic engines' single adjacency array and
        // dense scratch become the bottleneck: partition the state. At
        // least two shards so the partition is real even on one core.
        let scfg = sharded::ShardedConfig::new(*config)
            .with_shards(threads.max(2))?
            .with_threads(threads)?;
        // Same sparse/dense crossover as below: per-column push only in
        // the genuinely sparse regime, one partitioned sweep otherwise.
        if sources.len() < dim / 4 {
            return sharded::diffuse_sparse(graph, dim, sources, &scfg);
        }
        let e0 = Signal::from_sparse_rows(n, dim, sources)?;
        let out = sharded::diffuse(graph, &e0, &scfg)?;
        return out_converged(out);
    }
    if sources.len() < dim / 4 {
        if n >= push::AUTO_PUSH_MIN_NODES && sources.len().saturating_mul(16) <= n {
            let threads = threads.min(sources.len().max(1));
            let push_cfg = push::PushConfig::new(*config).with_threads(threads)?;
            return push::diffuse_sparse(graph, dim, sources, &push_cfg);
        }
        diffuse_sparse(graph, dim, sources, config)
    } else {
        let e0 = Signal::from_sparse_rows(n, dim, sources)?;
        let out = power::diffuse(graph, &e0, config)?;
        out_converged(out)
    }
}

/// Unwraps a [`power::DiffusionResult`], turning budget exhaustion into
/// [`DiffusionError::NotConverged`].
fn out_converged(out: power::DiffusionResult) -> Result<Signal, DiffusionError> {
    if !out.converged {
        return Err(DiffusionError::NotConverged {
            iterations: out.iterations,
            residual: out.residual,
        });
    }
    Ok(out.signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;
    use rand::Rng;
    use rand::SeedableRng;

    fn seeded(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ppr_vector_sums_to_one() {
        let g = generators::social_circles_like_scaled(60, &mut seeded(1)).unwrap();
        let cfg = PprConfig::new(0.3).unwrap().with_tolerance(1e-8).unwrap();
        let h = ppr_vector(&g, NodeId::new(4), &cfg).unwrap();
        let total: f32 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "column mass {total}");
        assert!(h.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn ppr_vector_peaks_at_source() {
        let g = generators::grid(5, 5);
        let cfg = PprConfig::new(0.5).unwrap();
        let h = ppr_vector(&g, NodeId::new(12), &cfg).unwrap();
        let max_idx = h
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 12);
    }

    #[test]
    fn sparse_matches_dense_power() {
        let g = generators::social_circles_like_scaled(70, &mut seeded(2)).unwrap();
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-8).unwrap();
        let dim = 5;
        let mut rng = seeded(3);
        let sources: Vec<(NodeId, Embedding)> = (0..4)
            .map(|i| {
                (
                    NodeId::new(i * 13),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let sparse = diffuse_sparse(&g, dim, &sources, &cfg).unwrap();
        let e0 = Signal::from_sparse_rows(70, dim, &sources).unwrap();
        let dense = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        assert!(
            sparse.max_abs_diff(&dense).unwrap() < 1e-4,
            "engines disagree"
        );
    }

    #[test]
    fn auto_picks_both_paths_consistently() {
        let g = generators::grid(6, 6);
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-8).unwrap();
        let dim = 3;
        let few: Vec<(NodeId, Embedding)> =
            vec![(NodeId::new(0), Embedding::new(vec![1.0, 0.0, 0.0]))];
        let many: Vec<(NodeId, Embedding)> = (0..10)
            .map(|i| (NodeId::new(i), Embedding::new(vec![0.1, 0.2, 0.3])))
            .collect();
        // few < dim -> per-source; many >= dim -> dense. Both must agree
        // with explicit engines.
        let a = auto_diffuse(&g, dim, &few, &cfg).unwrap();
        let b = diffuse_sparse(&g, dim, &few, &cfg).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
        let a = auto_diffuse(&g, dim, &many, &cfg).unwrap();
        let e0 = Signal::from_sparse_rows(36, dim, &many).unwrap();
        let b = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn auto_picks_push_on_large_sparse_graphs() {
        // 70×70 grid: 4,900 nodes ≥ AUTO_PUSH_MIN_NODES, one source with
        // dim 8 → |sources| < dim/4 and |sources|·16 ≤ N, so Auto routes
        // through the push engine; the result must match the sweep engine.
        let g = generators::grid(70, 70);
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-6).unwrap();
        let dim = 8;
        let sources = vec![(
            NodeId::new(17),
            Embedding::new((0..dim).map(|k| 1.0 + k as f32).collect()),
        )];
        let auto = auto_diffuse(&g, dim, &sources, &cfg).unwrap();
        let sweep = diffuse_sparse(&g, dim, &sources, &cfg).unwrap();
        assert!(auto.max_abs_diff(&sweep).unwrap() < 1e-4);
    }

    #[test]
    fn threaded_columns_are_bitwise_identical() {
        let g = generators::social_circles_like_scaled(80, &mut seeded(11)).unwrap();
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-7).unwrap();
        let dim = 3;
        let mut rng = seeded(12);
        let sources: Vec<(NodeId, Embedding)> = (0..6)
            .map(|_| {
                (
                    NodeId::new(rng.random_range(0..80)),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let reference = diffuse_sparse_threaded(&g, dim, &sources, &cfg, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let out = diffuse_sparse_threaded(&g, dim, &sources, &cfg, threads).unwrap();
            assert_eq!(out, reference, "{threads} workers drifted bitwise");
        }
        // The parallel default is the same function.
        assert_eq!(diffuse_sparse(&g, dim, &sources, &cfg).unwrap(), reference);
    }

    #[test]
    fn auto_routes_through_sharded_engines_at_scale() {
        // At AUTO_SHARD_MIN_NODES the Auto policy must hand sparse
        // personalizations to the sharded push — whose output is bitwise
        // independent of the (machine-dependent) shard/thread defaults, so
        // it must equal an explicitly configured sharded run.
        let n = sharded::AUTO_SHARD_MIN_NODES as u32;
        let g = generators::ring(n).unwrap();
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap();
        // Sparse regime (1 source < dim/4): the sharded push path.
        let dim = 8;
        let sources = vec![(
            NodeId::new(7),
            Embedding::new((0..dim).map(|k| 1.0 + k as f32).collect()),
        )];
        let auto = auto_diffuse(&g, dim, &sources, &cfg).unwrap();
        let scfg = sharded::ShardedConfig::new(cfg).with_shards(3).unwrap();
        let explicit = sharded::diffuse_sparse(&g, dim, &sources, &scfg).unwrap();
        assert_eq!(auto, explicit);
        // Dense regime (1 source >= dim/4 for dim 2): the partitioned
        // sweep, which is bitwise identical to the monolithic one.
        let sources = vec![(NodeId::new(7), Embedding::new(vec![1.0, 2.0]))];
        let auto = auto_diffuse(&g, 2, &sources, &cfg).unwrap();
        let e0 = Signal::from_sparse_rows(n as usize, 2, &sources).unwrap();
        let dense = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        assert_eq!(auto, dense);
    }

    #[test]
    fn rejects_out_of_range_source() {
        let g = generators::ring(5).unwrap();
        let cfg = PprConfig::default();
        assert!(ppr_vector(&g, NodeId::new(9), &cfg).is_err());
        assert!(diffuse_sparse(&g, 2, &[(NodeId::new(9), Embedding::zeros(2))], &cfg).is_err());
    }

    #[test]
    fn rejects_ragged_embedding() {
        let g = generators::ring(5).unwrap();
        assert!(diffuse_sparse(
            &g,
            2,
            &[(NodeId::new(0), Embedding::zeros(3))],
            &PprConfig::default()
        )
        .is_err());
    }

    #[test]
    fn empty_sources_give_zero_signal() {
        let g = generators::ring(5).unwrap();
        let out = diffuse_sparse(&g, 4, &[], &PprConfig::default()).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn budget_exhaustion_errors() {
        let g = generators::ring(30).unwrap();
        let cfg = PprConfig::new(0.01)
            .unwrap()
            .with_tolerance(1e-12)
            .unwrap()
            .with_max_iterations(2);
        assert!(matches!(
            ppr_vector(&g, NodeId::new(0), &cfg),
            Err(DiffusionError::NotConverged { .. })
        ));
    }
}
