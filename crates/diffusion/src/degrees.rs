//! Degree-derived scalars and the certified push residual bound, shared by
//! the FIFO push engine ([`crate::push`]) and the sharded round-scheduled
//! push ([`crate::sharded`]).
//!
//! The L∞ bound derivations live in the [`crate::push`] module docs; this
//! module keeps the *formulas* in exactly one place so the two engines
//! cannot drift apart — the bound is what certifies that push results are
//! interchangeable with the sweep engines at
//! [`PprConfig::tolerance`](crate::PprConfig::tolerance).

use gdsearch_graph::sparse::Normalization;
use gdsearch_graph::{Graph, ShardedGraph};

/// Per-node degree scalars plus the normalization they are read under.
///
/// A multi-machine deployment would hold only the local + halo entries per
/// shard; in process these are flat `O(N)` arrays (the sharding work
/// targets the `O(E)` adjacency and `O(N·dim)` signal state).
pub(crate) struct DegreeTables {
    pub norm: Normalization,
    /// `1/deg(u)` (0 for isolated nodes; only used along edges).
    pub inv_deg: Vec<f32>,
    /// `1/sqrt(deg(u))` (1 for isolated nodes, the safe bound convention).
    pub inv_sqrt_deg: Vec<f32>,
    /// `max(deg(u), 1)` — the frontier threshold scale.
    pub deg_scale: Vec<f32>,
    /// `max(max_u deg(u), 1)`.
    pub max_deg: f32,
}

impl DegreeTables {
    /// Builds the tables from one degree per node, in node order.
    fn new(norm: Normalization, degrees: impl Iterator<Item = usize>) -> Self {
        let (lo, _) = degrees.size_hint();
        let mut inv_deg = Vec::with_capacity(lo);
        let mut inv_sqrt_deg = Vec::with_capacity(lo);
        let mut deg_scale = Vec::with_capacity(lo);
        let mut max_deg = 1usize;
        for deg in degrees {
            if deg > 0 {
                inv_deg.push(1.0 / deg as f32);
                inv_sqrt_deg.push(1.0 / (deg as f32).sqrt());
                deg_scale.push(deg as f32);
                max_deg = max_deg.max(deg);
            } else {
                inv_deg.push(0.0);
                inv_sqrt_deg.push(1.0);
                deg_scale.push(1.0);
            }
        }
        DegreeTables {
            norm,
            inv_deg,
            inv_sqrt_deg,
            deg_scale,
            max_deg: max_deg as f32,
        }
    }

    /// Tables of a monolithic graph.
    pub fn from_graph(graph: &Graph, norm: Normalization) -> Self {
        Self::new(norm, graph.node_ids().map(|u| graph.degree(u)))
    }

    /// Tables of a partitioned graph (shards ascending = node order).
    pub fn from_sharded(sharded: &ShardedGraph, norm: Normalization) -> Self {
        Self::new(
            norm,
            sharded
                .shards()
                .iter()
                .flat_map(|s| (0..s.num_local_nodes()).map(move |l| s.local_degree(l))),
        )
    }

    /// Rigorous bound on `‖M r‖∞`, the L∞ distance between a push
    /// estimate and the PPR fixed point, over residuals given as
    /// `(global node index, value)` in ascending node order (derivations
    /// in the [`crate::push`] module docs).
    ///
    /// Taking an iterator lets the flat engine pass its one residual array
    /// and the sharded engine its concatenated per-shard blocks — same
    /// accumulation order, same float operations, one formula.
    pub fn residual_bound(&self, residuals: impl Iterator<Item = (usize, f32)>) -> f32 {
        match self.norm {
            Normalization::ColumnStochastic => {
                let mut sum = 0.0f32;
                let mut theta = 0.0f32;
                for (u, r) in residuals {
                    sum += r;
                    theta = theta.max(r / self.deg_scale[u]);
                }
                sum.min(self.max_deg * theta)
            }
            Normalization::RowStochastic => residuals.fold(0.0f32, |m, (_, r)| m.max(r)),
            Normalization::Symmetric => {
                let scaled_max =
                    residuals.fold(0.0f32, |m, (u, r)| m.max(r * self.inv_sqrt_deg[u]));
                self.max_deg.sqrt() * scaled_max
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;
    use rand::SeedableRng;

    #[test]
    fn flat_and_sharded_constructions_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = generators::social_circles_like_scaled(60, &mut rng).unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let flat = DegreeTables::from_graph(&g, norm);
            let sharded = DegreeTables::from_sharded(&sg, norm);
            assert_eq!(flat.inv_deg, sharded.inv_deg);
            assert_eq!(flat.inv_sqrt_deg, sharded.inv_sqrt_deg);
            assert_eq!(flat.deg_scale, sharded.deg_scale);
            assert_eq!(flat.max_deg, sharded.max_deg);
        }
    }

    #[test]
    fn bound_is_zero_for_zero_residuals_and_positive_otherwise() {
        let g = generators::grid(3, 3);
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let t = DegreeTables::from_graph(&g, norm);
            let zero = vec![0.0f32; 9];
            assert_eq!(t.residual_bound(zero.iter().copied().enumerate()), 0.0);
            let mut one = zero.clone();
            one[4] = 0.25;
            assert!(t.residual_bound(one.iter().copied().enumerate()) > 0.0);
        }
    }
}
