//! Exact dense evaluation of the PPR filter by Gaussian elimination.
//!
//! Solves `(I − (1−a) A) E = a E0` directly. Cubic in the node count, so
//! this is a *validation oracle* for small graphs: every iterative engine
//! is tested against it.

use gdsearch_graph::sparse::transition_matrix;
use gdsearch_graph::Graph;

use crate::{DiffusionError, PprConfig, Signal};

/// Practical node-count ceiling: beyond this the `O(n³)` solve is slower
/// than any iterative engine by orders of magnitude.
pub const RECOMMENDED_MAX_NODES: usize = 512;

/// Computes the exact PPR diffusion `E = a (I − (1−a) A)^{-1} E0`.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if `e0` and `graph` disagree,
/// and [`DiffusionError::InvalidParameter`] if the system is numerically
/// singular (cannot happen for `a ∈ (0,1]` with a stochastic `A`, but can
/// for hand-built matrices).
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{exact, power, PprConfig, Signal};
/// use gdsearch_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::grid(3, 3);
/// let mut e0 = Signal::zeros(9, 1);
/// e0.row_mut(4)[0] = 1.0;
/// let cfg = PprConfig::new(0.3)?.with_tolerance(1e-7)?;
/// let truth = exact::diffuse(&g, &e0, &cfg)?;
/// let approx = power::diffuse(&g, &e0, &cfg)?.signal;
/// assert!(truth.max_abs_diff(&approx)? < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn diffuse(graph: &Graph, e0: &Signal, config: &PprConfig) -> Result<Signal, DiffusionError> {
    let n = graph.num_nodes();
    if e0.num_nodes() != n {
        return Err(DiffusionError::ShapeMismatch {
            expected: (n, e0.dim()),
            got: (e0.num_nodes(), e0.dim()),
        });
    }
    let dim = e0.dim();
    if n == 0 || dim == 0 {
        return Ok(Signal::zeros(n, dim));
    }
    let alpha = config.alpha() as f64;
    let a = transition_matrix(graph, config.normalization());

    // Dense system M = I - (1 - a) A.
    let mut m = vec![0.0f64; n * n];
    for r in 0..n {
        m[r * n + r] = 1.0;
        for (c, v) in a.row(r) {
            m[r * n + c as usize] -= (1.0 - alpha) * v as f64;
        }
    }
    // Right-hand side B = a * E0 (n × dim), solved simultaneously.
    let mut b = vec![0.0f64; n * dim];
    for (i, v) in e0.as_slice().iter().enumerate() {
        b[i] = alpha * *v as f64;
    }

    // Gaussian elimination with partial pivoting on [M | B].
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| m[r1 * n + col].abs().total_cmp(&m[r2 * n + col].abs()))
            .expect("non-empty range");
        if m[pivot_row * n + col].abs() < 1e-12 {
            return Err(DiffusionError::invalid_parameter(
                "singular diffusion system",
            ));
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            for k in 0..dim {
                b.swap(col * dim + k, pivot_row * dim + k);
            }
        }
        let pivot = m[col * n + col];
        for r in (col + 1)..n {
            let factor = m[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[r * n + k] -= factor * m[col * n + k];
            }
            for k in 0..dim {
                b[r * dim + k] -= factor * b[col * dim + k];
            }
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let pivot = m[col * n + col];
        for k in 0..dim {
            let mut acc = b[col * dim + k];
            for j in (col + 1)..n {
                acc -= m[col * n + j] * b[j * dim + k];
            }
            b[col * dim + k] = acc / pivot;
        }
    }

    let mut out = Signal::zeros(n, dim);
    for (o, v) in out.as_mut_slice().iter_mut().zip(&b) {
        *o = *v as f32;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power;
    use gdsearch_graph::generators;
    use gdsearch_graph::sparse::Normalization;

    fn one_hot(n: usize, u: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(u)[0] = 1.0;
        s
    }

    #[test]
    fn matches_power_iteration_on_small_graphs() {
        let mut rng = seeded(1);
        for alpha in [0.1f32, 0.5, 0.9] {
            let g = generators::social_circles_like_scaled(40, &mut rng).unwrap();
            let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-8).unwrap();
            let e0 = one_hot(40, 7);
            let truth = diffuse(&g, &e0, &cfg).unwrap();
            let approx = power::diffuse(&g, &e0, &cfg).unwrap().signal;
            assert!(truth.max_abs_diff(&approx).unwrap() < 1e-5, "alpha {alpha}");
        }
    }

    #[test]
    fn matches_power_under_all_normalizations() {
        let g = generators::grid(4, 4);
        let e0 = one_hot(16, 3);
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let cfg = PprConfig::new(0.4)
                .unwrap()
                .with_normalization(norm)
                .with_tolerance(1e-8)
                .unwrap();
            let truth = diffuse(&g, &e0, &cfg).unwrap();
            let approx = power::diffuse(&g, &e0, &cfg).unwrap().signal;
            assert!(truth.max_abs_diff(&approx).unwrap() < 1e-5, "{norm:?}");
        }
    }

    #[test]
    fn closed_form_on_two_node_graph() {
        // K2 with column-stochastic A = [[0,1],[1,0]]; e0 = δ0.
        // Fixed point: e0' = a + (1-a) e1', e1' = (1-a) e0'.
        // => e0' = a / (1 - (1-a)^2) = a / (a(2-a)) = 1/(2-a)
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let alpha = 0.5f64;
        let cfg = PprConfig::new(alpha as f32).unwrap();
        let out = diffuse(&g, &one_hot(2, 0), &cfg).unwrap();
        let expected0 = 1.0 / (2.0 - alpha);
        let expected1 = (1.0 - alpha) / (2.0 - alpha);
        assert!((out.row(0)[0] as f64 - expected0).abs() < 1e-6);
        assert!((out.row(1)[0] as f64 - expected1).abs() < 1e-6);
    }

    #[test]
    fn multi_dim_signals_solve_together() {
        let g = generators::ring(12).unwrap();
        let cfg = PprConfig::new(0.3).unwrap().with_tolerance(1e-8).unwrap();
        let mut e0 = Signal::zeros(12, 3);
        e0.row_mut(0).copy_from_slice(&[1.0, 0.0, 2.0]);
        e0.row_mut(6).copy_from_slice(&[0.0, 1.0, -1.0]);
        let truth = diffuse(&g, &e0, &cfg).unwrap();
        let approx = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        assert!(truth.max_abs_diff(&approx).unwrap() < 1e-5);
    }

    #[test]
    fn empty_graph_and_zero_dim() {
        let g = Graph::empty(0);
        let out = diffuse(&g, &Signal::zeros(0, 4), &PprConfig::default()).unwrap();
        assert_eq!(out.num_nodes(), 0);
        let g = generators::ring(3).unwrap();
        let out = diffuse(&g, &Signal::zeros(3, 0), &PprConfig::default()).unwrap();
        assert_eq!(out.dim(), 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = generators::ring(4).unwrap();
        assert!(diffuse(&g, &Signal::zeros(5, 1), &PprConfig::default()).is_err());
    }

    use gdsearch_graph::Graph;

    fn seeded(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
