//! Graph-signal-processing substrate for the `gdsearch` stack: graph
//! filters and the diffusion engines that evaluate them.
//!
//! The reproduced paper (Giatsoglou et al., ICDCS 2022, §IV-B) diffuses node
//! personalization vectors through the P2P graph with the Personalized
//! PageRank (PPR) filter
//!
//! ```text
//! E = a (I − (1−a) A)^{-1} E0,
//! ```
//!
//! evaluated with the iterative scheme `E(t) = (1−a) A E(t−1) + a E0`
//! (Eq. 7), which decentralizes into asynchronous pairwise exchanges
//! (Krasanakis et al., "p2pGNN", IEEE Access 2022).
//!
//! Several engines compute the same fixed point:
//!
//! * [`power`] — synchronous power iteration over the dense N×d signal;
//! * [`exact`] — dense linear solve (small graphs; the validation oracle);
//! * [`per_source`] — one scalar PPR vector per *source* node, rank-1
//!   accumulated; asymptotically cheaper when few nodes hold documents;
//! * [`gossip`] — deterministic simulated *asynchronous* engine, the
//!   decentralized protocol of the paper;
//! * [`threaded`] — the same asynchronous protocol on real threads
//!   (crossbeam), demonstrating convergence under true concurrency;
//! * [`push`] — forward-push with residual queues (PowerWalk,
//!   arXiv:1608.06054): work proportional to the pushed mass instead of
//!   `O(iters · E)`, certified to the same L∞ tolerance, batched across
//!   sources on a [`workpool`] of scoped threads with bit-for-bit
//!   thread-count determinism;
//! * [`sharded`] — the power sweep and a round-scheduled forward push on
//!   *partitioned* state (one
//!   [`ShardedGraph`](gdsearch_graph::ShardedGraph) node range per shard,
//!   only halo columns / cross-shard residual mass exchanged between
//!   steps), bit-for-bit identical for every `(shards, threads)`
//!   combination — the in-process rehearsal of a multi-machine deployment.
//!   Boundary movement is abstracted behind [`exchange::ShardExchange`],
//!   so the same canonical schedule runs over shared memory
//!   ([`exchange::InProcessExchange`]) or over simulated transport links
//!   (the `gdsearch-dist` crate) with identical results.
//!
//! All engines interpret [`PprConfig::tolerance`] the same way — an
//! additive L∞ accuracy target on the fixed point; the normative statement
//! lives on [`PprConfig`]. Shared residual bookkeeping lives in
//! [`Convergence`].
//!
//! Heat-kernel and arbitrary polynomial filters ([`filter`]) cover the
//! "graph filters such as PPR" generality of §II-C.
//!
//! # Example
//!
//! ```
//! use gdsearch_diffusion::{power, PprConfig, Signal};
//! use gdsearch_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::ring(8)?;
//! // One-hot signal at node 0, diffused around the ring.
//! let mut e0 = Signal::zeros(8, 1);
//! e0.row_mut(0)[0] = 1.0;
//! let result = power::diffuse(&g, &e0, &PprConfig::new(0.5)?)?;
//! assert!(result.converged);
//! // Mass decays with distance from the source.
//! assert!(result.signal.row(1)[0] > result.signal.row(4)[0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod convergence;
mod degrees;
mod error;
pub mod exact;
pub mod exchange;
pub mod filter;
pub mod gossip;
pub mod per_source;
pub mod power;
pub mod push;
pub mod sharded;
mod signal;
pub mod threaded;
pub mod workpool;

pub use config::PprConfig;
pub use convergence::Convergence;
pub use error::DiffusionError;
pub use signal::Signal;
