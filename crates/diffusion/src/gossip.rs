//! Deterministic simulation of the *asynchronous decentralized* diffusion
//! protocol (paper §IV-B, following Krasanakis et al., "p2pGNN").
//!
//! Every node holds its current embedding estimate and the last estimate
//! *received* from each neighbor. Nodes activate at random times (Poisson
//! process); on activation a node recomputes
//!
//! ```text
//! e_u ← a e0_u + (1−a) Σ_v A[u][v] ê_v
//! ```
//!
//! from its stored neighbor estimates and pushes the new value to its
//! neighbors, whose stored copies update after a (possibly random) delivery
//! delay. With update intervals that are "not arbitrarily long" the
//! estimates converge to the synchronous fixed point — the property this
//! module's tests verify against [`crate::power`].
//!
//! The simulation is fully deterministic under a seeded RNG, which the
//! experiments rely on for reproducibility.

use std::collections::BinaryHeap;

use gdsearch_graph::sparse::transition_weight;
use gdsearch_graph::{Graph, NodeId};
use rand::Rng;

use crate::convergence::Convergence;
use crate::{DiffusionError, PprConfig, Signal};

/// Configuration of the asynchronous gossip engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// PPR parameters (teleport probability, tolerance, normalization).
    /// `max_iterations` is interpreted as the *per-node* activation budget.
    pub ppr: PprConfig,
    /// Mean message-delivery delay, in units of the mean activation
    /// interval (1.0). `0.0` delivers instantly.
    pub mean_delay: f64,
}

impl GossipConfig {
    /// Creates a gossip configuration with instant delivery.
    #[must_use]
    pub fn new(ppr: PprConfig) -> Self {
        GossipConfig {
            ppr,
            mean_delay: 0.0,
        }
    }

    /// Sets the mean message-delivery delay.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] for negative or
    /// non-finite delays.
    pub fn with_mean_delay(mut self, mean_delay: f64) -> Result<Self, DiffusionError> {
        if !mean_delay.is_finite() || mean_delay < 0.0 {
            return Err(DiffusionError::invalid_parameter(
                "mean_delay must be non-negative and finite",
            ));
        }
        self.mean_delay = mean_delay;
        Ok(self)
    }
}

/// Outcome of an asynchronous gossip diffusion.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipResult {
    /// Final estimates, one row per node.
    pub signal: Signal,
    /// Total node activations performed.
    pub updates: usize,
    /// Virtual time at termination.
    pub virtual_time: f64,
    /// Whether the convergence window was satisfied within the budget.
    pub converged: bool,
    /// Last certified *global* synchronous residual (`f32::INFINITY` if the
    /// certification never ran before the budget was exhausted).
    pub residual: f32,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// Node activation: recompute the node's estimate and push it out.
    Activate(u32),
    /// Delivery of a previously pushed estimate `value` of node `from` to
    /// node `to`.
    Deliver { to: u32, from: u32, value: Vec<f32> },
}

/// Queue entry ordered by `(time, seq)` — reversed so `BinaryHeap` pops the
/// earliest event first. The payload does not participate in ordering.
#[derive(Debug, Clone, PartialEq)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    event: Event,
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Runs the asynchronous gossip diffusion to convergence.
///
/// Convergence requires, in order: every node activated at least once,
/// `2 * num_nodes` consecutive quiet events (activations or deliveries
/// changing their estimate by less than the configured tolerance), no
/// pending delivery that would still change a stored estimate, and
/// finally a certification that the *global* synchronous residual of the
/// current estimates is within tolerance — so a declared convergence
/// always means the estimates match the synchronous engines' fixed point.
/// The per-node activation budget is `config.ppr.max_iterations()`;
/// exhausting it reports `converged = false`.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if `e0` and `graph` disagree.
/// Budget exhaustion is reported through `converged = false`, not an error,
/// so callers can inspect partial results.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::gossip::{self, GossipConfig};
/// use gdsearch_diffusion::{power, PprConfig, Signal};
/// use gdsearch_graph::generators;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::ring(12)?;
/// let mut e0 = Signal::zeros(12, 1);
/// e0.row_mut(0)[0] = 1.0;
/// let cfg = PprConfig::new(0.5)?.with_tolerance(1e-6)?;
/// let sync = power::diffuse(&g, &e0, &cfg)?.signal;
/// let out = gossip::diffuse(&g, &e0, &GossipConfig::new(cfg), &mut StdRng::seed_from_u64(7))?;
/// assert!(out.converged);
/// assert!(out.signal.max_abs_diff(&sync)? < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn diffuse<R: Rng + ?Sized>(
    graph: &Graph,
    e0: &Signal,
    config: &GossipConfig,
    rng: &mut R,
) -> Result<GossipResult, DiffusionError> {
    let n = graph.num_nodes();
    if e0.num_nodes() != n {
        return Err(DiffusionError::ShapeMismatch {
            expected: (n, e0.dim()),
            got: (e0.num_nodes(), e0.dim()),
        });
    }
    let dim = e0.dim();
    let alpha = config.ppr.alpha();
    let tol = config.ppr.tolerance();
    let norm = config.ppr.normalization();
    if n == 0 {
        return Ok(GossipResult {
            signal: Signal::zeros(0, dim),
            updates: 0,
            virtual_time: 0.0,
            converged: true,
            residual: 0.0,
        });
    }

    // Current estimates start at the personalization (E(0) = E0).
    let mut current = e0.clone();
    // received[slot(u, i)] = last estimate of u's i-th neighbor delivered to
    // u; starts at zero (nodes know nothing about their neighbors yet).
    let slot_base: Vec<usize> = {
        let mut base = Vec::with_capacity(n + 1);
        base.push(0usize);
        for u in 0..n as u32 {
            base.push(base[u as usize] + graph.degree(NodeId::new(u)));
        }
        base
    };
    let total_slots = slot_base[n];
    let mut received = vec![0.0f32; total_slots * dim.max(1)];

    let slot_of = |u: u32, from: u32| -> usize {
        let pos = graph
            .neighbor_slice(NodeId::new(u))
            .binary_search(&NodeId::new(from))
            .expect("messages only flow along edges");
        slot_base[u as usize] + pos
    };

    let mut queue: BinaryHeap<QueuedEvent> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_event = |queue: &mut BinaryHeap<QueuedEvent>, seq: &mut u64, t: f64, ev: Event| {
        queue.push(QueuedEvent {
            time: t,
            seq: *seq,
            event: ev,
        });
        *seq += 1;
    };
    // Initial activations: every node gets a Poisson clock of rate 1.
    for u in 0..n as u32 {
        let t = exponential(1.0, rng);
        push_event(&mut queue, &mut seq, t, Event::Activate(u));
    }

    let budget = config.ppr.max_iterations().saturating_mul(n);
    let mut updates = 0usize;
    let mut activated = vec![false; n];
    let mut activated_count = 0usize;
    let mut quiet_streak = 0usize; // consecutive activations below tolerance
    let mut virtual_time = 0.0f64;
    // Tracks the certification attempts against the global synchronous
    // residual — the shared bookkeeping of every engine in this crate.
    let mut conv = Convergence::new();

    while let Some(QueuedEvent { time: t, event, .. }) = queue.pop() {
        virtual_time = t;
        match event {
            Event::Deliver { to, from, value } => {
                let slot = slot_of(to, from);
                let stored = &mut received[slot * dim..(slot + 1) * dim];
                // A delivery that meaningfully changes a stored estimate
                // means the system is still in flux: reset the quiet streak
                // so late messages cannot fake convergence.
                let mut delta = 0.0f32;
                for (s, v) in stored.iter_mut().zip(&value) {
                    delta = delta.max((*v - *s).abs());
                    *s = *v;
                }
                if delta < tol {
                    quiet_streak += 1;
                } else {
                    quiet_streak = 0;
                }
            }
            Event::Activate(u) => {
                updates += 1;
                if !activated[u as usize] {
                    activated[u as usize] = true;
                    activated_count += 1;
                }
                // Recompute from stored neighbor estimates.
                let mut new_value = vec![0.0f32; dim];
                for (i, v) in graph.neighbor_slice(NodeId::new(u)).iter().enumerate() {
                    let w = transition_weight(graph, norm, NodeId::new(u), *v);
                    let slot = slot_base[u as usize] + i;
                    let stored = &received[slot * dim..(slot + 1) * dim];
                    for (nv, s) in new_value.iter_mut().zip(stored) {
                        *nv += w * s;
                    }
                }
                let mut delta = 0.0f32;
                {
                    let row = current.row_mut(u as usize);
                    for (k, nv) in new_value.iter_mut().enumerate() {
                        *nv = (1.0 - alpha) * *nv + alpha * e0.row(u as usize)[k];
                        delta = delta.max((*nv - row[k]).abs());
                        row[k] = *nv;
                    }
                }
                if delta < tol {
                    quiet_streak += 1;
                } else {
                    quiet_streak = 0;
                }
                // Quiet events must cover both a full round of activations
                // and the messages still in flight, hence 2n. The streak
                // alone is not sound (e.g. at start-up every idle node is
                // quiet while the source's first pushes are still in
                // transit), so confirm no pending delivery would still
                // change a stored estimate.
                if activated_count == n && quiet_streak >= 2 * n {
                    let pending_significant = queue.iter().any(|qe| match &qe.event {
                        Event::Deliver { to, from, value } => {
                            let slot = slot_of(*to, *from);
                            let stored = &received[slot * dim..(slot + 1) * dim];
                            value.iter().zip(stored).any(|(v, s)| (v - s).abs() >= tol)
                        }
                        Event::Activate(_) => false,
                    });
                    // The streak is still only a heuristic: consecutive
                    // quiet activations need not cover every node after its
                    // neighbors last moved (Poisson clocks can leave a node
                    // sleeping through the whole window). Certify against
                    // the true synchronous residual before terminating.
                    if pending_significant
                        || !conv.record(global_residual(graph, norm, alpha, e0, &current), tol)
                    {
                        quiet_streak = 0;
                    } else {
                        break;
                    }
                }
                if updates >= budget {
                    break;
                }
                // Push the new estimate to every neighbor.
                for v in graph.neighbors(NodeId::new(u)) {
                    if config.mean_delay == 0.0 {
                        let slot = slot_of(v.as_u32(), u);
                        received[slot * dim..(slot + 1) * dim].copy_from_slice(&new_value);
                    } else {
                        let delay = exponential(1.0 / config.mean_delay, rng);
                        push_event(
                            &mut queue,
                            &mut seq,
                            t + delay,
                            Event::Deliver {
                                to: v.as_u32(),
                                from: u,
                                value: new_value.clone(),
                            },
                        );
                    }
                }
                // Schedule the node's next activation.
                let next = t + exponential(1.0, rng);
                push_event(&mut queue, &mut seq, next, Event::Activate(u));
            }
        }
    }

    Ok(GossipResult {
        signal: current,
        updates,
        virtual_time,
        converged: conv.converged,
        residual: conv.residual,
    })
}

/// Max-norm residual of the synchronous PPR update applied to `current`:
/// `max_u |a e0_u + (1−a) Σ_v A[u][v] current_v − current_u|`. Zero exactly
/// at the fixed point the synchronous engines converge to.
fn global_residual(
    graph: &Graph,
    norm: gdsearch_graph::sparse::Normalization,
    alpha: f32,
    e0: &Signal,
    current: &Signal,
) -> f32 {
    let dim = current.dim();
    let mut residual = 0.0f32;
    let mut next = vec![0.0f32; dim];
    for u in graph.node_ids() {
        next.fill(0.0);
        for v in graph.neighbors(u) {
            let w = transition_weight(graph, norm, u, v);
            for (nx, x) in next.iter_mut().zip(current.row(v.index())) {
                *nx += w * x;
            }
        }
        let row = current.row(u.index());
        for (k, nx) in next.iter().enumerate() {
            let target = (1.0 - alpha) * nx + alpha * e0.row(u.index())[k];
            residual = residual.max((target - row[k]).abs());
        }
    }
    residual
}

/// Exponential sample with the given rate.
fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power;
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn one_hot(n: usize, u: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(u)[0] = 1.0;
        s
    }

    #[test]
    fn converges_to_synchronous_fixed_point() {
        let g = generators::social_circles_like_scaled(60, &mut rng(1)).unwrap();
        let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-7).unwrap();
        let e0 = one_hot(60, 10);
        let sync = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        let out = diffuse(&g, &e0, &GossipConfig::new(cfg), &mut rng(2)).unwrap();
        assert!(out.converged, "gossip must converge");
        assert!(
            out.signal.max_abs_diff(&sync).unwrap() < 1e-3,
            "async fixed point must match sync"
        );
    }

    #[test]
    fn converges_with_message_delays() {
        let g = generators::grid(6, 6);
        let cfg = PprConfig::new(0.3).unwrap().with_tolerance(1e-6).unwrap();
        let e0 = one_hot(36, 0);
        let sync = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        let gossip_cfg = GossipConfig::new(cfg).with_mean_delay(2.0).unwrap();
        let out = diffuse(&g, &e0, &gossip_cfg, &mut rng(3)).unwrap();
        assert!(out.converged, "delayed gossip must still converge");
        assert!(out.signal.max_abs_diff(&sync).unwrap() < 1e-2);
        assert!(out.virtual_time > 0.0);
    }

    #[test]
    fn multi_dimensional_signals() {
        let g = generators::ring(15).unwrap();
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-6).unwrap();
        let mut e0 = Signal::zeros(15, 3);
        e0.row_mut(2).copy_from_slice(&[1.0, -1.0, 0.5]);
        e0.row_mut(9).copy_from_slice(&[0.0, 2.0, 1.0]);
        let sync = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        let out = diffuse(&g, &e0, &GossipConfig::new(cfg), &mut rng(4)).unwrap();
        assert!(out.converged);
        assert!(out.signal.max_abs_diff(&sync).unwrap() < 1e-3);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid(4, 4);
        let cfg = PprConfig::new(0.5).unwrap();
        let e0 = one_hot(16, 0);
        let a = diffuse(&g, &e0, &GossipConfig::new(cfg), &mut rng(5)).unwrap();
        let b = diffuse(&g, &e0, &GossipConfig::new(cfg), &mut rng(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_trivially_converges() {
        let g = gdsearch_graph::Graph::empty(0);
        let out = diffuse(
            &g,
            &Signal::zeros(0, 2),
            &GossipConfig::new(PprConfig::default()),
            &mut rng(6),
        )
        .unwrap();
        assert!(out.converged);
        assert_eq!(out.updates, 0);
    }

    #[test]
    fn budget_exhaustion_is_flagged_not_fatal() {
        let g = generators::ring(30).unwrap();
        let cfg = PprConfig::new(0.05)
            .unwrap()
            .with_tolerance(1e-10)
            .unwrap()
            .with_max_iterations(1); // 1 activation per node: hopeless
        let out = diffuse(&g, &one_hot(30, 0), &GossipConfig::new(cfg), &mut rng(7)).unwrap();
        assert!(!out.converged);
        assert!(out.updates <= 30);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = generators::ring(5).unwrap();
        assert!(diffuse(
            &g,
            &Signal::zeros(6, 1),
            &GossipConfig::new(PprConfig::default()),
            &mut rng(8),
        )
        .is_err());
    }

    #[test]
    fn invalid_delay_rejected() {
        assert!(GossipConfig::new(PprConfig::default())
            .with_mean_delay(-1.0)
            .is_err());
        assert!(GossipConfig::new(PprConfig::default())
            .with_mean_delay(f64::NAN)
            .is_err());
    }
}
