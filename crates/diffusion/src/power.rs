//! Synchronous power-iteration evaluation of the PPR filter (paper Eq. 7):
//! `E(t) = (1−a) A E(t−1) + a E0`, iterated until the max-abs residual
//! between sweeps falls below the configured tolerance (see
//! [`PprConfig::tolerance`] for the exact semantics).
//!
//! The iteration is a contraction with factor `(1−a)` in the appropriate
//! norm, so it converges geometrically for any `a ∈ (0, 1]`.

use gdsearch_graph::sparse::{transition_matrix, CsrMatrix};
use gdsearch_graph::Graph;
use gdsearch_obs::Sink;

use crate::convergence::Convergence;
use crate::{DiffusionError, PprConfig, Signal};

/// Outcome of an iterative diffusion.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionResult {
    /// The diffused signal `E`.
    pub signal: Signal,
    /// Sweeps performed.
    pub iterations: usize,
    /// Max-abs residual of the final sweep.
    pub residual: f32,
    /// Whether the residual met the tolerance within the iteration budget.
    pub converged: bool,
}

/// Diffuses `e0` over `graph` with the PPR filter, synchronously.
///
/// Returns the result even when the iteration budget is exhausted
/// (`converged = false`); callers that require convergence can check the
/// flag or use [`diffuse_converged`].
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if `e0` has a different node
/// count than `graph`.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{power, PprConfig, Signal};
/// use gdsearch_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::complete(4);
/// let mut e0 = Signal::zeros(4, 2);
/// e0.row_mut(0).copy_from_slice(&[1.0, 0.5]);
/// let out = power::diffuse(&g, &e0, &PprConfig::new(0.5)?)?;
/// assert!(out.converged);
/// // The source keeps the largest share of its own signal.
/// assert!(out.signal.row(0)[0] > out.signal.row(1)[0]);
/// # Ok(())
/// # }
/// ```
pub fn diffuse(
    graph: &Graph,
    e0: &Signal,
    config: &PprConfig,
) -> Result<DiffusionResult, DiffusionError> {
    let a = transition_matrix(graph, config.normalization());
    diffuse_with_matrix(&a, e0, config)
}

/// Like [`diffuse`], but reuses a prebuilt transition matrix — the
/// experiment harness diffuses many placements over one graph.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if shapes disagree.
pub fn diffuse_with_matrix(
    matrix: &CsrMatrix,
    e0: &Signal,
    config: &PprConfig,
) -> Result<DiffusionResult, DiffusionError> {
    diffuse_with_matrix_threaded(matrix, e0, config, 1)
}

/// Like [`diffuse`], but shards every row sweep across `threads` scoped
/// workers from [`crate::workpool`].
///
/// Each output row of the sweep `E(t) = (1−a) A E(t−1) + a E0` depends
/// only on the previous iterate, so disjoint row ranges are computed
/// concurrently into disjoint chunks of the next iterate
/// ([`CsrMatrix::mul_dense_rows_into`]); the per-chunk residual maxima are
/// folded in chunk order, and `f32::max` is associative for the non-NaN
/// values produced here — the result is therefore bit-for-bit identical
/// for every thread count, including `threads = 1` (which is exactly
/// [`diffuse`]).
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_threaded(
    graph: &Graph,
    e0: &Signal,
    config: &PprConfig,
    threads: usize,
) -> Result<DiffusionResult, DiffusionError> {
    let a = transition_matrix(graph, config.normalization());
    diffuse_with_matrix_threaded(&a, e0, config, threads)
}

/// [`diffuse_threaded`] with deterministic work instrumentation (see
/// [`diffuse_with_matrix_observed`]).
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_threaded_observed(
    graph: &Graph,
    e0: &Signal,
    config: &PprConfig,
    threads: usize,
    sink: &mut Sink<'_>,
) -> Result<DiffusionResult, DiffusionError> {
    let a = transition_matrix(graph, config.normalization());
    diffuse_with_matrix_observed(&a, e0, config, threads, sink)
}

/// [`diffuse_threaded`] over a prebuilt transition matrix.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if shapes disagree.
pub fn diffuse_with_matrix_threaded(
    matrix: &CsrMatrix,
    e0: &Signal,
    config: &PprConfig,
    threads: usize,
) -> Result<DiffusionResult, DiffusionError> {
    diffuse_with_matrix_observed(matrix, e0, config, threads, &mut Sink::disabled())
}

/// [`diffuse_with_matrix_threaded`] with deterministic work
/// instrumentation: per-sweep work counters and the convergence residual
/// curve are recorded into `sink` at the sequential fold point of every
/// iteration, so recording never perturbs the result and registries are
/// bit-identical across thread counts.
///
/// Metrics: `diffusion.power.sweeps` / `.rows_swept` (counters),
/// `diffusion.power.residual` (float series, one sample per sweep).
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if shapes disagree.
pub fn diffuse_with_matrix_observed(
    matrix: &CsrMatrix,
    e0: &Signal,
    config: &PprConfig,
    threads: usize,
    sink: &mut Sink<'_>,
) -> Result<DiffusionResult, DiffusionError> {
    let n = matrix.n_rows();
    if e0.num_nodes() != n {
        return Err(DiffusionError::ShapeMismatch {
            expected: (n, e0.dim()),
            got: (e0.num_nodes(), e0.dim()),
        });
    }
    let dim = e0.dim();
    let width = dim.max(1);
    let threads = threads.max(1).min(n.max(1));
    let chunk_rows = n.max(1).div_ceil(threads);
    let alpha = config.alpha();
    let mut current = e0.clone();
    let mut next = Signal::zeros(n, dim);
    let mut conv = Convergence::new();
    while conv.iters < config.max_iterations() {
        // next = (1 - a) * A * current + a * e0, sharded by row range.
        let max_delta = {
            let cur = current.as_slice();
            let origin = e0.as_slice();
            let mut chunks: Vec<(usize, &mut [f32])> = next
                .as_mut_slice()
                .chunks_mut(chunk_rows * width)
                .enumerate()
                .map(|(i, chunk)| (i * chunk_rows, chunk))
                .collect();
            let deltas =
                crate::workpool::map_batched_mut(&mut chunks, threads, |(first_row, chunk)| {
                    matrix.mul_dense_rows_into(*first_row, cur, width, chunk);
                    let base = *first_row * width;
                    let mut local_max = 0.0f32;
                    for (j, nx) in chunk.iter_mut().enumerate() {
                        *nx = (1.0 - alpha) * *nx + alpha * origin[base + j];
                        let delta = (*nx - cur[base + j]).abs();
                        if delta > local_max {
                            local_max = delta;
                        }
                    }
                    local_max
                });
            deltas.into_iter().fold(0.0f32, f32::max)
        };
        std::mem::swap(&mut current, &mut next);
        // Recording happens here, after the sequential fold, so the sink
        // sees one sample per sweep in iteration order regardless of how
        // many workers computed the chunks.
        sink.add("diffusion.power.sweeps", 1);
        sink.add("diffusion.power.rows_swept", n as u64);
        sink.series_push_f("diffusion.power.residual", f64::from(max_delta));
        if conv.record(max_delta, config.tolerance()) {
            break;
        }
    }
    Ok(DiffusionResult {
        signal: current,
        iterations: conv.iters,
        residual: conv.residual,
        converged: conv.converged,
    })
}

/// Strict variant of [`diffuse`]: fails unless convergence was reached.
///
/// # Errors
///
/// As [`diffuse`], plus [`DiffusionError::NotConverged`].
pub fn diffuse_converged(
    graph: &Graph,
    e0: &Signal,
    config: &PprConfig,
) -> Result<Signal, DiffusionError> {
    let out = diffuse(graph, e0, config)?;
    if !out.converged {
        return Err(DiffusionError::NotConverged {
            iterations: out.iterations,
            residual: out.residual,
        });
    }
    Ok(out.signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;
    use gdsearch_graph::sparse::Normalization;

    fn one_hot_signal(n: usize, node: usize) -> Signal {
        let mut s = Signal::zeros(n, 1);
        s.row_mut(node)[0] = 1.0;
        s
    }

    #[test]
    fn converges_on_ring() {
        let g = generators::ring(10).unwrap();
        let out = diffuse(&g, &one_hot_signal(10, 0), &PprConfig::new(0.3).unwrap()).unwrap();
        assert!(out.converged);
        assert!(out.iterations > 1);
        assert!(out.residual <= 1e-6);
    }

    #[test]
    fn alpha_one_returns_personalization() {
        // a = 1: pure teleport, E = E0 after one step.
        let g = generators::ring(6).unwrap();
        let e0 = one_hot_signal(6, 2);
        let out = diffuse(&g, &e0, &PprConfig::new(1.0).unwrap()).unwrap();
        assert!(out.converged);
        assert!(out.signal.max_abs_diff(&e0).unwrap() < 1e-6);
    }

    #[test]
    fn mass_is_preserved_with_column_stochastic() {
        // Column-stochastic A preserves total mass: columns of
        // a(I-(1-a)A)^{-1} sum to 1.
        let g = generators::social_circles_like_scaled(80, &mut seeded(3)).unwrap();
        let e0 = one_hot_signal(80, 5);
        let cfg = PprConfig::new(0.2)
            .unwrap()
            .with_normalization(Normalization::ColumnStochastic)
            .with_tolerance(1e-8)
            .unwrap();
        let out = diffuse(&g, &e0, &cfg).unwrap();
        assert!(out.converged);
        let mass = out.signal.column_mass()[0];
        assert!((mass - 1.0).abs() < 1e-3, "mass {mass} drifted from 1");
    }

    #[test]
    fn decay_with_distance_on_path() {
        let g = generators::path(9);
        let out = diffuse(&g, &one_hot_signal(9, 0), &PprConfig::new(0.5).unwrap()).unwrap();
        let values: Vec<f32> = (0..9).map(|u| out.signal.row(u)[0]).collect();
        for w in values.windows(2) {
            assert!(
                w[0] > w[1],
                "PPR mass must decay monotonically along a path: {values:?}"
            );
        }
    }

    #[test]
    fn linearity_of_diffusion() {
        // PPR is a linear operator: H(x + y) = Hx + Hy.
        let g = generators::grid(4, 4);
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-8).unwrap();
        let x = one_hot_signal(16, 0);
        let y = one_hot_signal(16, 9);
        let mut xy = Signal::zeros(16, 1);
        xy.row_mut(0)[0] = 1.0;
        xy.row_mut(9)[0] = 1.0;
        let hx = diffuse(&g, &x, &cfg).unwrap().signal;
        let hy = diffuse(&g, &y, &cfg).unwrap().signal;
        let hxy = diffuse(&g, &xy, &cfg).unwrap().signal;
        for u in 0..16 {
            let sum = hx.row(u)[0] + hy.row(u)[0];
            assert!((sum - hxy.row(u)[0]).abs() < 1e-4);
        }
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let g = generators::ring(50).unwrap();
        let cfg = PprConfig::new(0.01)
            .unwrap()
            .with_tolerance(1e-12)
            .unwrap()
            .with_max_iterations(3);
        let out = diffuse(&g, &one_hot_signal(50, 0), &cfg).unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert!(diffuse_converged(&g, &one_hot_signal(50, 0), &cfg).is_err());
    }

    #[test]
    fn threaded_sweeps_are_bitwise_identical() {
        let g = generators::social_circles_like_scaled(120, &mut seeded(9)).unwrap();
        let mut e0 = Signal::zeros(120, 5);
        for u in 0..120 {
            for d in 0..5 {
                e0.row_mut(u)[d] = ((u * 5 + d) as f32 * 0.17).sin();
            }
        }
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-7).unwrap();
        let reference = diffuse(&g, &e0, &cfg).unwrap();
        for threads in [2, 3, 4, 16] {
            let out = diffuse_threaded(&g, &e0, &cfg, threads).unwrap();
            assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
            assert_eq!(out.iterations, reference.iterations);
            assert_eq!(out.residual, reference.residual);
            assert_eq!(out.converged, reference.converged);
        }
    }

    #[test]
    fn threaded_handles_more_threads_than_rows() {
        let g = generators::ring(3).unwrap();
        let out = diffuse_threaded(&g, &one_hot_signal(3, 0), &PprConfig::default(), 64).unwrap();
        let reference = diffuse(&g, &one_hot_signal(3, 0), &PprConfig::default()).unwrap();
        assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = generators::ring(5).unwrap();
        let e0 = Signal::zeros(6, 1);
        assert!(matches!(
            diffuse(&g, &e0, &PprConfig::default()),
            Err(DiffusionError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn zero_signal_stays_zero() {
        let g = generators::complete(5);
        let out = diffuse(&g, &Signal::zeros(5, 3), &PprConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.signal.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn isolated_node_keeps_teleport_share_only() {
        let g = gdsearch_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        let e0 = one_hot_signal(3, 2);
        let out = diffuse(&g, &e0, &PprConfig::new(0.5).unwrap()).unwrap();
        // Node 2 is isolated: its fixed point is a * e0 / (1 - (1-a)*0) = a
        // only if A row is empty => e = a*e0 => 0.5... wait: e = (1-a)*0 + a*1
        // = a at every iteration, so exactly alpha.
        assert!((out.signal.row(2)[0] - 0.5).abs() < 1e-6);
        assert_eq!(out.signal.row(0)[0], 0.0);
    }

    fn seeded(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
