//! Diffusion on partitioned graph state: the sharded power sweep and the
//! sharded forward-push engine over a [`ShardedGraph`].
//!
//! Both engines keep *all* per-node state — signal blocks, residuals,
//! estimates — partitioned by the shard that owns the node range, and
//! exchange only boundary data between steps:
//!
//! * the **power sweep** exchanges halo *columns* of the previous iterate
//!   (each shard gathers the values of its halo nodes from their owners,
//!   then sweeps its own rows);
//! * the **push engine** drains per-shard residual frontiers locally and
//!   hands cross-shard residual *mass* to the owning shard between rounds.
//!
//! Per-step work is scheduled over [`crate::workpool`], so `shards` bounds
//! the state partition while `threads` bounds the physical parallelism —
//! the two knobs are independent and neither affects the output.
//!
//! Boundary movement itself goes through the [`ShardExchange`] trait:
//! the default
//! entry points use the shared-memory [`crate::exchange::InProcessExchange`],
//! while the `*_with_exchange` variants accept any interconnect (the
//! `gdsearch-dist` crate supplies one backed by simulated bandwidth-limited
//! links). The canonical schedule below is interconnect-independent, so
//! every conforming exchange yields bit-for-bit identical results.
//!
//! # Determinism
//!
//! **Power.** The sharded sweep is *bit-for-bit identical to
//! [`crate::power::diffuse`]* for every `(shards, threads)` combination.
//! Shard-local transition rows are the global transition rows with columns
//! remapped by [`GraphShard::slot_of`], which is strictly monotone in the
//! global node id — so each row's stored entries keep their global order
//! and [`CsrMatrix::mul_dense_rows_into`] performs the same float
//! operations in the same order as the monolithic product. The blend
//! `E(t+1) = (1−a)·A·E(t) + a·E0` uses the same expression per element,
//! and the per-shard residual maxima are folded with `f32::max`, which is
//! associative for the non-NaN values produced here.
//!
//! **Push.** The sharded push uses a canonical *round* schedule (Jacobi
//! within a round): each round pushes every node whose round-start residual
//! exceeds `rmax · deg(u)`, in ascending node id; new residual mass is
//! buffered and merged afterwards, applied one contribution at a time in
//! ascending *source* id. Because shard ranges are contiguous and each
//! shard scans its frontier in ascending local order, the merge order —
//! shard 0's contributions, then shard 1's, … — is exactly ascending
//! source order no matter how the node set is sharded, and each shard's
//! outbox is replayed entry by entry. The schedule therefore performs
//! identical float operations for every `(shards, threads)` combination;
//! the single-shard instance *is* the unsharded counterpart. Accuracy uses
//! the same certified L∞ bounds as [`crate::push`] (evaluated in global
//! node order on the coordinator), so results are interchangeable with the
//! sweep engines at [`crate::PprConfig::tolerance`].
//!
//! What is *not* claimed: bit-equality between the round-scheduled push and
//! the FIFO-scheduled [`crate::push`] — different push orders accumulate
//! residuals in different orders, so those two agree only to the certified
//! tolerance (like every other engine pair in this crate).
//!
//! # Example
//!
//! ```
//! use gdsearch_diffusion::{power, sharded, PprConfig, Signal};
//! use gdsearch_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::ring(64)?;
//! let mut e0 = Signal::zeros(64, 2);
//! e0.row_mut(0).copy_from_slice(&[1.0, 0.25]);
//! let cfg = sharded::ShardedConfig::new(PprConfig::new(0.5)?)
//!     .with_shards(4)?
//!     .with_threads(2)?;
//! let out = sharded::diffuse(&g, &e0, &cfg)?;
//! let reference = power::diffuse(&g, &e0, &PprConfig::new(0.5)?)?;
//! // Bit-for-bit identical to the monolithic dense sweep.
//! assert_eq!(out.signal.as_slice(), reference.signal.as_slice());
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use gdsearch_embed::Embedding;
use gdsearch_graph::sparse::{CsrMatrix, Normalization};
use gdsearch_graph::{Graph, GraphShard, NodeId, ShardedGraph};
use gdsearch_obs::Sink;

use crate::convergence::Convergence;
use crate::degrees::DegreeTables;
use crate::exchange::{InProcessExchange, ShardExchange};
use crate::power::DiffusionResult;
use crate::{workpool, DiffusionError, PprConfig, Signal};

pub use crate::exchange::Outbox;

/// Node count at or above which [`crate::per_source::auto_diffuse`] routes
/// through the sharded engines, so diffusion state is partitioned instead
/// of monolithic.
///
/// Below this size the unsharded engines fit comfortably in one adjacency
/// array and the per-iteration halo exchange does not pay for itself; above
/// it, sharding bounds per-shard memory (`ablation_sharding` measures the
/// split) and is the prerequisite for placing shards on different machines.
pub const AUTO_SHARD_MIN_NODES: usize = 262_144;

/// Configuration of the sharded engines: the PPR filter parameters plus the
/// partitioning and scheduling knobs.
///
/// `shards` controls how the node set (and with it all per-node state) is
/// partitioned; `threads` controls how many workers sweep the shards.
/// Neither affects the output (see the module docs).
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{sharded::ShardedConfig, PprConfig};
///
/// # fn main() -> Result<(), gdsearch_diffusion::DiffusionError> {
/// let cfg = ShardedConfig::new(PprConfig::new(0.5)?)
///     .with_shards(8)?
///     .with_threads(4)?;
/// assert_eq!(cfg.shards(), 8);
/// assert_eq!(cfg.threads(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    ppr: PprConfig,
    shards: usize,
    threads: usize,
    rmax: f32,
}

impl ShardedConfig {
    /// Creates a sharded configuration with defaults: a single shard, a
    /// single worker, and the push engine's initial frontier granularity
    /// equal to the PPR tolerance.
    #[must_use]
    pub fn new(ppr: PprConfig) -> Self {
        ShardedConfig {
            ppr,
            shards: 1,
            threads: 1,
            rmax: ppr.tolerance().max(f32::MIN_POSITIVE),
        }
    }

    /// Sets the shard count (clamped to the node count at partition time).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Result<Self, DiffusionError> {
        if shards == 0 {
            return Err(DiffusionError::invalid_parameter("shards must be positive"));
        }
        self.shards = shards;
        Ok(self)
    }

    /// Sets the worker-thread count shards are scheduled over.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Result<Self, DiffusionError> {
        if threads == 0 {
            return Err(DiffusionError::invalid_parameter(
                "threads must be positive",
            ));
        }
        self.threads = threads;
        Ok(self)
    }

    /// Sets the push engine's initial frontier granularity (a schedule
    /// knob, not an accuracy knob — see [`crate::push::PushConfig::with_rmax`]).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::InvalidParameter`] unless `rmax` is
    /// positive and finite.
    pub fn with_rmax(mut self, rmax: f32) -> Result<Self, DiffusionError> {
        if !rmax.is_finite() || rmax <= 0.0 {
            return Err(DiffusionError::invalid_parameter(format!(
                "rmax must be positive and finite, got {rmax}"
            )));
        }
        self.rmax = rmax;
        Ok(self)
    }

    /// The PPR filter parameters.
    #[must_use]
    pub fn ppr(&self) -> &PprConfig {
        &self.ppr
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Initial push frontier granularity.
    #[must_use]
    pub fn rmax(&self) -> f32 {
        self.rmax
    }
}

// ---------------------------------------------------------------------------
// Sharded power sweep
// ---------------------------------------------------------------------------

/// Per-shard compute state of the sharded power sweep. The gather plan
/// lives in the [`ShardExchange`] implementation ([`crate::exchange`]);
/// this is only what the local row sweep needs.
struct PowerShard {
    /// This shard's index (for locating its own blocks in `currents` and
    /// the exchanged inputs).
    index: usize,
    /// The shard's transition rows, columns remapped to slots.
    matrix: CsrMatrix,
    /// Next iterate of the local block (`local_n × dim`).
    next: Vec<f32>,
    /// Local block of `E0`.
    origin: Vec<f32>,
}

/// Builds shard `s`'s transition rows with columns remapped to slots.
///
/// The values are exactly those of
/// [`gdsearch_graph::sparse::transition_matrix`]; the slot map is strictly
/// monotone, so each row keeps its global storage order (the determinism
/// argument in the module docs).
fn shard_transition(sharded: &ShardedGraph, s: usize, norm: Normalization) -> CsrMatrix {
    let shard = sharded.shard(s);
    let mut triplets = Vec::with_capacity(shard.num_adjacency_entries());
    for local in 0..shard.num_local_nodes() {
        let deg_u = shard.local_degree(local);
        for &v in shard.local_neighbor_slice(local) {
            // Weight expressions replicate `sparse::transition_matrix`
            // verbatim — same operations, same rounding, same bits.
            let deg_v = sharded.degree(v);
            let value = match norm {
                Normalization::ColumnStochastic => 1.0 / deg_v as f32,
                Normalization::RowStochastic => 1.0 / deg_u as f32,
                Normalization::Symmetric => 1.0 / ((deg_u as f32).sqrt() * (deg_v as f32).sqrt()),
            };
            let slot = shard
                .slot_of(v)
                .expect("every neighbor is local or in the halo");
            triplets.push((local as u32, slot as u32, value));
        }
    }
    CsrMatrix::from_triplets(shard.num_local_nodes(), shard.slot_count(), &triplets)
        .expect("shard dimensions fit the u32 index space")
}

/// Diffuses `e0` with the PPR filter on partitioned state: the graph is
/// split into `config.shards()` node ranges and each sweep runs shard-local
/// products, exchanging only halo columns between iterations.
///
/// Bit-for-bit identical to [`crate::power::diffuse`] for every
/// `(shards, threads)` combination (see the module docs).
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] if `e0` has a different node
/// count than `graph`.
pub fn diffuse(
    graph: &Graph,
    e0: &Signal,
    config: &ShardedConfig,
) -> Result<DiffusionResult, DiffusionError> {
    let sharded = ShardedGraph::from_graph(graph, config.shards)?;
    diffuse_partitioned(&sharded, e0, config)
}

/// [`diffuse`] with deterministic work instrumentation: the partition is
/// built with [`ShardedGraph::from_graph_observed`] (halo build cost) and
/// the sweep records through [`diffuse_with_exchange_observed`].
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_observed(
    graph: &Graph,
    e0: &Signal,
    config: &ShardedConfig,
    sink: &mut Sink<'_>,
) -> Result<DiffusionResult, DiffusionError> {
    let sharded = ShardedGraph::from_graph_observed(graph, config.shards, sink)?;
    let mut exchange = InProcessExchange::new(&sharded, config.threads);
    diffuse_with_exchange_observed(&sharded, e0, config, &mut exchange, sink)
}

/// [`diffuse`] over a prebuilt partition.
///
/// # Errors
///
/// As [`diffuse`].
pub fn diffuse_partitioned(
    sharded: &ShardedGraph,
    e0: &Signal,
    config: &ShardedConfig,
) -> Result<DiffusionResult, DiffusionError> {
    let mut exchange = InProcessExchange::new(sharded, config.threads);
    diffuse_with_exchange(sharded, e0, config, &mut exchange)
}

/// [`diffuse_partitioned`] with an explicit boundary interconnect: halo
/// columns move through `exchange` instead of the default shared-memory
/// copies. Any implementation honouring the [`crate::exchange`] contract
/// (e.g. the transport-backed one in `gdsearch-dist`) yields bit-for-bit
/// the same result as [`crate::power::diffuse`].
///
/// # Errors
///
/// As [`diffuse`], plus any [`DiffusionError::Exchange`] the interconnect
/// reports.
pub fn diffuse_with_exchange<E: ShardExchange>(
    sharded: &ShardedGraph,
    e0: &Signal,
    config: &ShardedConfig,
    exchange: &mut E,
) -> Result<DiffusionResult, DiffusionError> {
    diffuse_with_exchange_observed(sharded, e0, config, exchange, &mut Sink::disabled())
}

/// [`diffuse_with_exchange`] with deterministic work instrumentation:
/// per-sweep counters and the residual curve are recorded into `sink` at
/// the sequential fold point of every iteration — after the per-shard
/// maxima are folded, before the swap — so recording never perturbs the
/// result and registries are bit-identical across `(shards, threads)`.
///
/// Metrics: `diffusion.sharded.sweeps` / `.rows_swept` (counters),
/// `diffusion.sharded.residual` (float series, one sample per sweep).
///
/// # Errors
///
/// As [`diffuse_with_exchange`].
pub fn diffuse_with_exchange_observed<E: ShardExchange>(
    sharded: &ShardedGraph,
    e0: &Signal,
    config: &ShardedConfig,
    exchange: &mut E,
    sink: &mut Sink<'_>,
) -> Result<DiffusionResult, DiffusionError> {
    let n = sharded.num_nodes();
    if e0.num_nodes() != n {
        return Err(DiffusionError::ShapeMismatch {
            expected: (n, e0.dim()),
            got: (e0.num_nodes(), e0.dim()),
        });
    }
    let dim = e0.dim();
    let tolerance = config.ppr.tolerance();
    if dim == 0 {
        // Zero-width signals converge immediately; mirror the dense
        // engine's bookkeeping exactly (one zero-residual sweep, unless the
        // iteration budget is itself zero).
        let mut conv = Convergence::new();
        while conv.iters < config.ppr.max_iterations() {
            if conv.record(0.0, tolerance) {
                break;
            }
        }
        return Ok(DiffusionResult {
            signal: e0.clone(),
            iterations: conv.iters,
            residual: conv.residual,
            converged: conv.converged,
        });
    }
    let norm = config.ppr.normalization();
    let alpha = config.ppr.alpha();
    let threads = config.threads.max(1);
    // Partition the signal: shard-local current blocks, exchanged
    // slot-layout inputs, and per-shard sweep scratch.
    let mut currents: Vec<Vec<f32>> = Vec::with_capacity(sharded.num_shards());
    let mut inputs: Vec<Vec<f32>> = Vec::with_capacity(sharded.num_shards());
    let mut scratch: Vec<PowerShard> = Vec::with_capacity(sharded.num_shards());
    for (s, shard) in sharded.shards().iter().enumerate() {
        let start = shard.start() as usize * dim;
        let len = shard.num_local_nodes() * dim;
        let block = e0.as_slice()[start..start + len].to_vec();
        scratch.push(PowerShard {
            index: s,
            matrix: shard_transition(sharded, s, norm),
            next: vec![0.0f32; len],
            origin: block.clone(),
        });
        inputs.push(vec![0.0f32; shard.slot_count() * dim]);
        currents.push(block);
    }
    let mut conv = Convergence::new();
    while conv.iters < config.ppr.max_iterations() {
        // One sweep: exchange halo columns (plus the free local copy),
        // then multiply local rows and blend with the teleport term — per
        // shard, scheduled over the workpool.
        exchange.exchange_halos(dim, &currents, &mut inputs)?;
        let max_delta = {
            let cur = &currents;
            let ins = &inputs;
            let deltas = workpool::map_batched_mut(&mut scratch, threads, |sh| {
                let mine = cur[sh.index].as_slice();
                sh.matrix
                    .mul_dense_rows_into(0, &ins[sh.index], dim, &mut sh.next);
                let mut local_max = 0.0f32;
                for (j, nx) in sh.next.iter_mut().enumerate() {
                    *nx = (1.0 - alpha) * *nx + alpha * sh.origin[j];
                    let delta = (*nx - mine[j]).abs();
                    if delta > local_max {
                        local_max = delta;
                    }
                }
                local_max
            });
            deltas.into_iter().fold(0.0f32, f32::max)
        };
        for (sh, cur) in scratch.iter_mut().zip(currents.iter_mut()) {
            std::mem::swap(&mut sh.next, cur);
        }
        // Sequential recording after the fold: one sample per sweep in
        // iteration order, independent of shard and thread counts.
        sink.add("diffusion.sharded.sweeps", 1);
        sink.add("diffusion.sharded.rows_swept", n as u64);
        sink.series_push_f("diffusion.sharded.residual", f64::from(max_delta));
        if conv.record(max_delta, tolerance) {
            break;
        }
    }
    let mut signal = Signal::zeros(n, dim);
    let out = signal.as_mut_slice();
    let mut off = 0;
    for cur in &currents {
        out[off..off + cur.len()].copy_from_slice(cur);
        off += cur.len();
    }
    Ok(DiffusionResult {
        signal,
        iterations: conv.iters,
        residual: conv.residual,
        converged: conv.converged,
    })
}

// ---------------------------------------------------------------------------
// Sharded forward push
// ---------------------------------------------------------------------------

/// The certified L∞ bound of [`crate::degrees::DegreeTables`], fed the
/// partitioned residuals in global node order (shards ascending, local
/// rows ascending) so the result is independent of the shard count.
fn partitioned_bound(deg: &DegreeTables, shards: &[GraphShard], residuals: &[Vec<f32>]) -> f32 {
    deg.residual_bound(shards.iter().zip(residuals).flat_map(|(shard, res)| {
        let base = shard.start() as usize;
        res.iter()
            .enumerate()
            .map(move |(local, &r)| (base + local, r))
    }))
}

/// Runs one push round over the partitioned residuals at granularity
/// `rmax`, returning the number of pushes performed.
///
/// Phase 1 (parallel over shards): each shard scans its residual block in
/// ascending local order, pushes every node above the frontier threshold,
/// and buffers outgoing residual mass per destination shard as
/// `(dest-local row, weight)` pairs in emission order. Phase 2 (the round
/// barrier, [`ShardExchange::exchange_residuals`]): the buffered mass is
/// applied to each destination, source shard by source shard, one
/// contribution at a time — ascending source order globally (the module
/// docs' determinism argument).
#[allow(clippy::too_many_arguments)]
fn push_round<E: ShardExchange>(
    sharded: &ShardedGraph,
    deg: &DegreeTables,
    alpha: f32,
    rmax: f32,
    threads: usize,
    residuals: &mut [Vec<f32>],
    estimates: &mut [Vec<f32>],
    outboxes: &mut [Outbox],
    exchange: &mut E,
) -> Result<usize, DiffusionError> {
    let round_pushes: usize = {
        let mut items: Vec<(usize, &mut Vec<f32>, &mut Vec<f32>, &mut Outbox)> = residuals
            .iter_mut()
            .zip(estimates.iter_mut())
            .zip(outboxes.iter_mut())
            .enumerate()
            .map(|(s, ((r, e), o))| (s, r, e, o))
            .collect();
        workpool::map_batched_mut(&mut items, threads, |(s, residual, estimate, outbox)| {
            for dest in outbox.iter_mut() {
                dest.clear();
            }
            let shard = sharded.shard(*s);
            let base = shard.start() as usize;
            let mut pushed = 0usize;
            for local in 0..residual.len() {
                let u = base + local;
                let ru = residual[local];
                if ru <= rmax * deg.deg_scale[u] {
                    continue;
                }
                pushed += 1;
                residual[local] = 0.0;
                estimate[local] += alpha * ru;
                let spread = (1.0 - alpha) * ru;
                if spread <= 0.0 {
                    continue;
                }
                // Forward the remaining mass along column u of A; the
                // column's nonzeros are exactly u's neighbors.
                let neighbors = shard.local_neighbor_slice(local);
                match deg.norm {
                    Normalization::ColumnStochastic => {
                        let w = spread * deg.inv_deg[u];
                        for v in neighbors {
                            let owner = sharded.owner_of(*v);
                            let vl = v.as_u32() - sharded.shard(owner).start();
                            outbox[owner].push((vl, w));
                        }
                    }
                    Normalization::RowStochastic => {
                        for v in neighbors {
                            let owner = sharded.owner_of(*v);
                            let vl = v.as_u32() - sharded.shard(owner).start();
                            outbox[owner].push((vl, spread * deg.inv_deg[v.index()]));
                        }
                    }
                    Normalization::Symmetric => {
                        let w = spread * deg.inv_sqrt_deg[u];
                        for v in neighbors {
                            let owner = sharded.owner_of(*v);
                            let vl = v.as_u32() - sharded.shard(owner).start();
                            outbox[owner].push((vl, w * deg.inv_sqrt_deg[v.index()]));
                        }
                    }
                }
            }
            pushed
        })
        .into_iter()
        .sum()
    };
    if round_pushes > 0 {
        exchange.exchange_residuals(outboxes, residuals)?;
    }
    Ok(round_pushes)
}

/// Whether any node is above the frontier threshold at granularity `rmax`.
fn frontier_nonempty(
    sharded: &ShardedGraph,
    deg: &DegreeTables,
    rmax: f32,
    residuals: &[Vec<f32>],
) -> bool {
    sharded
        .shards()
        .iter()
        .zip(residuals)
        .any(|(shard, residual)| {
            let base = shard.start() as usize;
            residual
                .iter()
                .enumerate()
                .any(|(local, &r)| r > rmax * deg.deg_scale[base + local])
        })
}

/// Computes one push column on partitioned state, leaving the estimates in
/// `estimates` (per-shard blocks). Pure in its inputs — the determinism
/// contract of the module docs.
#[allow(clippy::too_many_arguments)]
fn push_column_partitioned<E: ShardExchange>(
    sharded: &ShardedGraph,
    deg: &DegreeTables,
    source: u32,
    config: &ShardedConfig,
    residuals: &mut [Vec<f32>],
    estimates: &mut [Vec<f32>],
    outboxes: &mut [Outbox],
    exchange: &mut E,
    sink: &mut Sink<'_>,
) -> Result<(), DiffusionError> {
    let n = sharded.num_nodes();
    let alpha = config.ppr.alpha();
    let tolerance = config.ppr.tolerance();
    let threads = config.threads.max(1);
    let budget = config.ppr.max_iterations().saturating_mul(n.max(1));
    for block in residuals.iter_mut() {
        block.iter_mut().for_each(|r| *r = 0.0);
    }
    for block in estimates.iter_mut() {
        block.iter_mut().for_each(|e| *e = 0.0);
    }
    let owner = sharded.owner_of(NodeId::new(source));
    residuals[owner][(source - sharded.shard(owner).start()) as usize] = 1.0;

    let mut rmax = config.rmax;
    let mut pushes = 0usize;
    let mut conv = Convergence::new();
    loop {
        // Drain at the current granularity: rounds until no frontier.
        loop {
            if pushes >= budget {
                if frontier_nonempty(sharded, deg, rmax, residuals) {
                    return Err(DiffusionError::NotConverged {
                        iterations: pushes,
                        residual: partitioned_bound(deg, sharded.shards(), residuals),
                    });
                }
                break;
            }
            let round = push_round(
                sharded, deg, alpha, rmax, threads, residuals, estimates, outboxes, exchange,
            )?;
            if round == 0 {
                break;
            }
            // This loop is the sequential round barrier of the canonical
            // schedule, so recording here is shard/thread-invariant.
            sink.add("diffusion.sharded.rounds", 1);
            sink.add("diffusion.sharded.pushes", round as u64);
            pushes += round;
        }
        // Certify against the remaining residual mass, exactly like the
        // FIFO engine.
        let bound = partitioned_bound(deg, sharded.shards(), residuals);
        sink.series_push_f("diffusion.sharded.residual_bound", f64::from(bound));
        if conv.record(bound, tolerance) {
            return Ok(());
        }
        rmax *= 0.5;
        if rmax < f32::MIN_POSITIVE && !frontier_nonempty(sharded, deg, rmax, residuals) {
            return Err(DiffusionError::NotConverged {
                iterations: pushes,
                residual: bound,
            });
        }
    }
}

/// Computes the single-source PPR vector `h_s` by sharded forward push,
/// certified to `config.ppr().tolerance()` in L∞.
///
/// Residual and estimate state is partitioned by shard throughout; only
/// cross-shard residual mass moves between rounds. Output is bit-for-bit
/// identical for every `(shards, threads)` combination.
///
/// # Errors
///
/// Returns [`DiffusionError::InvalidParameter`] if `source` is out of range
/// and [`DiffusionError::NotConverged`] if the push budget
/// (`max_iterations · N` pushes) is exhausted.
///
/// # Example
///
/// ```
/// use gdsearch_diffusion::{sharded, PprConfig};
/// use gdsearch_graph::{generators, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(5);
/// let cfg = sharded::ShardedConfig::new(PprConfig::new(0.5)?).with_shards(2)?;
/// let h = sharded::ppr_vector(&g, NodeId::new(0), &cfg)?;
/// assert!(h[0] > h[1] && h[1] > h[2]);
/// # Ok(())
/// # }
/// ```
pub fn ppr_vector(
    graph: &Graph,
    source: NodeId,
    config: &ShardedConfig,
) -> Result<Vec<f32>, DiffusionError> {
    let sharded = ShardedGraph::from_graph(graph, config.shards)?;
    ppr_vector_partitioned(&sharded, source, config)
}

/// [`ppr_vector`] over a prebuilt partition.
///
/// # Errors
///
/// As [`ppr_vector`].
pub fn ppr_vector_partitioned(
    sharded: &ShardedGraph,
    source: NodeId,
    config: &ShardedConfig,
) -> Result<Vec<f32>, DiffusionError> {
    let mut exchange = InProcessExchange::new(sharded, config.threads);
    ppr_vector_with_exchange(sharded, source, config, &mut exchange)
}

/// [`ppr_vector_partitioned`] with an explicit boundary interconnect:
/// cross-shard residual mass moves through `exchange` at every round
/// barrier. Bit-for-bit identical to the in-process result for any
/// implementation honouring the [`crate::exchange`] contract.
///
/// # Errors
///
/// As [`ppr_vector`], plus any [`DiffusionError::Exchange`] the
/// interconnect reports.
pub fn ppr_vector_with_exchange<E: ShardExchange>(
    sharded: &ShardedGraph,
    source: NodeId,
    config: &ShardedConfig,
    exchange: &mut E,
) -> Result<Vec<f32>, DiffusionError> {
    ppr_vector_with_exchange_observed(sharded, source, config, exchange, &mut Sink::disabled())
}

/// [`ppr_vector_with_exchange`] with deterministic work instrumentation:
/// per-round push counts and the certified residual-bound curve are
/// recorded into `sink` at the sequential round barrier of the canonical
/// schedule, so recording never perturbs the result.
///
/// Metrics: `diffusion.sharded.rounds` / `.pushes` (counters),
/// `diffusion.sharded.residual_bound` (float series, one sample per
/// certification).
///
/// # Errors
///
/// As [`ppr_vector_with_exchange`].
pub fn ppr_vector_with_exchange_observed<E: ShardExchange>(
    sharded: &ShardedGraph,
    source: NodeId,
    config: &ShardedConfig,
    exchange: &mut E,
    sink: &mut Sink<'_>,
) -> Result<Vec<f32>, DiffusionError> {
    let n = sharded.num_nodes();
    if source.index() >= n {
        return Err(DiffusionError::invalid_parameter(format!(
            "source {source} out of range for {n} nodes"
        )));
    }
    let deg = DegreeTables::from_sharded(sharded, config.ppr.normalization());
    let (mut residuals, mut estimates, mut outboxes) = push_state(sharded);
    push_column_partitioned(
        sharded,
        &deg,
        source.as_u32(),
        config,
        &mut residuals,
        &mut estimates,
        &mut outboxes,
        exchange,
        sink,
    )?;
    let mut out = Vec::with_capacity(n);
    for block in &estimates {
        out.extend_from_slice(block);
    }
    Ok(out)
}

/// Allocates the per-shard push state (residual blocks, estimate blocks,
/// per-destination outboxes).
fn push_state(sharded: &ShardedGraph) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<Outbox>) {
    let num_shards = sharded.num_shards();
    let residuals: Vec<Vec<f32>> = sharded
        .shards()
        .iter()
        .map(|s| vec![0.0f32; s.num_local_nodes()])
        .collect();
    let estimates = residuals.clone();
    let outboxes = vec![vec![Vec::new(); num_shards]; num_shards];
    (residuals, estimates, outboxes)
}

/// Diffuses a sparse personalization — `(source node, embedding)` pairs —
/// with one sharded push column per distinct source node.
///
/// The sharded sibling of [`crate::push::diffuse_sparse`]: equivalent to
/// the sweep engines at tolerance, bit-for-bit identical for every
/// `(shards, threads)` combination, with residual/estimate state
/// partitioned by shard while each column runs.
///
/// # Errors
///
/// Returns [`DiffusionError::ShapeMismatch`] for ragged embeddings or
/// out-of-range sources, [`DiffusionError::NotConverged`] on push-budget
/// exhaustion.
pub fn diffuse_sparse(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &ShardedConfig,
) -> Result<Signal, DiffusionError> {
    let sharded = ShardedGraph::from_graph(graph, config.shards)?;
    diffuse_sparse_partitioned(&sharded, dim, sources, config)
}

/// [`diffuse_sparse`] with deterministic work instrumentation: the
/// partition is built with [`ShardedGraph::from_graph_observed`] (halo
/// build cost) and every column records through
/// [`diffuse_sparse_with_exchange_observed`].
///
/// # Errors
///
/// As [`diffuse_sparse`].
pub fn diffuse_sparse_observed(
    graph: &Graph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &ShardedConfig,
    sink: &mut Sink<'_>,
) -> Result<Signal, DiffusionError> {
    let sharded = ShardedGraph::from_graph_observed(graph, config.shards, sink)?;
    let mut exchange = InProcessExchange::new(&sharded, config.threads);
    diffuse_sparse_with_exchange_observed(&sharded, dim, sources, config, &mut exchange, sink)
}

/// [`diffuse_sparse`] over a prebuilt partition.
///
/// # Errors
///
/// As [`diffuse_sparse`].
pub fn diffuse_sparse_partitioned(
    sharded: &ShardedGraph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &ShardedConfig,
) -> Result<Signal, DiffusionError> {
    let mut exchange = InProcessExchange::new(sharded, config.threads);
    diffuse_sparse_with_exchange(sharded, dim, sources, config, &mut exchange)
}

/// [`diffuse_sparse_partitioned`] with an explicit boundary interconnect
/// (see [`ppr_vector_with_exchange`]); all columns reuse the same
/// exchange, so transport statistics accumulate across the batch.
///
/// # Errors
///
/// As [`diffuse_sparse`], plus any [`DiffusionError::Exchange`] the
/// interconnect reports.
pub fn diffuse_sparse_with_exchange<E: ShardExchange>(
    sharded: &ShardedGraph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &ShardedConfig,
    exchange: &mut E,
) -> Result<Signal, DiffusionError> {
    diffuse_sparse_with_exchange_observed(
        sharded,
        dim,
        sources,
        config,
        exchange,
        &mut Sink::disabled(),
    )
}

/// [`diffuse_sparse_with_exchange`] with deterministic work
/// instrumentation: every column records its rounds/pushes/residual curve
/// (see [`ppr_vector_with_exchange_observed`]) plus a
/// `diffusion.sharded.columns` counter, all from the sequential
/// column-by-column driver loop.
///
/// # Errors
///
/// As [`diffuse_sparse_with_exchange`].
pub fn diffuse_sparse_with_exchange_observed<E: ShardExchange>(
    sharded: &ShardedGraph,
    dim: usize,
    sources: &[(NodeId, Embedding)],
    config: &ShardedConfig,
    exchange: &mut E,
    sink: &mut Sink<'_>,
) -> Result<Signal, DiffusionError> {
    let n = sharded.num_nodes();
    let mut out = Signal::zeros(n, dim);
    // Group repeated source nodes (diffusion is linear); BTreeMap keeps
    // column order — and with it accumulation order — deterministic.
    let mut grouped: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
    for (node, emb) in sources {
        if emb.dim() != dim || node.index() >= n {
            return Err(DiffusionError::ShapeMismatch {
                expected: (n, dim),
                got: (node.index(), emb.dim()),
            });
        }
        grouped
            .entry(node.as_u32())
            .and_modify(|acc| {
                for (a, e) in acc.iter_mut().zip(emb.as_slice()) {
                    *a += e;
                }
            })
            .or_insert_with(|| emb.as_slice().to_vec());
    }
    if grouped.is_empty() || dim == 0 {
        return Ok(out);
    }
    let deg = DegreeTables::from_sharded(sharded, config.ppr.normalization());
    let (mut residuals, mut estimates, mut outboxes) = push_state(sharded);
    for (source, emb) in &grouped {
        sink.add("diffusion.sharded.columns", 1);
        push_column_partitioned(
            sharded,
            &deg,
            *source,
            config,
            &mut residuals,
            &mut estimates,
            &mut outboxes,
            exchange,
            sink,
        )?;
        // Rank-1 accumulation in ascending node order (shards ascending,
        // local rows ascending): deterministic.
        for (shard, block) in sharded.shards().iter().zip(&estimates) {
            let base = shard.start() as usize;
            for (local, weight) in block.iter().enumerate() {
                if *weight == 0.0 {
                    continue;
                }
                let row = out.row_mut(base + local);
                for (r, e) in row.iter_mut().zip(emb) {
                    *r += weight * e;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{per_source, power, push};
    use gdsearch_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seeded(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn cfg(alpha: f32, tol: f32) -> ShardedConfig {
        ShardedConfig::new(PprConfig::new(alpha).unwrap().with_tolerance(tol).unwrap())
    }

    fn random_signal(n: usize, dim: usize, seed: u64) -> Signal {
        let mut rng = seeded(seed);
        let mut s = Signal::zeros(n, dim);
        for u in 0..n {
            for d in 0..dim {
                s.row_mut(u)[d] = rng.random::<f32>();
            }
        }
        s
    }

    #[test]
    fn sharded_power_is_bitwise_identical_to_dense() {
        let g = generators::social_circles_like_scaled(130, &mut seeded(1)).unwrap();
        let e0 = random_signal(130, 5, 2);
        let ppr = PprConfig::new(0.4).unwrap().with_tolerance(1e-7).unwrap();
        let reference = power::diffuse(&g, &e0, &ppr).unwrap();
        for shards in [1usize, 2, 3, 7, 130] {
            for threads in [1usize, 4] {
                let scfg = ShardedConfig::new(ppr)
                    .with_shards(shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap();
                let out = diffuse(&g, &e0, &scfg).unwrap();
                assert_eq!(
                    out.signal.as_slice(),
                    reference.signal.as_slice(),
                    "{shards} shards × {threads} threads drifted"
                );
                assert_eq!(out.iterations, reference.iterations);
                assert_eq!(out.residual.to_bits(), reference.residual.to_bits());
                assert_eq!(out.converged, reference.converged);
            }
        }
    }

    #[test]
    fn sharded_power_all_normalizations_match_dense() {
        let g = generators::grid(6, 6);
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let ppr = PprConfig::new(0.5)
                .unwrap()
                .with_tolerance(1e-7)
                .unwrap()
                .with_normalization(norm);
            let e0 = random_signal(36, 3, 7);
            let reference = power::diffuse(&g, &e0, &ppr).unwrap();
            let scfg = ShardedConfig::new(ppr).with_shards(5).unwrap();
            let out = diffuse(&g, &e0, &scfg).unwrap();
            assert_eq!(
                out.signal.as_slice(),
                reference.signal.as_slice(),
                "{norm:?} drifted"
            );
        }
    }

    #[test]
    fn sharded_push_is_shard_and_thread_invariant() {
        let g = generators::social_circles_like_scaled(90, &mut seeded(3)).unwrap();
        let base = cfg(0.5, 1e-6);
        let reference = ppr_vector(&g, NodeId::new(11), &base).unwrap();
        for shards in [2usize, 7, 90] {
            for threads in [1usize, 4] {
                let scfg = base
                    .with_shards(shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap();
                let out = ppr_vector(&g, NodeId::new(11), &scfg).unwrap();
                assert_eq!(out, reference, "{shards}×{threads} drifted bitwise");
            }
        }
    }

    #[test]
    fn sharded_push_matches_fifo_push_and_sweep_to_tolerance() {
        let g = generators::social_circles_like_scaled(80, &mut seeded(4)).unwrap();
        let tol = 1e-6f32;
        let scfg = cfg(0.3, tol).with_shards(4).unwrap();
        let h = ppr_vector(&g, NodeId::new(7), &scfg).unwrap();
        let fifo =
            push::ppr_vector(&g, NodeId::new(7), &push::PushConfig::new(*scfg.ppr())).unwrap();
        let sweep = per_source::ppr_vector(&g, NodeId::new(7), scfg.ppr()).unwrap();
        // Engine pairs agree to the shared accuracy contract (the same
        // slack the push-vs-sweep tests in `crate::push` use).
        for u in 0..80 {
            assert!((h[u] - fifo[u]).abs() < 1e-4, "node {u} vs fifo");
            assert!((h[u] - sweep[u]).abs() < 1e-4, "node {u} vs sweep");
        }
        let mass: f32 = h.iter().sum();
        assert!((mass - 1.0).abs() < 1e-3, "column mass {mass}");
    }

    #[test]
    fn sharded_diffuse_sparse_matches_fifo_batch() {
        let g = generators::social_circles_like_scaled(70, &mut seeded(5)).unwrap();
        let dim = 4;
        let mut rng = seeded(6);
        let sources: Vec<(NodeId, Embedding)> = (0..5)
            .map(|_| {
                (
                    NodeId::new(rng.random_range(0..70)),
                    Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
                )
            })
            .collect();
        let scfg = cfg(0.5, 1e-6).with_shards(3).unwrap();
        let out = diffuse_sparse(&g, dim, &sources, &scfg).unwrap();
        let fifo =
            push::diffuse_sparse(&g, dim, &sources, &push::PushConfig::new(*scfg.ppr())).unwrap();
        assert!(out.max_abs_diff(&fifo).unwrap() < 1e-4);
        // And shard/thread invariance of the batched driver.
        for shards in [1usize, 7] {
            for threads in [1usize, 4] {
                let alt = cfg(0.5, 1e-6)
                    .with_shards(shards)
                    .unwrap()
                    .with_threads(threads)
                    .unwrap();
                assert_eq!(diffuse_sparse(&g, dim, &sources, &alt).unwrap(), out);
            }
        }
    }

    #[test]
    fn observed_engines_match_unobserved_and_registries_are_thread_invariant() {
        use gdsearch_obs::{MetricValue, MetricsRegistry, Sink};
        let g = generators::social_circles_like_scaled(90, &mut seeded(21)).unwrap();
        let e0 = random_signal(90, 3, 22);
        let base = cfg(0.4, 1e-6).with_shards(3).unwrap();
        let reference = diffuse(&g, &e0, &base).unwrap();
        let sparse_sources = vec![
            (NodeId::new(4), Embedding::new(vec![1.0, 0.5])),
            (NodeId::new(61), Embedding::new(vec![0.25, 2.0])),
        ];
        let sparse_reference = diffuse_sparse(&g, 2, &sparse_sources, &base).unwrap();
        let mut registries = Vec::new();
        for threads in [1usize, 2, 4] {
            let scfg = base.with_threads(threads).unwrap();
            let mut reg = MetricsRegistry::new();
            let out = diffuse_observed(&g, &e0, &scfg, &mut Sink::attached(&mut reg)).unwrap();
            assert_eq!(
                out.signal.as_slice(),
                reference.signal.as_slice(),
                "instrumentation must not perturb the sweep ({threads} threads)"
            );
            let sparse = diffuse_sparse_observed(
                &g,
                2,
                &sparse_sources,
                &scfg,
                &mut Sink::attached(&mut reg),
            )
            .unwrap();
            assert_eq!(
                sparse, sparse_reference,
                "instrumentation must not perturb the push ({threads} threads)"
            );
            registries.push(reg);
        }
        // Work-unit registries are bit-identical across thread counts.
        assert_eq!(registries[0], registries[1]);
        assert_eq!(registries[0], registries[2]);
        // And they actually recorded the expected shape of work.
        match registries[0].get("diffusion.sharded.sweeps") {
            Some(MetricValue::Counter(sweeps)) => {
                assert_eq!(*sweeps as usize, reference.iterations);
            }
            other => panic!("sweeps: expected counter, got {other:?}"),
        }
        match registries[0].get("diffusion.sharded.residual") {
            Some(MetricValue::FloatSeries(curve)) => {
                assert_eq!(curve.len(), reference.iterations);
                assert!(curve.windows(2).all(|w| w[1] <= w[0] * 1.5));
            }
            other => panic!("residual: expected float series, got {other:?}"),
        }
        match registries[0].get("diffusion.sharded.pushes") {
            Some(MetricValue::Counter(pushes)) => assert!(*pushes > 0),
            other => panic!("pushes: expected counter, got {other:?}"),
        }
        match registries[0].get("graph.sharded.halo_bytes") {
            Some(MetricValue::Counter(bytes)) => assert!(*bytes > 0),
            other => panic!("halo_bytes: expected counter, got {other:?}"),
        }
    }

    #[test]
    fn alpha_one_is_pure_teleport() {
        let g = generators::ring(6).unwrap();
        let scfg = cfg(1.0, 1e-6).with_shards(3).unwrap();
        let h = ppr_vector(&g, NodeId::new(2), &scfg).unwrap();
        assert!((h[2] - 1.0).abs() < 1e-6);
        assert!(h.iter().enumerate().all(|(u, &v)| u == 2 || v == 0.0));
    }

    #[test]
    fn isolated_node_keeps_teleport_share_only() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let scfg = cfg(0.5, 1e-7).with_shards(2).unwrap();
        let h = ppr_vector(&g, NodeId::new(2), &scfg).unwrap();
        assert!((h[2] - 0.5).abs() < 1e-6);
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn rejects_invalid_knobs_and_inputs() {
        let ppr = PprConfig::default();
        assert!(ShardedConfig::new(ppr).with_shards(0).is_err());
        assert!(ShardedConfig::new(ppr).with_threads(0).is_err());
        assert!(ShardedConfig::new(ppr).with_rmax(0.0).is_err());
        assert!(ShardedConfig::new(ppr).with_rmax(f32::NAN).is_err());
        let g = generators::ring(5).unwrap();
        let scfg = ShardedConfig::new(ppr);
        assert!(ppr_vector(&g, NodeId::new(9), &scfg).is_err());
        assert!(diffuse(&g, &Signal::zeros(6, 1), &scfg).is_err());
        assert!(diffuse_sparse(&g, 2, &[(NodeId::new(9), Embedding::zeros(2))], &scfg).is_err());
        assert!(diffuse_sparse(&g, 2, &[(NodeId::new(0), Embedding::zeros(3))], &scfg).is_err());
    }

    #[test]
    fn budget_exhaustion_errors() {
        let g = generators::ring(30).unwrap();
        let ppr = PprConfig::new(0.01)
            .unwrap()
            .with_tolerance(1e-12)
            .unwrap()
            .with_max_iterations(1);
        let scfg = ShardedConfig::new(ppr).with_shards(3).unwrap();
        assert!(matches!(
            ppr_vector(&g, NodeId::new(0), &scfg),
            Err(DiffusionError::NotConverged { .. })
        ));
    }

    #[test]
    fn zero_dim_and_empty_sources_degenerate_cleanly() {
        let g = generators::ring(5).unwrap();
        let scfg = ShardedConfig::new(PprConfig::default())
            .with_shards(2)
            .unwrap();
        let out = diffuse(&g, &Signal::zeros(5, 0), &scfg).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        let out = diffuse_sparse(&g, 3, &[], &scfg).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn duplicate_sources_accumulate() {
        let g = generators::ring(12).unwrap();
        let sources = vec![
            (NodeId::new(3), Embedding::new(vec![1.0, 0.0])),
            (NodeId::new(3), Embedding::new(vec![0.5, 2.0])),
        ];
        let scfg = cfg(0.5, 1e-7).with_shards(4).unwrap();
        let out = diffuse_sparse(&g, 2, &sources, &scfg).unwrap();
        let e0 = Signal::from_sparse_rows(12, 2, &sources).unwrap();
        let dense = power::diffuse(&g, &e0, scfg.ppr()).unwrap().signal;
        assert!(out.max_abs_diff(&dense).unwrap() < 1e-4);
    }

    use gdsearch_graph::Graph;
}
