use std::error::Error;
use std::fmt;

use gdsearch_embed::EmbedError;
use gdsearch_graph::GraphError;

/// Errors produced by diffusion engines and graph filters.
#[derive(Debug)]
#[non_exhaustive]
pub enum DiffusionError {
    /// A parameter is outside its valid domain (e.g. `alpha` outside
    /// `(0, 1]`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Signal and graph disagree on the number of nodes, or two signals
    /// disagree on shape.
    ShapeMismatch {
        /// Expected (nodes, dim).
        expected: (usize, usize),
        /// Supplied (nodes, dim).
        got: (usize, usize),
    },
    /// An iterative engine hit its iteration budget before reaching the
    /// requested tolerance. The partial result is usually still usable;
    /// engines that can return it do.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the budget ran out.
        residual: f32,
    },
    /// Propagated graph-substrate error.
    Graph(GraphError),
    /// Propagated embedding-substrate error.
    Embed(EmbedError),
    /// A [`ShardExchange`](crate::exchange::ShardExchange) implementation
    /// failed to move boundary data between shards (transport failure,
    /// malformed frame, exhausted retransmission budget, …).
    Exchange {
        /// Human-readable description of the transport failure.
        reason: String,
    },
}

impl DiffusionError {
    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        DiffusionError::InvalidParameter {
            reason: reason.into(),
        }
    }

    /// Constructs an [`DiffusionError::Exchange`] error — public so
    /// out-of-crate [`ShardExchange`](crate::exchange::ShardExchange)
    /// implementations (e.g. transport-backed ones) can report failures.
    #[must_use]
    pub fn exchange(reason: impl Into<String>) -> Self {
        DiffusionError::Exchange {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            DiffusionError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            DiffusionError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "diffusion did not converge after {iterations} iterations (residual {residual})"
            ),
            DiffusionError::Graph(e) => write!(f, "graph error: {e}"),
            DiffusionError::Embed(e) => write!(f, "embedding error: {e}"),
            DiffusionError::Exchange { reason } => {
                write!(f, "shard exchange failed: {reason}")
            }
        }
    }
}

impl Error for DiffusionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DiffusionError::Graph(e) => Some(e),
            DiffusionError::Embed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DiffusionError {
    fn from(e: GraphError) -> Self {
        DiffusionError::Graph(e)
    }
}

impl From<EmbedError> for DiffusionError {
    fn from(e: EmbedError) -> Self {
        DiffusionError::Embed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DiffusionError::ShapeMismatch {
            expected: (10, 3),
            got: (10, 4),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 10x3, got 10x4");
        let e = DiffusionError::NotConverged {
            iterations: 100,
            residual: 0.5,
        };
        assert!(e.to_string().contains("100 iterations"));
        let e = DiffusionError::exchange("frame lost");
        assert_eq!(e.to_string(), "shard exchange failed: frame lost");
    }

    #[test]
    fn sources_are_exposed() {
        let e = DiffusionError::from(GraphError::SelfLoop { node: 1 });
        assert!(e.source().is_some());
        let e = DiffusionError::from(EmbedError::EmptyCorpus);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiffusionError>();
    }
}
