use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SimError;

/// Distribution of per-message link delays.
///
/// # Example
///
/// ```
/// use gdsearch_sim::LatencyModel;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), gdsearch_sim::SimError> {
/// let model = LatencyModel::uniform(0.01, 0.05)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let d = model.sample(&mut rng);
/// assert!((0.01..=0.05).contains(&d));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this many seconds.
    Constant(f64),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum delay (seconds).
        min: f64,
        /// Maximum delay (seconds).
        max: f64,
    },
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean delay (seconds).
        mean: f64,
    },
}

impl LatencyModel {
    /// Constant latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn constant(secs: f64) -> Result<Self, SimError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(SimError::invalid_parameter(
                "constant latency must be non-negative and finite",
            ));
        }
        Ok(LatencyModel::Constant(secs))
    }

    /// Uniform latency in `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] unless
    /// `0 <= min <= max < ∞`.
    pub fn uniform(min: f64, max: f64) -> Result<Self, SimError> {
        if !min.is_finite() || !max.is_finite() || min < 0.0 || max < min {
            return Err(SimError::invalid_parameter(
                "uniform latency needs 0 <= min <= max",
            ));
        }
        Ok(LatencyModel::Uniform { min, max })
    }

    /// Exponential latency with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive or
    /// non-finite means.
    pub fn exponential(mean: f64) -> Result<Self, SimError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(SimError::invalid_parameter(
                "exponential latency needs a positive mean",
            ));
        }
        Ok(LatencyModel::Exponential { mean })
    }

    /// Samples one delay in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyModel::Constant(secs) => secs,
            LatencyModel::Uniform { min, max } => {
                if max > min {
                    rng.random_range(min..=max)
                } else {
                    min
                }
            }
            LatencyModel::Exponential { mean } => {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * mean
            }
        }
    }
}

impl Default for LatencyModel {
    /// Instant delivery — suitable for experiments that only count hops.
    fn default() -> Self {
        LatencyModel::Constant(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant(0.25).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 0.25);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::uniform(0.1, 0.2).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let d = m.sample(&mut r);
            assert!((0.1..=0.2).contains(&d));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::uniform(0.3, 0.3).unwrap();
        assert_eq!(m.sample(&mut rng()), 0.3);
    }

    #[test]
    fn exponential_mean_is_close() {
        let m = LatencyModel::exponential(2.0).unwrap();
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut r)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn validation() {
        assert!(LatencyModel::constant(-1.0).is_err());
        assert!(LatencyModel::constant(f64::NAN).is_err());
        assert!(LatencyModel::uniform(0.5, 0.1).is_err());
        assert!(LatencyModel::uniform(-0.1, 0.1).is_err());
        assert!(LatencyModel::exponential(0.0).is_err());
        assert!(LatencyModel::exponential(f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_instant() {
        assert_eq!(LatencyModel::default().sample(&mut rng()), 0.0);
    }
}
