//! Node churn (failure injection) schedules.
//!
//! P2P populations are never stable; the paper defers "time-evolving
//! conditions" to future work, but the simulator supports them so the
//! search scheme can be stress-tested: messages to a down node are dropped,
//! and handlers of down nodes do not run.

use gdsearch_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{SimError, SimTime};

/// Whether a churn event takes a node down or brings it back up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// Node leaves the network.
    Down,
    /// Node rejoins the network.
    Up,
}

/// One scheduled availability change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the change happens.
    pub time: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Down or up.
    pub kind: ChurnKind,
}

/// A time-sorted list of churn events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// The empty schedule (no churn).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Builds a schedule from events, sorting them by time.
    pub fn from_events(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|a| a.time);
        ChurnSchedule { events }
    }

    /// Generates random fail/recover cycles: each node independently fails
    /// with probability `fail_probability`; a failed node goes down at a
    /// uniform time in `[0, horizon)` and recovers `downtime` seconds later
    /// (if that is before the horizon).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for probabilities outside
    /// `[0, 1]` or non-positive horizon/downtime.
    pub fn random_failures<R: Rng + ?Sized>(
        num_nodes: u32,
        fail_probability: f64,
        horizon: f64,
        downtime: f64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&fail_probability) || fail_probability.is_nan() {
            return Err(SimError::invalid_parameter(
                "fail_probability must lie in [0, 1]",
            ));
        }
        if !horizon.is_finite() || horizon <= 0.0 || !downtime.is_finite() || downtime <= 0.0 {
            return Err(SimError::invalid_parameter(
                "horizon and downtime must be positive and finite",
            ));
        }
        let mut events = Vec::new();
        for u in 0..num_nodes {
            if rng.random_bool(fail_probability) {
                let down_at = rng.random_range(0.0..horizon);
                events.push(ChurnEvent {
                    time: SimTime::new(down_at).expect("in range"),
                    node: NodeId::new(u),
                    kind: ChurnKind::Down,
                });
                let up_at = down_at + downtime;
                if up_at < horizon {
                    events.push(ChurnEvent {
                        time: SimTime::new(up_at).expect("in range"),
                        node: NodeId::new(u),
                        kind: ChurnKind::Up,
                    });
                }
            }
        }
        Ok(ChurnSchedule::from_events(events))
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_events_sorts() {
        let s = ChurnSchedule::from_events(vec![
            ChurnEvent {
                time: SimTime::new(2.0).unwrap(),
                node: NodeId::new(0),
                kind: ChurnKind::Up,
            },
            ChurnEvent {
                time: SimTime::new(1.0).unwrap(),
                node: NodeId::new(0),
                kind: ChurnKind::Down,
            },
        ]);
        assert_eq!(s.events()[0].kind, ChurnKind::Down);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn random_failures_are_paired_and_ordered() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = ChurnSchedule::random_failures(100, 0.3, 10.0, 1.0, &mut rng).unwrap();
        assert!(!s.is_empty());
        for w in s.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Each down within horizon - downtime has a matching up.
        let downs = s
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Down)
            .count();
        let ups = s
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Up)
            .count();
        assert!(ups <= downs);
        assert!(downs <= 100);
    }

    #[test]
    fn zero_probability_is_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = ChurnSchedule::random_failures(50, 0.0, 10.0, 1.0, &mut rng).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(ChurnSchedule::random_failures(10, -0.1, 10.0, 1.0, &mut rng).is_err());
        assert!(ChurnSchedule::random_failures(10, 0.5, 0.0, 1.0, &mut rng).is_err());
        assert!(ChurnSchedule::random_failures(10, 0.5, 10.0, -1.0, &mut rng).is_err());
    }
}
