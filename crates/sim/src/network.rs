//! The discrete-event network simulator.

use gdsearch_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::{ChurnKind, ChurnSchedule};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::{EventQueue, LatencyModel, NetStats, SimError, SimTime, WireMessage};

/// Protocol logic attached to every node: invoked once per delivered
/// message.
///
/// Handlers are per-node state machines; the simulator owns one handler
/// instance per node and never shares them across nodes, so no interior
/// synchronization is needed.
pub trait NodeHandler<M> {
    /// Processes `msg` delivered to this node from `from` (`None` for
    /// external injections). Use `api` to inspect the topology, sample
    /// randomness and send messages to neighbors.
    fn handle(&mut self, from: Option<NodeId>, msg: M, api: &mut NodeApi<'_, M>);
}

/// Capabilities exposed to a [`NodeHandler`] while processing one message.
#[derive(Debug)]
pub struct NodeApi<'a, M> {
    node: NodeId,
    now: SimTime,
    neighbors: &'a [NodeId],
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(NodeId, M)>,
    /// Outgoing-link occupancy view of the bounded transport; `None` on
    /// the instant backend, whose links are infinitely wide.
    backpressure: Option<LinkCapacityView<'a>>,
}

/// Occupancy of a node's outgoing link queues during one handler
/// activation of the bounded-transport reactor.
///
/// A directed link `u → v` only ever gains messages from `u` itself, and
/// the reactor drains queues strictly between handler activations, so a
/// snapshot of the queue depths taken when the activation starts, plus a
/// count of the activation's own sends, is an *exact* view of the
/// occupancy those sends will meet — not a stale heuristic. (With random
/// loss enabled it becomes a conservative upper bound: lost sends are
/// discarded before reaching the queue, so fewer messages may occupy it
/// than were counted.) This is what makes [`NodeApi::poll_ready`]
/// reliable enough to build protocol-level backpressure on.
#[derive(Debug)]
pub(crate) struct LinkCapacityView<'a> {
    /// Maximum messages a link queue holds.
    pub(crate) capacity: usize,
    /// Queue depth per neighbor (indexed like `neighbors`) when this
    /// activation started.
    pub(crate) depths: &'a [u32],
    /// Messages this activation has already queued per neighbor.
    pub(crate) pending: &'a mut [u32],
}

impl<'a, M> NodeApi<'a, M> {
    /// Assembles an API handle; `backpressure` is `Some` only on the
    /// bounded-transport backend.
    pub(crate) fn new(
        node: NodeId,
        now: SimTime,
        neighbors: &'a [NodeId],
        rng: &'a mut StdRng,
        outbox: &'a mut Vec<(NodeId, M)>,
        backpressure: Option<LinkCapacityView<'a>>,
    ) -> Self {
        NodeApi {
            node,
            now,
            neighbors,
            rng,
            outbox,
            backpressure,
        }
    }
    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's neighbors, sorted by id.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// A uniformly random neighbor, or `None` for isolated nodes.
    pub fn random_neighbor(&mut self) -> Option<NodeId> {
        if self.neighbors.is_empty() {
            None
        } else {
            Some(self.neighbors[self.rng.random_range(0..self.neighbors.len())])
        }
    }

    /// The simulation RNG (deterministic under the network seed).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues `msg` for transmission to `to`. The transport applies
    /// latency, loss and churn; sending to a non-neighbor is allowed only
    /// for protocols that maintain out-of-band routes (the instant backend
    /// does not forbid it, mirroring an IP underlay; the bounded reactor
    /// drops such sends as `dropped_no_route`), but the paper's protocol
    /// only ever sends to neighbors.
    ///
    /// On the bounded backend a `send` onto a full link queue is dropped
    /// by the transport and counted as `dropped_backpressure`; use
    /// [`NodeApi::poll_ready`] / [`NodeApi::try_send`] to react to
    /// saturation instead of losing messages.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.note_pending(to);
        self.outbox.push((to, msg));
    }

    /// Whether the link to `to` can accept one more message right now.
    ///
    /// Always `true` on the instant backend. On the bounded reactor this
    /// is exact for lossless links — a directed link only ever gains
    /// messages from its own sender, so the depth snapshot taken at
    /// activation start plus the messages this activation already queued
    /// is the true occupancy (a conservative upper bound when random loss
    /// discards some sends before they reach the queue). Returns `false`
    /// for destinations with no link (non-neighbors).
    pub fn poll_ready(&self, to: NodeId) -> bool {
        match &self.backpressure {
            None => true,
            Some(view) => match self.neighbors.binary_search(&to) {
                Err(_) => false,
                Ok(i) => (view.depths[i] as usize) + (view.pending[i] as usize) < view.capacity,
            },
        }
    }

    /// Sends `msg` to `to` only if the link has room, returning the
    /// message back to the caller otherwise so it can be re-routed,
    /// buffered or dropped deliberately.
    ///
    /// Equivalent to [`NodeApi::send`] on the instant backend (which never
    /// exerts backpressure).
    ///
    /// # Errors
    ///
    /// Returns `Err(msg)` when [`NodeApi::poll_ready`] is `false`.
    pub fn try_send(&mut self, to: NodeId, msg: M) -> Result<(), M> {
        if self.poll_ready(to) {
            self.send(to, msg);
            Ok(())
        } else {
            Err(msg)
        }
    }

    /// Records a queued send in the capacity view so later
    /// [`NodeApi::poll_ready`] calls in the same activation stay exact.
    fn note_pending(&mut self, to: NodeId) {
        if let Some(view) = &mut self.backpressure {
            if let Ok(i) = self.neighbors.binary_search(&to) {
                view.pending[i] += 1;
            }
        }
    }
}

/// Configuration of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    latency: LatencyModel,
    loss_probability: f64,
    seed: u64,
    trace_capacity: usize,
    churn: ChurnSchedule,
}

impl Default for NetworkConfig {
    /// Instant, lossless, churn-free transport with seed 0 and no trace.
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            loss_probability: 0.0,
            seed: 0,
            trace_capacity: 0,
            churn: ChurnSchedule::none(),
        }
    }
}

impl NetworkConfig {
    /// Sets the link latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the independent per-message loss probability.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] outside `[0, 1]`.
    pub fn with_loss_probability(mut self, p: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(SimError::invalid_parameter(
                "loss probability must lie in [0, 1]",
            ));
        }
        self.loss_probability = p;
        Ok(self)
    }

    /// Sets the RNG seed (simulations are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables transport tracing with the given ring-buffer capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Installs a churn schedule.
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        self.churn = churn;
        self
    }
}

enum Event<M> {
    Deliver {
        from: Option<NodeId>,
        to: NodeId,
        msg: M,
        bytes: usize,
    },
    Churn {
        node: NodeId,
        kind: ChurnKind,
    },
}

/// Discrete-event message-passing simulator over a fixed overlay graph.
///
/// Generic over the message type `M` and per-node handler `H`; see the
/// crate-level example. Drive it with [`Network::inject`] +
/// [`Network::run_to_completion`] (until no events remain) or
/// [`Network::run_until`] (until a virtual deadline).
pub struct Network<M, H> {
    graph: Graph,
    handlers: Vec<H>,
    up: Vec<bool>,
    queue: EventQueue<Event<M>>,
    rng: StdRng,
    now: SimTime,
    stats: NetStats,
    trace: Trace,
    latency: LatencyModel,
    loss_probability: f64,
    outbox: Vec<(NodeId, M)>,
}

impl<M, H> Network<M, H>
where
    M: WireMessage,
    H: NodeHandler<M>,
{
    /// Creates a network over `graph` with one handler per node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `handlers.len()` differs
    /// from the node count.
    pub fn new(graph: Graph, handlers: Vec<H>, config: NetworkConfig) -> Result<Self, SimError> {
        if handlers.len() != graph.num_nodes() {
            return Err(SimError::invalid_parameter(format!(
                "expected one handler per node ({}), got {}",
                graph.num_nodes(),
                handlers.len()
            )));
        }
        let mut queue = EventQueue::new();
        for ev in config.churn.events() {
            queue.push(
                ev.time,
                Event::Churn {
                    node: ev.node,
                    kind: ev.kind,
                },
            );
        }
        let up = vec![true; graph.num_nodes()];
        Ok(Network {
            graph,
            handlers,
            up,
            queue,
            rng: StdRng::seed_from_u64(config.seed),
            now: SimTime::ZERO,
            stats: NetStats::default(),
            trace: Trace::new(config.trace_capacity),
            latency: config.latency,
            loss_probability: config.loss_probability,
            outbox: Vec::new(),
        })
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The transport trace (empty unless enabled in the config).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether `node` is currently up.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn is_up(&self, node: NodeId) -> Result<bool, SimError> {
        self.check_node(node)?;
        Ok(self.up[node.index()])
    }

    /// Shared access to a node's handler (e.g. to read protocol state after
    /// a run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn handler(&self, node: NodeId) -> Result<&H, SimError> {
        self.check_node(node)?;
        Ok(&self.handlers[node.index()])
    }

    /// Mutable access to a node's handler (e.g. to install documents before
    /// a run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn handler_mut(&mut self, node: NodeId) -> Result<&mut H, SimError> {
        self.check_node(node)?;
        Ok(&mut self.handlers[node.index()])
    }

    /// Injects an external message to `node` at the current time (e.g. a
    /// user issuing a query).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn inject(&mut self, node: NodeId, msg: M) -> Result<(), SimError> {
        self.check_node(node)?;
        let bytes = msg.wire_size();
        self.queue.push(
            self.now,
            Event::Deliver {
                from: None,
                to: node,
                msg,
                bytes,
            },
        );
        Ok(())
    }

    /// Processes events until the queue drains, up to `max_events`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if events remain after
    /// the budget.
    pub fn run_to_completion(&mut self, max_events: usize) -> Result<usize, SimError> {
        let mut processed = 0;
        while processed < max_events {
            if self.step().is_none() {
                return Ok(processed);
            }
            processed += 1;
        }
        if self.queue.is_empty() {
            Ok(processed)
        } else {
            Err(SimError::EventBudgetExhausted { processed })
        }
    }

    /// Processes events with time ≤ `deadline`; later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        self.now = self.now.max(deadline);
        processed
    }

    /// Processes the next event, if any. Returns the event's time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.queue.pop()?;
        self.now = time;
        match event {
            Event::Churn { node, kind } => {
                self.up[node.index()] = matches!(kind, ChurnKind::Up);
            }
            Event::Deliver {
                from,
                to,
                msg,
                bytes,
            } => {
                if !self.up[to.index()] {
                    self.stats.dropped_down += 1;
                    self.trace.record(TraceEvent {
                        time,
                        kind: TraceKind::DroppedDown,
                        from,
                        to,
                        bytes,
                    });
                } else {
                    self.stats.delivered += 1;
                    self.trace.record(TraceEvent {
                        time,
                        kind: TraceKind::Delivered,
                        from,
                        to,
                        bytes,
                    });
                    self.outbox.clear();
                    let mut api = NodeApi::new(
                        to,
                        time,
                        self.graph.neighbor_slice(to),
                        &mut self.rng,
                        &mut self.outbox,
                        None,
                    );
                    self.handlers[to.index()].handle(from, msg, &mut api);
                    // Transmit everything the handler queued.
                    let queued: Vec<(NodeId, M)> = self.outbox.drain(..).collect();
                    for (dest, out_msg) in queued {
                        self.transmit(to, dest, out_msg);
                    }
                }
            }
        }
        Some(time)
    }

    /// Applies loss/churn/latency to a message from `from` to `to`.
    fn transmit(&mut self, from: NodeId, to: NodeId, msg: M) {
        let bytes = msg.wire_size();
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.trace.record(TraceEvent {
            time: self.now,
            kind: TraceKind::Sent,
            from: Some(from),
            to,
            bytes,
        });
        if self.loss_probability > 0.0 && self.rng.random_bool(self.loss_probability) {
            self.stats.lost += 1;
            self.trace.record(TraceEvent {
                time: self.now,
                kind: TraceKind::Lost,
                from: Some(from),
                to,
                bytes,
            });
            return;
        }
        let delay = self.latency.sample(&mut self.rng);
        self.queue.push(
            self.now.after(delay),
            Event::Deliver {
                from: Some(from),
                to,
                msg,
                bytes,
            },
        );
    }

    fn check_node(&self, node: NodeId) -> Result<(), SimError> {
        if node.index() < self.graph.num_nodes() {
            Ok(())
        } else {
            Err(SimError::NodeOutOfRange {
                node: node.as_u32(),
                num_nodes: self.graph.num_nodes() as u32,
            })
        }
    }
}

impl<M, H> std::fmt::Debug for Network<M, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.graph.num_nodes())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnEvent;
    use gdsearch_graph::generators;

    /// Counts deliveries; forwards `hops` more times round-robin.
    #[derive(Clone, Debug)]
    struct Hop(u32);

    impl WireMessage for Hop {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[derive(Default)]
    struct Counter {
        received: u32,
    }

    impl NodeHandler<Hop> for Counter {
        fn handle(&mut self, _from: Option<NodeId>, msg: Hop, api: &mut NodeApi<'_, Hop>) {
            self.received += 1;
            if msg.0 > 0 {
                // Deterministic next hop: first neighbor.
                let next = api.neighbors()[0];
                api.send(next, Hop(msg.0 - 1));
            }
        }
    }

    fn counters(n: usize) -> Vec<Counter> {
        (0..n).map(|_| Counter::default()).collect()
    }

    #[test]
    fn relay_chain_terminates() {
        let g = generators::ring(5).unwrap();
        let mut net = Network::new(g, counters(5), NetworkConfig::default()).unwrap();
        net.inject(NodeId::new(0), Hop(7)).unwrap();
        let processed = net.run_to_completion(1000).unwrap();
        assert_eq!(processed, 8); // 1 injection + 7 relays
        assert_eq!(net.stats().delivered, 8);
        assert_eq!(net.stats().sent, 7); // injection not counted as sent
        assert_eq!(net.stats().bytes_sent, 28);
    }

    #[test]
    fn handler_count_must_match() {
        let g = generators::ring(5).unwrap();
        assert!(Network::new(g, counters(4), NetworkConfig::default()).is_err());
    }

    #[test]
    fn loss_drops_messages() {
        let g = generators::ring(4).unwrap();
        let cfg = NetworkConfig::default()
            .with_loss_probability(1.0)
            .unwrap()
            .with_seed(3);
        let mut net = Network::new(g, counters(4), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(5)).unwrap();
        net.run_to_completion(100).unwrap();
        // The injected message is delivered; its relay is lost.
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn churn_drops_deliveries_to_down_nodes() {
        let g = generators::path(3); // 0 - 1 - 2
        let churn = ChurnSchedule::from_events(vec![ChurnEvent {
            time: SimTime::ZERO,
            node: NodeId::new(1),
            kind: ChurnKind::Down,
        }]);
        let cfg = NetworkConfig::default().with_churn(churn);
        let mut net = Network::new(g, counters(3), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(3)).unwrap();
        net.run_to_completion(100).unwrap();
        // Node 0 receives the injection and forwards to node 1, which is
        // down: the message dies there.
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().dropped_down, 1);
        assert_eq!(net.handler(NodeId::new(1)).unwrap().received, 0);
    }

    #[test]
    fn node_comes_back_up() {
        let g = generators::path(2);
        let churn = ChurnSchedule::from_events(vec![
            ChurnEvent {
                time: SimTime::ZERO,
                node: NodeId::new(1),
                kind: ChurnKind::Down,
            },
            ChurnEvent {
                time: SimTime::new(1.0).unwrap(),
                node: NodeId::new(1),
                kind: ChurnKind::Up,
            },
        ]);
        let cfg = NetworkConfig::default()
            .with_latency(LatencyModel::constant(2.0).unwrap())
            .with_churn(churn);
        let mut net = Network::new(g, counters(2), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(1)).unwrap();
        net.run_to_completion(100).unwrap();
        // The relay takes 2.0s; node 1 recovered at 1.0s, so it arrives.
        assert_eq!(net.handler(NodeId::new(1)).unwrap().received, 1);
    }

    #[test]
    fn latency_orders_deliveries() {
        let g = generators::ring(4).unwrap();
        let cfg = NetworkConfig::default()
            .with_latency(LatencyModel::constant(0.5).unwrap())
            .with_trace_capacity(64);
        let mut net = Network::new(g, counters(4), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(2)).unwrap();
        net.run_to_completion(100).unwrap();
        assert!((net.now().as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(net.trace().count(crate::trace::TraceKind::Delivered), 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        let g = generators::ring(4).unwrap();
        let cfg = NetworkConfig::default().with_latency(LatencyModel::constant(1.0).unwrap());
        let mut net = Network::new(g, counters(4), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(10)).unwrap();
        let processed = net.run_until(SimTime::new(2.5).unwrap());
        // Events at t=0 (injection), t=1, t=2 fire; t=3 stays queued.
        assert_eq!(processed, 3);
        assert_eq!(net.now(), SimTime::new(2.5).unwrap());
    }

    #[test]
    fn event_budget_is_enforced() {
        let g = generators::ring(4).unwrap();
        let mut net = Network::new(g, counters(4), NetworkConfig::default()).unwrap();
        net.inject(NodeId::new(0), Hop(100)).unwrap();
        assert!(matches!(
            net.run_to_completion(5),
            Err(SimError::EventBudgetExhausted { processed: 5 })
        ));
    }

    #[test]
    fn injection_validates_node() {
        let g = generators::ring(4).unwrap();
        let mut net = Network::new(g, counters(4), NetworkConfig::default()).unwrap();
        assert!(net.inject(NodeId::new(9), Hop(1)).is_err());
        assert!(net.is_up(NodeId::new(9)).is_err());
        assert!(net.is_up(NodeId::new(1)).unwrap());
    }

    #[test]
    fn determinism_under_seed() {
        let make = || {
            let g = generators::social_circles_like_scaled(30, &mut {
                use rand::SeedableRng;
                rand::rngs::StdRng::seed_from_u64(1)
            })
            .unwrap();
            let cfg = NetworkConfig::default()
                .with_latency(LatencyModel::exponential(0.1).unwrap())
                .with_loss_probability(0.1)
                .unwrap()
                .with_seed(42);
            let mut net = Network::new(g, counters(30), cfg).unwrap();
            net.inject(NodeId::new(0), Hop(50)).unwrap();
            net.run_to_completion(10_000).unwrap();
            *net.stats()
        };
        assert_eq!(make(), make());
    }
}
