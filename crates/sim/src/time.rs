use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// Virtual simulation time, in abstract seconds.
///
/// Totally ordered (NaN is rejected at construction) so it can key the
/// event queue.
///
/// # Example
///
/// ```
/// use gdsearch_sim::SimTime;
///
/// let t = SimTime::new(1.5).unwrap() + SimTime::new(0.5).unwrap();
/// assert_eq!(t.as_secs(), 2.0);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point; returns `None` for negative, NaN or infinite
    /// values.
    pub fn new(secs: f64) -> Option<Self> {
        if secs.is_finite() && secs >= 0.0 {
            Some(SimTime(secs))
        } else {
            None
        }
    }

    /// The time value in abstract seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This time advanced by `delay` seconds (saturating at the maximum
    /// finite value; negative or NaN delays are treated as zero).
    pub fn after(self, delay: f64) -> SimTime {
        let d = if delay.is_finite() && delay > 0.0 {
            delay
        } else {
            0.0
        };
        SimTime((self.0 + d).min(f64::MAX))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SimTime::new(0.0).is_some());
        assert!(SimTime::new(3.5).is_some());
        assert!(SimTime::new(-1.0).is_none());
        assert!(SimTime::new(f64::NAN).is_none());
        assert!(SimTime::new(f64::INFINITY).is_none());
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0).unwrap();
        let b = SimTime::new(2.0).unwrap();
        assert!(a < b);
        assert_eq!((a + b).as_secs(), 3.0);
        assert_eq!(a.after(0.5).as_secs(), 1.5);
    }

    #[test]
    fn after_clamps_bad_delays() {
        let t = SimTime::new(1.0).unwrap();
        assert_eq!(t.after(-5.0), t);
        assert_eq!(t.after(f64::NAN), t);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::new(1.25).unwrap().to_string(), "1.250000s");
    }
}
