use std::collections::BinaryHeap;

use crate::SimTime;

/// Entry in the event queue, ordered by `(time, seq)` with reversed
/// comparison so the earliest event pops first. The sequence number makes
/// ordering of simultaneous events deterministic (FIFO).
#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use gdsearch_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(2.0).unwrap(), "late");
/// q.push(SimTime::new(1.0).unwrap(), "early");
/// q.push(SimTime::new(1.0).unwrap(), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterates over pending events in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.heap.iter().map(|e| (e.time, &e.item))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::new(secs).unwrap()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(5.0), "x");
        q.push(t(2.0), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn iter_visits_all() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        let mut seen: Vec<i32> = q.iter().map(|(_, &x)| x).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }
}
