//! Bounded, bandwidth-limited FIFO link queues for the reactor backend.
//!
//! Every directed overlay edge `u → v` gets one `Link`: a FIFO of
//! messages waiting for the wire plus the service state of the message
//! currently being transmitted. Bandwidth is modeled in bytes per tick —
//! a message of `wire_size()` bytes occupies the link for
//! `ceil(bytes / bytes_per_tick)` ticks once it reaches the head, and
//! everything behind it queues. The queue is bounded; the transport layer
//! decides what to do when it is full (drop + count, with
//! [`NodeApi::try_send`] as the protocol-visible escape hatch).
//!
//! [`NodeApi::try_send`]: crate::NodeApi::try_send

use std::collections::VecDeque;

/// A message sitting in (or at the head of) a link queue.
#[derive(Debug, Clone)]
struct InFlight<M> {
    msg: M,
    /// Wire size, for byte accounting at delivery.
    bytes: usize,
    /// Bytes still to transmit (`max(bytes, 1)` initially, so zero-byte
    /// messages still occupy the wire for one service round).
    remaining: u64,
    /// Tick the message entered the queue.
    enqueued_at: u64,
    /// Tick its transmission started (first tick it received budget), if
    /// it has.
    started_at: Option<u64>,
}

/// A delivery completed by [`Link::service`] during one tick. Per-message
/// queueing delay is folded into [`LinkStats::queue_delay_ticks`] and also
/// carried out per message (`waited`) so the transport layer can record a
/// full delay distribution, not just the sum.
#[derive(Debug)]
pub(crate) struct Completed<M> {
    /// The transported message.
    pub msg: M,
    /// Wire size in bytes.
    pub bytes: usize,
    /// Ticks this message waited in the queue before its transmission
    /// started.
    pub waited: u64,
}

/// Cumulative statistics of one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// High-water queue depth, in messages (the in-service head counts).
    pub max_depth: u64,
    /// Total ticks delivered messages waited before transmission started.
    pub queue_delay_ticks: u64,
    /// Messages fully transmitted.
    pub delivered: u64,
    /// Bytes fully transmitted.
    pub bytes: u64,
    /// Messages rejected because the queue was full.
    pub dropped_full: u64,
}

/// One directed bounded FIFO link.
#[derive(Debug)]
pub(crate) struct Link<M> {
    queue: VecDeque<InFlight<M>>,
    capacity: usize,
    stats: LinkStats,
}

impl<M> Link<M> {
    pub(crate) fn new(capacity: usize) -> Self {
        Link {
            queue: VecDeque::new(),
            capacity,
            stats: LinkStats::default(),
        }
    }

    /// Current queue depth in messages.
    pub(crate) fn depth(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub(crate) fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Enqueues a message, or rejects it when the queue is full.
    ///
    /// Returns whether the message was accepted.
    pub(crate) fn enqueue(&mut self, msg: M, bytes: usize, tick: u64) -> bool {
        if self.queue.len() >= self.capacity {
            self.stats.dropped_full += 1;
            return false;
        }
        self.queue.push_back(InFlight {
            msg,
            bytes,
            remaining: (bytes as u64).max(1),
            enqueued_at: tick,
            started_at: None,
        });
        self.stats.max_depth = self.stats.max_depth.max(self.queue.len() as u64);
        true
    }

    /// Spends one tick's byte budget on the queue head(s); messages whose
    /// transmission completes are appended to `out`.
    ///
    /// Unused budget flows to the next queued message within the same
    /// tick, so a fast link can finish several small messages per tick;
    /// budget does not accumulate across ticks (an idle link has nothing
    /// to spend it on).
    pub(crate) fn service(&mut self, bytes_per_tick: u64, tick: u64, out: &mut Vec<Completed<M>>) {
        let mut budget = bytes_per_tick;
        while budget > 0 {
            let Some(head) = self.queue.front_mut() else {
                break;
            };
            let started = *head.started_at.get_or_insert(tick);
            if head.remaining > budget {
                head.remaining -= budget;
                break;
            }
            budget -= head.remaining;
            let head = self.queue.pop_front().expect("front_mut saw it");
            let waited = started - head.enqueued_at;
            self.stats.delivered += 1;
            self.stats.bytes += head.bytes as u64;
            self.stats.queue_delay_ticks += waited;
            out.push(Completed {
                msg: head.msg,
                bytes: head.bytes,
                waited,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(link: &mut Link<u32>, bpt: u64, tick: u64) -> Vec<Completed<u32>> {
        let mut out = Vec::new();
        link.service(bpt, tick, &mut out);
        out
    }

    #[test]
    fn message_takes_ceil_bytes_over_bandwidth_ticks() {
        let mut link: Link<u32> = Link::new(8);
        assert!(link.enqueue(7, 250, 0));
        // 100 B/tick: 250 bytes need ticks 0, 1 and 2.
        assert!(drain(&mut link, 100, 0).is_empty());
        assert!(drain(&mut link, 100, 1).is_empty());
        let done = drain(&mut link, 100, 2);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].msg, 7);
        assert_eq!(done[0].bytes, 250);
        assert_eq!(link.stats().queue_delay_ticks, 0);
        assert!(link.is_empty());
    }

    #[test]
    fn leftover_budget_flows_to_next_message() {
        let mut link: Link<u32> = Link::new(8);
        for m in 0..3 {
            assert!(link.enqueue(m, 30, 0));
        }
        // 100 B/tick covers three 30-byte messages in one tick.
        let done = drain(&mut link, 100, 0);
        assert_eq!(
            done.iter().map(|c| c.msg).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn queue_wait_measures_time_to_head() {
        let mut link: Link<u32> = Link::new(8);
        assert!(link.enqueue(0, 100, 0));
        assert!(link.enqueue(1, 100, 0));
        let first = drain(&mut link, 100, 0);
        assert_eq!(first.len(), 1);
        assert_eq!(link.stats().queue_delay_ticks, 0);
        let second = drain(&mut link, 100, 1);
        // Message 1 waited one tick behind message 0.
        assert_eq!(second.len(), 1);
        assert_eq!(link.stats().queue_delay_ticks, 1);
        assert_eq!(link.stats().max_depth, 2);
    }

    #[test]
    fn full_queue_rejects() {
        let mut link: Link<u32> = Link::new(2);
        assert!(link.enqueue(0, 10, 0));
        assert!(link.enqueue(1, 10, 0));
        assert!(!link.enqueue(2, 10, 0));
        assert_eq!(link.stats().dropped_full, 1);
        assert_eq!(link.depth(), 2);
    }

    #[test]
    fn zero_byte_messages_still_occupy_the_wire() {
        let mut link: Link<u32> = Link::new(4);
        assert!(link.enqueue(0, 0, 0));
        let done = drain(&mut link, 1, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 0);
    }
}
