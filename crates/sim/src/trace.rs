//! Bounded event traces for debugging and test assertions.

use std::collections::VecDeque;

use gdsearch_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::SimTime;

/// What happened to a message at the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Handed to the transport.
    Sent,
    /// Delivered to the destination handler.
    Delivered,
    /// Dropped by random loss.
    Lost,
    /// Dropped because an endpoint was down.
    DroppedDown,
    /// Dropped because the bounded link queue was full (reactor backend).
    DroppedFull,
    /// Dropped because no link exists to the destination (reactor backend).
    DroppedNoRoute,
}

/// One transport-layer trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Sending node (`None` for external injections).
    pub from: Option<NodeId>,
    /// Destination node.
    pub to: NodeId,
    /// Wire size of the message in bytes.
    pub bytes: usize,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s: keeps the most recent
/// `capacity` records, dropping the oldest. Capacity 0 disables tracing at
/// zero cost.
///
/// # Example
///
/// ```
/// use gdsearch_graph::NodeId;
/// use gdsearch_sim::trace::{Trace, TraceEvent, TraceKind};
/// use gdsearch_sim::SimTime;
///
/// let mut trace = Trace::new(2);
/// for i in 0..3 {
///     trace.record(TraceEvent {
///         time: SimTime::ZERO,
///         kind: TraceKind::Sent,
///         from: None,
///         to: NodeId::new(i),
///         bytes: 8,
///     });
/// }
/// // Oldest record evicted.
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().to, NodeId::new(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends a record, evicting the oldest when full. No-op at capacity
    /// 0.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained records of the given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(to: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO,
            kind,
            from: None,
            to: NodeId::new(to),
            bytes: 4,
        }
    }

    #[test]
    fn capacity_zero_disables() {
        let mut t = Trace::new(0);
        t.record(ev(0, TraceKind::Sent));
        assert!(t.is_empty());
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Sent));
        }
        let ids: Vec<u32> = t.iter().map(|e| e.to.as_u32()).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn count_by_kind() {
        let mut t = Trace::new(10);
        t.record(ev(0, TraceKind::Sent));
        t.record(ev(1, TraceKind::Delivered));
        t.record(ev(2, TraceKind::Sent));
        assert_eq!(t.count(TraceKind::Sent), 2);
        assert_eq!(t.count(TraceKind::Delivered), 1);
        assert_eq!(t.count(TraceKind::Lost), 0);
    }
}
