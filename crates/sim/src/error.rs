use std::error::Error;
use std::fmt;

use gdsearch_graph::GraphError;

/// Errors produced by the network simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A node id does not exist in the simulated graph.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the network.
        num_nodes: u32,
    },
    /// The event budget was exhausted before the network went quiet.
    EventBudgetExhausted {
        /// Events processed before giving up.
        processed: usize,
    },
    /// Propagated graph-substrate error.
    Graph(GraphError),
}

impl SimError {
    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        SimError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            SimError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for a network of {num_nodes} nodes"
                )
            }
            SimError::EventBudgetExhausted { processed } => {
                write!(
                    f,
                    "event budget exhausted after {processed} events with work remaining"
                )
            }
            SimError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::invalid_parameter("x must be positive")
            .to_string()
            .contains("x must be positive"));
        assert!(SimError::NodeOutOfRange {
            node: 7,
            num_nodes: 4
        }
        .to_string()
        .contains("out of range"));
        assert!(SimError::EventBudgetExhausted { processed: 10 }
            .to_string()
            .contains("10 events"));
    }

    #[test]
    fn graph_error_source() {
        let e = SimError::from(GraphError::SelfLoop { node: 0 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
