use serde::{Deserialize, Serialize};

/// Aggregate transport statistics of a simulation run.
///
/// The paper's comparisons between informed and blind search hinge on
/// message counts (communication overhead) and bandwidth, so the simulator
/// accounts both at the transport layer where no protocol can forget to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the transport (including ones later lost).
    pub sent: u64,
    /// Messages delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub lost: u64,
    /// Messages dropped because the destination (or source) was down.
    pub dropped_down: u64,
    /// Total bytes handed to the transport.
    pub bytes_sent: u64,
}

impl NetStats {
    /// Fraction of sent messages that were delivered; 1.0 when nothing was
    /// sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean wire size of sent messages; 0.0 when nothing was sent.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_with_traffic() {
        let s = NetStats {
            sent: 10,
            delivered: 8,
            lost: 1,
            dropped_down: 1,
            bytes_sent: 420,
        };
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((s.mean_message_bytes() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_without_traffic() {
        let s = NetStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        assert_eq!(s.mean_message_bytes(), 0.0);
    }
}
