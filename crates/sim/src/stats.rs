use gdsearch_obs::Histogram;
use serde::{Deserialize, Serialize};

/// Aggregate transport statistics of a simulation run.
///
/// The paper's comparisons between informed and blind search hinge on
/// message counts (communication overhead) and bandwidth, so the simulator
/// accounts both at the transport layer where no protocol can forget to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the transport (including ones later lost).
    pub sent: u64,
    /// Messages delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub lost: u64,
    /// Messages dropped because the destination (or source) was down.
    pub dropped_down: u64,
    /// Total bytes handed to the transport.
    pub bytes_sent: u64,
    /// Messages dropped because a bounded link queue was full (only the
    /// bandwidth-aware [`Reactor`] backend produces these; the instant
    /// event loop has infinitely wide links).
    ///
    /// [`Reactor`]: crate::Reactor
    pub dropped_backpressure: u64,
    /// Messages dropped because there is no link to the destination (the
    /// reactor only provisions queues along overlay edges; the instant
    /// backend routes any pair like an IP underlay).
    pub dropped_no_route: u64,
    /// High-water queue depth over all links, in messages (0 for the
    /// instant backend). Per-link values are on
    /// [`Reactor::link_stats`](crate::Reactor::link_stats).
    pub max_queue_depth: u64,
    /// Distribution of per-message queueing delay: ticks each delivered
    /// message spent queued behind other traffic before its own
    /// transmission started (empty for the instant backend). The total is
    /// [`Histogram::sum`], tail latency is
    /// [`Histogram::quantile`]`(0.99)`.
    pub queue_delay: Histogram,
}

impl NetStats {
    /// Fraction of sent messages that were delivered; 1.0 when nothing was
    /// sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean wire size of sent messages; 0.0 when nothing was sent.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.sent as f64
        }
    }

    /// Mean ticks a transported message waited in its link queue before
    /// transmission started; 0.0 when nothing was transported.
    ///
    /// The denominator is the messages whose transmission completed —
    /// injections bypass the link fabric and messages dropped before
    /// enqueueing never wait, so neither belongs in the average.
    pub fn mean_queue_delay_ticks(&self) -> f64 {
        self.queue_delay.mean()
    }

    /// Upper bound on the median queueing delay, in ticks (0 when
    /// nothing was transported).
    pub fn p50_queue_delay_ticks(&self) -> u64 {
        self.queue_delay.quantile(0.5)
    }

    /// Upper bound on the 99th-percentile queueing delay, in ticks (0
    /// when nothing was transported).
    pub fn p99_queue_delay_ticks(&self) -> u64 {
        self.queue_delay.quantile(0.99)
    }

    /// Upper bound on the 99.9th-percentile queueing delay, in ticks (0
    /// when nothing was transported).
    pub fn p999_queue_delay_ticks(&self) -> u64 {
        self.queue_delay.quantile(0.999)
    }

    /// All drops combined: loss, down endpoints, full queues, missing
    /// links.
    pub fn dropped_total(&self) -> u64 {
        self.lost + self.dropped_down + self.dropped_backpressure + self.dropped_no_route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_with_traffic() {
        let mut queue_delay = Histogram::new();
        // 6 messages completed transmission; delays sum to 18.
        for waited in [0, 1, 2, 3, 4, 8] {
            queue_delay.record(waited);
        }
        let s = NetStats {
            sent: 10,
            delivered: 8,
            lost: 1,
            dropped_down: 1,
            bytes_sent: 420,
            dropped_backpressure: 2,
            dropped_no_route: 1,
            max_queue_depth: 5,
            queue_delay,
        };
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((s.mean_message_bytes() - 42.0).abs() < 1e-12);
        // 18 ticks over the 6 messages whose transmission completed.
        assert!((s.mean_queue_delay_ticks() - 3.0).abs() < 1e-12);
        // target rank 3 of 6 lands in the [2, 3] bucket.
        assert_eq!(s.p50_queue_delay_ticks(), 3);
        assert_eq!(s.p99_queue_delay_ticks(), 8);
        assert_eq!(s.p999_queue_delay_ticks(), 8);
        assert_eq!(s.dropped_total(), 5);
    }

    #[test]
    fn ratios_without_traffic() {
        let s = NetStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        assert_eq!(s.mean_message_bytes(), 0.0);
        assert_eq!(s.mean_queue_delay_ticks(), 0.0);
        assert_eq!(s.dropped_total(), 0);
    }
}
