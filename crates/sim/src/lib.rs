//! Discrete-event peer-to-peer network simulator for the `gdsearch` stack.
//!
//! The reproduced paper evaluates its search scheme by simulation (§V-B,
//! Fig. 2): nodes exchange query/response messages over a social overlay.
//! This crate is the transport layer of that simulation:
//!
//! * [`SimTime`] / [`EventQueue`] — virtual clock and ordered event queue;
//! * [`LatencyModel`] — per-link delay distributions;
//! * [`Network`] — the instant-delivery simulator: delivers messages
//!   between neighboring nodes, applies latency, random loss and node
//!   churn, and accounts every byte sent ([`NetStats`]);
//! * [`Reactor`] — the bandwidth-aware backend: the same protocol surface,
//!   but every overlay edge is a bounded FIFO [`link`] with finite bytes
//!   per tick ([`TransportConfig`]), so queueing delay, saturation and
//!   backpressure ([`NodeApi::poll_ready`] / [`NodeApi::try_send`]) are
//!   modeled; node activations run in parallel on worker threads with
//!   bit-for-bit deterministic results (see [`reactor`]);
//! * [`NodeHandler`] — the protocol hook shared by both backends: the
//!   `gdsearch` core crate implements the paper's query-forwarding
//!   protocol as a handler;
//! * [`WireMessage`] — wire-size accounting for bandwidth reports;
//! * [`churn`] — failure-injection schedules (node down/up events);
//! * [`trace`] — bounded event traces for debugging and assertions.
//!
//! Both backends are deterministic under a seeded RNG.
//!
//! # Example
//!
//! ```
//! use gdsearch_graph::generators;
//! use gdsearch_graph::NodeId;
//! use gdsearch_sim::{Network, NetworkConfig, NodeApi, NodeHandler, WireMessage};
//!
//! // A ping protocol: every node forwards a counter to a random neighbor
//! // until it reaches zero.
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl WireMessage for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//! struct Relay;
//! impl NodeHandler<Ping> for Relay {
//!     fn handle(&mut self, _from: Option<NodeId>, msg: Ping, api: &mut NodeApi<'_, Ping>) {
//!         if msg.0 > 0 {
//!             let next = api.random_neighbor().expect("connected graph");
//!             api.send(next, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), gdsearch_sim::SimError> {
//! let g = generators::ring(8)?;
//! let handlers = (0..8).map(|_| Relay).collect();
//! let mut net = Network::new(g, handlers, NetworkConfig::default().with_seed(7))?;
//! net.inject(NodeId::new(0), Ping(5))?;
//! net.run_to_completion(10_000)?;
//! assert_eq!(net.stats().delivered, 6); // injection + 5 relays
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod error;
mod latency;
pub mod link;
mod network;
mod queue;
pub mod reactor;
mod stats;
mod time;
pub mod trace;
mod transport;
mod wire;

pub use error::SimError;
pub use latency::LatencyModel;
pub use link::LinkStats;
pub use network::{Network, NetworkConfig, NodeApi, NodeHandler};
pub use queue::EventQueue;
pub use reactor::Reactor;
pub use stats::NetStats;
pub use time::SimTime;
pub use transport::TransportConfig;
pub use wire::{decode_f32_slice, encode_f32_slice, WireMessage};
