//! Deterministic bandwidth-aware reactor: the bounded-transport backend.
//!
//! [`Network`](crate::Network) delivers every message instantly over
//! infinitely wide links, which is exactly right for hop-count experiments
//! and exactly wrong for the paper's *bandwidth* argument — flooding and
//! diffusion search differ most where links saturate, queues build and
//! messages are dropped under backpressure. [`Reactor`] models that
//! regime: per-edge FIFO [`Link`](crate::link) queues with finite bytes
//! per tick ([`TransportConfig`]), bounded send queues, and backpressure
//! surfaced to handlers through [`NodeApi::poll_ready`] /
//! [`NodeApi::try_send`]. No async runtime is involved: the reactor is a
//! hand-rolled tick loop, so the build stays offline-friendly.
//!
//! # Execution model
//!
//! Virtual time advances in integer ticks; one tick runs three phases:
//!
//! 1. **Handler phase.** Every node with a non-empty inbox is *activated*:
//!    its handler processes the tick's deliveries and queues sends into a
//!    private outbox. Activations are data-parallel — they are sharded
//!    over [`gdsearch_diffusion::workpool`] worker threads.
//! 2. **Transport phase (sequential).** Outboxes are drained in ascending
//!    node order; each message is lost, dropped (full queue / no route) or
//!    enqueued on its directed link.
//! 3. **Link phase (sequential).** Every link spends its per-tick byte
//!    budget in deterministic CSR order; completed messages become the
//!    next tick's inboxes.
//!
//! # Why the result is bit-for-bit deterministic for every thread count
//!
//! The parallel section is exactly the handler phase, and each activation
//! is a pure function of activation-local state:
//!
//! * **State.** A handler owns its per-node state, a *per-node* RNG
//!   (seeded from the transport seed and the node id, never shared), its
//!   inbox slice, and a private outbox. Nothing else is written.
//! * **Reads.** Shared reads (graph topology, link-queue depths) are
//!   frozen before the phase starts: depths are snapshotted per node, and
//!   a directed link `u → v` only ever gains messages from `u` itself, so
//!   the snapshot plus the activation's own send count is an exact view
//!   (an upper bound when random loss is enabled, since lost sends never
//!   reach the queue).
//! * **Scheduling.** [`workpool::map_batched_mut`] applies the handler to
//!   each activation exactly once and hands results back in item order;
//!   chunk boundaries move with the worker count but no activation can
//!   observe them.
//!
//! Everything ordering-sensitive — stats, trace records, loss coin flips,
//! link enqueue/service — happens in the sequential phases, in fixed node
//! and link order. Hence the same seed yields the same [`Trace`], the
//! same [`NetStats`] and the same handler states for threads ∈ {1, 2, …}
//! (property-tested in `tests/properties.rs`), the same discipline as the
//! push engine's batched driver.
//!
//! [`workpool::map_batched_mut`]: gdsearch_diffusion::workpool::map_batched_mut
//!
//! # Example
//!
//! ```
//! use gdsearch_graph::{generators, NodeId};
//! use gdsearch_sim::{NodeApi, NodeHandler, Reactor, TransportConfig, WireMessage};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl WireMessage for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//! struct Relay;
//! impl NodeHandler<Ping> for Relay {
//!     fn handle(&mut self, _from: Option<NodeId>, msg: Ping, api: &mut NodeApi<'_, Ping>) {
//!         if msg.0 > 0 {
//!             let next = api.neighbors()[0];
//!             api.send(next, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), gdsearch_sim::SimError> {
//! let g = generators::ring(8)?;
//! let handlers = (0..8).map(|_| Relay).collect();
//! let mut net = Reactor::new(g, handlers, TransportConfig::default())?;
//! net.inject(NodeId::new(0), Ping(5))?;
//! let ticks = net.run_to_completion(1_000)?;
//! assert_eq!(net.stats().delivered, 6); // injection + 5 relays
//! assert!(ticks >= 5); // every hop serializes over a link
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use gdsearch_diffusion::workpool;
use gdsearch_graph::{Graph, NodeId};
use gdsearch_obs::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::{ChurnEvent, ChurnKind};
use crate::link::LinkStats;
use crate::network::{LinkCapacityView, NodeApi, NodeHandler};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::transport::{Transport, TransportConfig};
use crate::{NetStats, SimError, SimTime, WireMessage};

/// One queued delivery: `(sender, message, wire bytes)`.
type Inbound<M> = (Option<NodeId>, M, usize);

/// Everything one activated node needs during the parallel handler phase.
/// Item-local by construction — see the module docs.
struct Activation<M, H> {
    node: NodeId,
    handler: H,
    rng: StdRng,
    inbox: Vec<Inbound<M>>,
    outbox: Vec<(NodeId, M)>,
    /// Outgoing-link queue depths, snapshotted at phase start.
    depths: Vec<u32>,
    /// Sends this activation queued per outgoing link.
    pending: Vec<u32>,
}

/// Bandwidth-aware deterministic network simulator (see the module docs).
///
/// The second backend next to [`Network`](crate::Network): same
/// [`NodeHandler`] protocol hook, same [`NetStats`]/[`Trace`] accounting,
/// but messages serialize over bounded finite-bandwidth links and handlers
/// additionally see backpressure via [`NodeApi::poll_ready`] /
/// [`NodeApi::try_send`].
pub struct Reactor<M, H> {
    graph: Graph,
    handlers: Vec<Option<H>>,
    /// Per-node protocol RNGs (never shared across nodes — the basis of
    /// thread-count determinism).
    rngs: Vec<StdRng>,
    /// Loss coin flips; only used in the sequential transport phase.
    transport_rng: StdRng,
    transport: Transport<M>,
    inboxes: Vec<Vec<Inbound<M>>>,
    /// Indices of nodes with a non-empty inbox (kept sorted so the
    /// handler phase visits nodes in deterministic ascending order
    /// without scanning all inboxes).
    active: BTreeSet<usize>,
    up: Vec<bool>,
    churn: Vec<ChurnEvent>,
    churn_cursor: usize,
    tick: u64,
    threads: usize,
    loss_probability: f64,
    stats: NetStats,
    trace: Trace,
    /// Activated nodes per tick (recorded in the sequential tail of every
    /// `step`).
    activations_per_tick: Histogram,
    /// Handler deliveries per tick.
    deliveries_per_tick: Histogram,
    /// Per-source wire accounting: `(frames, bytes)` handed to the
    /// transport by each node, updated in the sequential transport
    /// phase. The distributed layer cross-checks its own byte
    /// accounting against these.
    sent_by_node: Vec<(u64, u64)>,
}

impl<M, H> Reactor<M, H>
where
    M: WireMessage + Send,
    H: NodeHandler<M> + Send,
{
    /// Creates a bounded-transport network over `graph` with one handler
    /// per node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `handlers.len()` differs
    /// from the node count (degenerate transport parameters are already
    /// rejected by [`TransportConfig`]'s builder methods).
    pub fn new(graph: Graph, handlers: Vec<H>, config: TransportConfig) -> Result<Self, SimError> {
        if handlers.len() != graph.num_nodes() {
            return Err(SimError::invalid_parameter(format!(
                "expected one handler per node ({}), got {}",
                graph.num_nodes(),
                handlers.len()
            )));
        }
        let n = graph.num_nodes();
        let rngs = (0..n).map(|u| node_rng(config.seed, u as u64)).collect();
        let transport = Transport::new(&graph, &config);
        let mut churn = config.churn.events().to_vec();
        churn.sort_by_key(|e| e.time);
        Ok(Reactor {
            handlers: handlers.into_iter().map(Some).collect(),
            rngs,
            transport_rng: StdRng::seed_from_u64(config.seed ^ 0x0072_6561_6374_6f72),
            transport,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            active: BTreeSet::new(),
            up: vec![true; n],
            churn,
            churn_cursor: 0,
            tick: 0,
            threads: config.threads,
            loss_probability: config.loss_probability,
            stats: NetStats::default(),
            trace: Trace::new(config.trace_capacity),
            activations_per_tick: Histogram::new(),
            deliveries_per_tick: Histogram::new(),
            sent_by_node: vec![(0, 0); n],
            graph,
        })
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current virtual time (`tick` ticks, one abstract second each).
    pub fn now(&self) -> SimTime {
        SimTime::new(self.tick as f64).expect("tick counts are finite and non-negative")
    }

    /// Ticks executed so far.
    pub fn now_tick(&self) -> u64 {
        self.tick
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The transport trace (empty unless enabled in the config).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Distribution of activated nodes per executed tick.
    pub fn activations_histogram(&self) -> &Histogram {
        &self.activations_per_tick
    }

    /// Distribution of handler deliveries per executed tick.
    pub fn deliveries_histogram(&self) -> &Histogram {
        &self.deliveries_per_tick
    }

    /// Distribution of post-enqueue link-queue depths (one sample per
    /// accepted enqueue).
    pub fn queue_depth_histogram(&self) -> &Histogram {
        self.transport.queue_depths_histogram()
    }

    /// `(frames, bytes)` node `source` has handed to the transport so
    /// far, including messages later lost or dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn sent_from(&self, source: NodeId) -> Result<(u64, u64), SimError> {
        self.check_node(source)?;
        Ok(self
            .sent_by_node
            .get(source.index())
            .copied()
            .unwrap_or((0, 0)))
    }

    /// Statistics of the directed link `from → to`, if that overlay edge
    /// exists.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<&LinkStats> {
        self.transport.link_stats(&self.graph, from, to)
    }

    /// Whether `node` is currently up.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn is_up(&self, node: NodeId) -> Result<bool, SimError> {
        self.check_node(node)?;
        Ok(self.up[node.index()])
    }

    /// Shared access to a node's handler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn handler(&self, node: NodeId) -> Result<&H, SimError> {
        self.check_node(node)?;
        Ok(self.handlers[node.index()]
            .as_ref()
            .expect("handlers are only detached inside the handler phase"))
    }

    /// Mutable access to a node's handler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn handler_mut(&mut self, node: NodeId) -> Result<&mut H, SimError> {
        self.check_node(node)?;
        Ok(self.handlers[node.index()]
            .as_mut()
            .expect("handlers are only detached inside the handler phase"))
    }

    /// Injects an external message: it reaches `node`'s handler in the
    /// next tick's handler phase, bypassing the link fabric (like the
    /// instant backend, injections model local user actions, not
    /// traffic).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for unknown nodes.
    pub fn inject(&mut self, node: NodeId, msg: M) -> Result<(), SimError> {
        self.check_node(node)?;
        let bytes = msg.wire_size();
        self.inboxes[node.index()].push((None, msg, bytes));
        self.active.insert(node.index());
        Ok(())
    }

    /// Whether no deliveries are pending and all link queues are drained.
    /// O(1).
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.transport.is_idle()
    }

    /// Runs ticks until the network goes idle, up to `max_ticks`.
    /// Returns the number of ticks executed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if work remains after
    /// the budget.
    pub fn run_to_completion(&mut self, max_ticks: u64) -> Result<u64, SimError> {
        let mut executed = 0;
        while !self.is_idle() {
            if executed >= max_ticks {
                return Err(SimError::EventBudgetExhausted {
                    processed: executed as usize,
                });
            }
            self.step();
            executed += 1;
        }
        Ok(executed)
    }

    /// Executes exactly one tick (handler, transport and link phases) and
    /// returns the tick's virtual time. Idle ticks are valid — time
    /// passes, nothing moves.
    pub fn step(&mut self) -> SimTime {
        let now = self.now();
        let tick = self.tick;
        let delivered_before = self.stats.delivered;
        self.apply_churn();

        // ---- Handler phase (parallel over activations) ----------------
        let mut activations: Vec<Activation<M, H>> = Vec::new();
        for index in std::mem::take(&mut self.active) {
            let node = NodeId::new(index as u32);
            let inbox = std::mem::take(&mut self.inboxes[index]);
            if !self.up[index] {
                for (from, _, bytes) in &inbox {
                    self.stats.dropped_down += 1;
                    self.trace.record(TraceEvent {
                        time: now,
                        kind: TraceKind::DroppedDown,
                        from: *from,
                        to: node,
                        bytes: *bytes,
                    });
                }
                continue;
            }
            for (from, _, bytes) in &inbox {
                self.stats.delivered += 1;
                self.trace.record(TraceEvent {
                    time: now,
                    kind: TraceKind::Delivered,
                    from: *from,
                    to: node,
                    bytes: *bytes,
                });
            }
            let depths = self.transport.depths(node);
            let pending = vec![0u32; depths.len()];
            activations.push(Activation {
                node,
                handler: self.handlers[index]
                    .take()
                    .expect("handlers are attached between phases"),
                rng: std::mem::replace(&mut self.rngs[index], StdRng::seed_from_u64(0)),
                inbox,
                outbox: Vec::new(),
                depths,
                pending,
            });
        }
        self.activations_per_tick.record(activations.len() as u64);
        let graph = &self.graph;
        let queue_capacity = self.transport.queue_capacity();
        workpool::map_batched_mut(&mut activations, self.threads, |activation| {
            let neighbors = graph.neighbor_slice(activation.node);
            for (from, msg, _) in activation.inbox.drain(..) {
                let mut api = NodeApi::new(
                    activation.node,
                    now,
                    neighbors,
                    &mut activation.rng,
                    &mut activation.outbox,
                    Some(LinkCapacityView {
                        capacity: queue_capacity,
                        depths: &activation.depths,
                        pending: &mut activation.pending,
                    }),
                );
                activation.handler.handle(from, msg, &mut api);
            }
        });

        // ---- Transport phase (sequential, node order) ------------------
        for activation in activations {
            let index = activation.node.index();
            self.handlers[index] = Some(activation.handler);
            self.rngs[index] = activation.rng;
            for (to, msg) in activation.outbox {
                self.transmit(activation.node, to, msg, tick);
            }
        }

        // ---- Link phase (sequential, CSR link order) -------------------
        let inboxes = &mut self.inboxes;
        let active = &mut self.active;
        self.transport.service(tick, |from, to, done| {
            inboxes[to.index()].push((Some(from), done.msg, done.bytes));
            active.insert(to.index());
        });
        self.transport.fold_stats(&mut self.stats);
        self.deliveries_per_tick
            .record(self.stats.delivered - delivered_before);
        self.tick += 1;
        now
    }

    /// Hands a message to the link fabric, accounting every outcome. The
    /// route check precedes the loss coin: a message with no link can
    /// never be transmitted, so it is always `dropped_no_route` (and
    /// spends no randomness), regardless of the loss probability.
    fn transmit(&mut self, from: NodeId, to: NodeId, msg: M, tick: u64) {
        let bytes = msg.wire_size();
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if let Some(meter) = self.sent_by_node.get_mut(from.index()) {
            meter.0 += 1;
            meter.1 += bytes as u64;
        }
        let now = self.now();
        self.trace.record(TraceEvent {
            time: now,
            kind: TraceKind::Sent,
            from: Some(from),
            to,
            bytes,
        });
        let Some(link) = self.transport.link_id(&self.graph, from, to) else {
            self.stats.dropped_no_route += 1;
            self.trace.record(TraceEvent {
                time: now,
                kind: TraceKind::DroppedNoRoute,
                from: Some(from),
                to,
                bytes,
            });
            return;
        };
        if self.loss_probability > 0.0 && self.transport_rng.random_bool(self.loss_probability) {
            self.stats.lost += 1;
            self.trace.record(TraceEvent {
                time: now,
                kind: TraceKind::Lost,
                from: Some(from),
                to,
                bytes,
            });
            return;
        }
        if !self.transport.enqueue_at(link, msg, bytes, tick) {
            self.stats.dropped_backpressure += 1;
            self.trace.record(TraceEvent {
                time: now,
                kind: TraceKind::DroppedFull,
                from: Some(from),
                to,
                bytes,
            });
        }
    }

    /// Applies all churn events scheduled at or before the current tick.
    fn apply_churn(&mut self) {
        while let Some(event) = self.churn.get(self.churn_cursor) {
            if event.time.as_secs() > self.tick as f64 {
                break;
            }
            self.up[event.node.index()] = matches!(event.kind, ChurnKind::Up);
            self.churn_cursor += 1;
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), SimError> {
        if node.index() < self.graph.num_nodes() {
            Ok(())
        } else {
            Err(SimError::NodeOutOfRange {
                node: node.as_u32(),
                num_nodes: self.graph.num_nodes() as u32,
            })
        }
    }
}

impl<M, H> std::fmt::Debug for Reactor<M, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("nodes", &self.graph.num_nodes())
            .field("tick", &self.tick)
            .field("threads", &self.threads)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Per-node RNG seeding: a splitmix-style mix of the transport seed and
/// the node id, so streams are decorrelated and independent of scheduling.
fn node_rng(seed: u64, node: u64) -> StdRng {
    let mut z = seed ^ node.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnSchedule;
    use gdsearch_graph::generators;

    #[derive(Clone, Debug)]
    struct Hop(u32);

    impl WireMessage for Hop {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[derive(Default)]
    struct Counter {
        received: u32,
    }

    impl NodeHandler<Hop> for Counter {
        fn handle(&mut self, _from: Option<NodeId>, msg: Hop, api: &mut NodeApi<'_, Hop>) {
            self.received += 1;
            if msg.0 > 0 {
                let next = api.neighbors()[0];
                api.send(next, Hop(msg.0 - 1));
            }
        }
    }

    fn counters(n: usize) -> Vec<Counter> {
        (0..n).map(|_| Counter::default()).collect()
    }

    #[test]
    fn relay_chain_matches_instant_backend_accounting() {
        let g = generators::ring(5).unwrap();
        let mut net = Reactor::new(g, counters(5), TransportConfig::default()).unwrap();
        net.inject(NodeId::new(0), Hop(7)).unwrap();
        net.run_to_completion(1_000).unwrap();
        assert_eq!(net.stats().delivered, 8);
        assert_eq!(net.stats().sent, 7);
        assert_eq!(net.stats().bytes_sent, 28);
        assert_eq!(net.stats().dropped_total(), 0);
        // One tick per hop plus the final delivery tick.
        assert_eq!(net.now_tick(), 8);
    }

    #[test]
    fn handler_count_must_match() {
        let g = generators::ring(5).unwrap();
        assert!(Reactor::new(g, counters(4), TransportConfig::default()).is_err());
    }

    #[test]
    fn narrow_link_serializes_messages() {
        // A 4-byte message over a 1-byte/tick link takes 4 ticks of wire
        // time per hop.
        let g = generators::path(2);
        let cfg = TransportConfig::default().with_bandwidth(1).unwrap();
        let mut net = Reactor::new(g, counters(2), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(1)).unwrap();
        let ticks = net.run_to_completion(100).unwrap();
        assert_eq!(net.handler(NodeId::new(1)).unwrap().received, 1);
        assert!(
            ticks >= 4,
            "4-byte message over 1 B/tick took {ticks} ticks"
        );
    }

    #[test]
    fn backpressure_drops_are_counted() {
        // Node 0 floods 5 messages at node 1 in one activation through a
        // queue of capacity 2.
        struct Burst;
        impl NodeHandler<Hop> for Burst {
            fn handle(&mut self, from: Option<NodeId>, _msg: Hop, api: &mut NodeApi<'_, Hop>) {
                if from.is_none() {
                    for _ in 0..5 {
                        let next = api.neighbors()[0];
                        api.send(next, Hop(0));
                    }
                }
            }
        }
        let g = generators::path(2);
        let cfg = TransportConfig::default()
            .with_queue_capacity(2)
            .unwrap()
            .with_bandwidth(1)
            .unwrap();
        let mut net = Reactor::new(g, vec![Burst, Burst], cfg).unwrap();
        net.inject(NodeId::new(0), Hop(0)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().sent, 5);
        assert_eq!(net.stats().dropped_backpressure, 3);
        assert_eq!(net.stats().delivered, 1 + 2);
        assert_eq!(net.stats().max_queue_depth, 2);
        assert_eq!(
            net.link_stats(NodeId::new(0), NodeId::new(1))
                .unwrap()
                .dropped_full,
            3
        );
    }

    #[test]
    fn try_send_respects_backpressure_exactly() {
        // With try_send the handler observes the same bound and keeps the
        // overflow instead of losing it.
        #[derive(Default)]
        struct Careful {
            refused: u32,
        }
        impl NodeHandler<Hop> for Careful {
            fn handle(&mut self, from: Option<NodeId>, _msg: Hop, api: &mut NodeApi<'_, Hop>) {
                if from.is_none() {
                    let next = api.neighbors()[0];
                    for _ in 0..5 {
                        let ready = api.poll_ready(next);
                        match api.try_send(next, Hop(0)) {
                            Ok(()) => assert!(ready, "try_send succeeded while not ready"),
                            Err(Hop(_)) => {
                                assert!(!ready, "try_send refused while ready");
                                self.refused += 1;
                            }
                        }
                    }
                }
            }
        }
        let g = generators::path(2);
        let cfg = TransportConfig::default()
            .with_queue_capacity(2)
            .unwrap()
            .with_bandwidth(1)
            .unwrap();
        let mut net = Reactor::new(g, vec![Careful::default(), Careful::default()], cfg).unwrap();
        net.inject(NodeId::new(0), Hop(0)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().dropped_backpressure, 0);
        assert_eq!(net.stats().sent, 2);
        assert_eq!(net.handler(NodeId::new(0)).unwrap().refused, 3);
    }

    #[test]
    fn no_route_sends_are_dropped_and_counted() {
        struct Wild;
        impl NodeHandler<Hop> for Wild {
            fn handle(&mut self, from: Option<NodeId>, _msg: Hop, api: &mut NodeApi<'_, Hop>) {
                if from.is_none() {
                    // Node 2 is not adjacent to node 0 on a path graph.
                    assert!(!api.poll_ready(NodeId::new(2)));
                    api.send(NodeId::new(2), Hop(0));
                }
            }
        }
        let g = generators::path(3);
        let mut net = Reactor::new(g, vec![Wild, Wild, Wild], TransportConfig::default()).unwrap();
        net.inject(NodeId::new(0), Hop(0)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().dropped_no_route, 1);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn churn_drops_deliveries_to_down_nodes() {
        let g = generators::path(3);
        let churn = ChurnSchedule::from_events(vec![ChurnEvent {
            time: SimTime::ZERO,
            node: NodeId::new(1),
            kind: ChurnKind::Down,
        }]);
        let cfg = TransportConfig::default().with_churn(churn);
        let mut net = Reactor::new(g, counters(3), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(3)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().dropped_down, 1);
        assert_eq!(net.handler(NodeId::new(1)).unwrap().received, 0);
    }

    #[test]
    fn loss_drops_messages() {
        let g = generators::ring(4).unwrap();
        let cfg = TransportConfig::default()
            .with_loss_probability(1.0)
            .unwrap()
            .with_seed(3);
        let mut net = Reactor::new(g, counters(4), cfg).unwrap();
        net.inject(NodeId::new(0), Hop(5)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn queue_delay_accrues_under_saturation() {
        let g = generators::path(2);
        let cfg = TransportConfig::default()
            .with_bandwidth(4)
            .unwrap()
            .with_queue_capacity(64)
            .unwrap();
        // Burst ten 4-byte messages onto a 4 B/tick link: message k waits
        // k ticks.
        struct Burst;
        impl NodeHandler<Hop> for Burst {
            fn handle(&mut self, from: Option<NodeId>, _msg: Hop, api: &mut NodeApi<'_, Hop>) {
                if from.is_none() {
                    for _ in 0..10 {
                        let next = api.neighbors()[0];
                        api.send(next, Hop(0));
                    }
                }
            }
        }
        let mut net = Reactor::new(g, vec![Burst, Burst], cfg).unwrap();
        net.inject(NodeId::new(0), Hop(0)).unwrap();
        net.run_to_completion(100).unwrap();
        assert_eq!(net.stats().delivered, 11);
        assert_eq!(net.stats().queue_delay.sum(), (0..10).sum::<u64>());
        assert_eq!(net.stats().queue_delay.count(), 10);
        assert_eq!(net.stats().queue_delay.max(), 9);
        assert_eq!(net.stats().max_queue_depth, 10);
        // Queue-depth samples: the k-th of the 10 enqueues saw depth k.
        assert_eq!(net.queue_depth_histogram().count(), 10);
        assert_eq!(net.queue_depth_histogram().max(), 10);
        // Tick-phase histograms cover every executed tick.
        assert_eq!(net.activations_histogram().count(), net.now_tick());
        assert_eq!(net.deliveries_histogram().sum(), 11);
    }

    #[test]
    fn event_budget_is_enforced() {
        let g = generators::ring(4).unwrap();
        let mut net = Reactor::new(g, counters(4), TransportConfig::default()).unwrap();
        net.inject(NodeId::new(0), Hop(100)).unwrap();
        assert!(matches!(
            net.run_to_completion(5),
            Err(SimError::EventBudgetExhausted { processed: 5 })
        ));
    }

    #[test]
    fn injection_validates_node() {
        let g = generators::ring(4).unwrap();
        let mut net = Reactor::new(g, counters(4), TransportConfig::default()).unwrap();
        assert!(net.inject(NodeId::new(9), Hop(1)).is_err());
        assert!(net.is_up(NodeId::new(9)).is_err());
        assert!(net.is_up(NodeId::new(1)).unwrap());
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let run = |threads: usize| {
            let g = generators::social_circles_like_scaled(40, &mut { StdRng::seed_from_u64(11) })
                .unwrap();
            let cfg = TransportConfig::default()
                .with_bandwidth(8)
                .unwrap()
                .with_queue_capacity(4)
                .unwrap()
                .with_loss_probability(0.05)
                .unwrap()
                .with_seed(99)
                .with_threads(threads)
                .unwrap()
                .with_trace_capacity(4096);
            let mut net = Reactor::new(g, counters(40), cfg).unwrap();
            for u in 0..8 {
                net.inject(NodeId::new(u), Hop(30)).unwrap();
            }
            net.run_to_completion(10_000).unwrap();
            let received: Vec<u32> = (0..40)
                .map(|u| net.handler(NodeId::new(u)).unwrap().received)
                .collect();
            (*net.stats(), net.trace().clone(), received, net.now_tick())
        };
        let reference = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), reference, "threads = {threads} diverged");
        }
    }
}
