//! Configuration and link fabric of the bandwidth-aware transport.
//!
//! [`TransportConfig`] is the bounded-transport sibling of
//! [`NetworkConfig`]: it describes finite per-link bandwidth (bytes per
//! tick), bounded send queues, the reactor's worker-thread count, and the
//! same loss/churn/trace knobs the instant backend has.
//! [`Transport`] owns one [`Link`] per directed overlay edge and provides
//! the two operations the reactor drives each tick: enqueue outgoing
//! messages (with drop accounting) and service every link's byte budget.
//!
//! Degenerate configurations — zero bandwidth, zero queue capacity, zero
//! worker threads — are rejected with [`SimError::InvalidParameter`] at
//! construction instead of hanging or panicking deep inside the tick
//! loop.
//!
//! [`NetworkConfig`]: crate::NetworkConfig

use std::collections::BTreeSet;

use gdsearch_graph::{Graph, NodeId};
use gdsearch_obs::Histogram;

use crate::churn::ChurnSchedule;
use crate::link::{Completed, Link, LinkStats};
use crate::{NetStats, SimError};

/// Configuration of a [`Reactor`](crate::Reactor).
#[derive(Debug, Clone)]
pub struct TransportConfig {
    pub(crate) bytes_per_tick: u64,
    pub(crate) queue_capacity: usize,
    pub(crate) threads: usize,
    pub(crate) seed: u64,
    pub(crate) loss_probability: f64,
    pub(crate) trace_capacity: usize,
    pub(crate) churn: ChurnSchedule,
}

impl Default for TransportConfig {
    /// 64 KiB/tick links with 1024-message queues, one worker thread,
    /// lossless, churn-free, seed 0, no trace.
    fn default() -> Self {
        TransportConfig {
            bytes_per_tick: 64 * 1024,
            queue_capacity: 1024,
            threads: 1,
            seed: 0,
            loss_probability: 0.0,
            trace_capacity: 0,
            churn: ChurnSchedule::none(),
        }
    }
}

impl TransportConfig {
    /// Sets the per-link bandwidth in bytes per tick.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero bandwidth (a link
    /// that can never transmit would wedge the simulation, not model a
    /// slow network).
    pub fn with_bandwidth(mut self, bytes_per_tick: u64) -> Result<Self, SimError> {
        if bytes_per_tick == 0 {
            return Err(SimError::invalid_parameter(
                "link bandwidth must be at least one byte per tick",
            ));
        }
        self.bytes_per_tick = bytes_per_tick;
        Ok(self)
    }

    /// Sets the per-link send-queue bound, in messages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for capacity zero (every
    /// send would be dropped before reaching the wire).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Result<Self, SimError> {
        if capacity == 0 {
            return Err(SimError::invalid_parameter(
                "link queue capacity must be positive",
            ));
        }
        self.queue_capacity = capacity;
        Ok(self)
    }

    /// Sets the number of worker threads the reactor multiplexes node
    /// wakeups over. Output is bit-for-bit identical for every count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero threads.
    pub fn with_threads(mut self, threads: usize) -> Result<Self, SimError> {
        if threads == 0 {
            return Err(SimError::invalid_parameter(
                "reactor threads must be positive",
            ));
        }
        self.threads = threads;
        Ok(self)
    }

    /// Sets the RNG seed (per-node handler RNGs and transport loss derive
    /// from it deterministically).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the independent per-message loss probability.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] outside `[0, 1]`.
    pub fn with_loss_probability(mut self, p: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(SimError::invalid_parameter(
                "loss probability must lie in [0, 1]",
            ));
        }
        self.loss_probability = p;
        Ok(self)
    }

    /// Enables transport tracing with the given ring-buffer capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Installs a churn schedule.
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        self.churn = churn;
        self
    }
}

/// One directed link per overlay edge, indexed by the graph's CSR layout:
/// link `offsets[u] + i` carries traffic from `u` to its `i`-th sorted
/// neighbor.
///
/// The set of non-empty links is tracked explicitly so idle checks are
/// O(1) and per-tick service visits only busy links — at 10⁵ nodes a
/// tail-drain with a handful of loaded links must not re-scan the whole
/// edge set every tick.
#[derive(Debug)]
pub(crate) struct Transport<M> {
    links: Vec<Link<M>>,
    /// CSR offsets: node `u`'s outgoing links are
    /// `offsets[u]..offsets[u + 1]`.
    offsets: Vec<usize>,
    /// `(from, to)` of each link, for delivery without a graph lookup.
    endpoints: Vec<(NodeId, NodeId)>,
    /// Ids of links with queued traffic, kept sorted so service order is
    /// the deterministic CSR link order.
    busy: BTreeSet<usize>,
    bytes_per_tick: u64,
    queue_capacity: usize,
    /// Distribution of per-message queueing delays (ticks spent waiting
    /// behind other traffic before transmission started). Recorded in the
    /// sequential link phase, in deterministic CSR link order.
    queue_delay: Histogram,
    /// Distribution of post-enqueue queue depths, sampled at every
    /// accepted enqueue. Recorded in the sequential transport phase.
    queue_depth: Histogram,
}

impl<M> Transport<M> {
    pub(crate) fn new(graph: &Graph, config: &TransportConfig) -> Self {
        let n = graph.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut endpoints = Vec::new();
        for u in graph.node_ids() {
            offsets.push(offsets[u.index()] + graph.degree(u));
            endpoints.extend(graph.neighbor_slice(u).iter().map(|&v| (u, v)));
        }
        let links = (0..offsets[n])
            .map(|_| Link::new(config.queue_capacity))
            .collect();
        Transport {
            links,
            offsets,
            endpoints,
            busy: BTreeSet::new(),
            bytes_per_tick: config.bytes_per_tick,
            queue_capacity: config.queue_capacity,
            queue_delay: Histogram::new(),
            queue_depth: Histogram::new(),
        }
    }

    /// The per-link queue bound, in messages.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The link id for `from → to`, if the edge exists.
    pub(crate) fn link_id(&self, graph: &Graph, from: NodeId, to: NodeId) -> Option<usize> {
        let position = graph.neighbor_slice(from).binary_search(&to).ok()?;
        Some(self.offsets[from.index()] + position)
    }

    /// Queue depths of `from`'s outgoing links, indexed like its neighbor
    /// slice.
    pub(crate) fn depths(&self, from: NodeId) -> Vec<u32> {
        self.links[self.offsets[from.index()]..self.offsets[from.index() + 1]]
            .iter()
            .map(|link| link.depth() as u32)
            .collect()
    }

    /// Hands a message to link `id`; returns whether it was accepted
    /// (false means the bounded queue is full).
    pub(crate) fn enqueue_at(&mut self, id: usize, msg: M, bytes: usize, tick: u64) -> bool {
        let link = &mut self.links[id];
        if link.enqueue(msg, bytes, tick) {
            let depth = link.depth() as u64;
            self.busy.insert(id);
            self.queue_depth.record(depth);
            true
        } else {
            false
        }
    }

    /// Spends every busy link's byte budget for `tick`; invokes `deliver`
    /// with `(source, destination, completion)` for each fully
    /// transmitted message, in deterministic link order.
    pub(crate) fn service<F>(&mut self, tick: u64, mut deliver: F)
    where
        F: FnMut(NodeId, NodeId, Completed<M>),
    {
        let busy: Vec<usize> = self.busy.iter().copied().collect();
        let mut completed = Vec::new();
        for id in busy {
            let link = &mut self.links[id];
            link.service(self.bytes_per_tick, tick, &mut completed);
            if link.is_empty() {
                self.busy.remove(&id);
            }
            let (from, to) = self.endpoints[id];
            for done in completed.drain(..) {
                self.queue_delay.record(done.waited);
                deliver(from, to, done);
            }
        }
    }

    /// Whether any link still holds queued or in-service messages. O(1).
    pub(crate) fn is_idle(&self) -> bool {
        self.busy.is_empty()
    }

    /// Per-link statistics of `from → to`, if the edge exists.
    pub(crate) fn link_stats(&self, graph: &Graph, from: NodeId, to: NodeId) -> Option<&LinkStats> {
        self.link_id(graph, from, to)
            .map(|id| self.links[id].stats())
    }

    /// Folds queue-related link statistics into aggregate [`NetStats`].
    pub(crate) fn fold_stats(&self, stats: &mut NetStats) {
        stats.max_queue_depth = self
            .links
            .iter()
            .map(|l| l.stats().max_depth)
            .max()
            .unwrap_or(0);
        stats.queue_delay = self.queue_delay;
    }

    /// The distribution of post-enqueue queue depths (one sample per
    /// accepted enqueue).
    pub(crate) fn queue_depths_histogram(&self) -> &Histogram {
        &self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdsearch_graph::generators;

    #[test]
    fn degenerate_configs_are_rejected_not_panics() {
        assert!(TransportConfig::default().with_bandwidth(0).is_err());
        assert!(TransportConfig::default().with_queue_capacity(0).is_err());
        assert!(TransportConfig::default().with_threads(0).is_err());
        assert!(TransportConfig::default()
            .with_loss_probability(1.5)
            .is_err());
        assert!(TransportConfig::default()
            .with_loss_probability(f64::NAN)
            .is_err());
        assert!(TransportConfig::default().with_bandwidth(1).is_ok());
    }

    #[test]
    fn link_ids_follow_csr_layout() {
        let g = generators::path(3); // 0 - 1 - 2
        let t: Transport<u32> = Transport::new(&g, &TransportConfig::default());
        // Degrees: 1, 2, 1 → 4 directed links.
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.link_id(&g, NodeId::new(0), NodeId::new(1)), Some(0));
        assert_eq!(t.link_id(&g, NodeId::new(1), NodeId::new(0)), Some(1));
        assert_eq!(t.link_id(&g, NodeId::new(1), NodeId::new(2)), Some(2));
        assert_eq!(t.link_id(&g, NodeId::new(2), NodeId::new(1)), Some(3));
        assert_eq!(t.link_id(&g, NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn enqueue_reports_route_and_capacity() {
        let g = generators::path(3);
        let cfg = TransportConfig::default().with_queue_capacity(1).unwrap();
        let mut t: Transport<u32> = Transport::new(&g, &cfg);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let ab = t.link_id(&g, a, b).unwrap();
        assert!(t.enqueue_at(ab, 1, 8, 0));
        assert!(!t.enqueue_at(ab, 2, 8, 0));
        assert_eq!(t.link_id(&g, a, c), None);
        assert!(!t.is_idle());
        assert_eq!(t.depths(a), vec![1]);
        assert_eq!(t.depths(b), vec![0, 0]);
    }

    #[test]
    fn service_delivers_in_link_order() {
        let g = generators::path(3);
        let mut t: Transport<u32> = Transport::new(&g, &TransportConfig::default());
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let bc = t.link_id(&g, b, c).unwrap();
        let ab = t.link_id(&g, a, b).unwrap();
        t.enqueue_at(bc, 10, 4, 0);
        t.enqueue_at(ab, 20, 4, 0);
        let mut seen = Vec::new();
        t.service(0, |from, to, done| seen.push((from, to, done.msg)));
        // Link order is CSR order: 0→1 before 1→2.
        assert_eq!(seen, vec![(a, b, 20), (b, c, 10)]);
        assert!(t.is_idle());
        let stats = t.link_stats(&g, b, c).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.bytes, 4);
    }
}
