//! Wire-size accounting for simulated messages.
//!
//! The paper's motivation leans on bandwidth: flooding "does not scale in
//! terms of bandwidth consumption" and broadcasting indexes "is prohibitive
//! in terms of bandwidth and storage". To make those comparisons concrete,
//! every simulated message reports its encoded size, and [`NetStats`]
//! accumulates bytes alongside message counts.
//!
//! [`NetStats`]: crate::NetStats

use bytes::{BufMut, BytesMut};

/// A message with a well-defined encoded size.
///
/// Implementations may serialize for real (see [`encode_f32_slice`]) or
/// compute the size analytically; the simulator only needs the byte count.
pub trait WireMessage {
    /// Size of the message on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

/// Encodes a `f32` slice with a `u32` length prefix; returns the buffer.
///
/// Helper for protocol crates that want real encodings in tests: the
/// returned buffer's length is the wire size of the payload.
pub fn encode_f32_slice(values: &[f32]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(4 + 4 * values.len());
    buf.put_u32(values.len() as u32);
    for v in values {
        buf.put_f32(*v);
    }
    buf
}

/// Decodes a buffer produced by [`encode_f32_slice`].
///
/// Returns `None` if the buffer is truncated or the length prefix
/// disagrees with the payload.
pub fn decode_f32_slice(buf: &[u8]) -> Option<Vec<f32>> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() != 4 + 4 * len {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for chunk in buf[4..].chunks_exact(4) {
        out.push(f32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Some(out)
}

impl WireMessage for Vec<f32> {
    /// Length-prefixed IEEE-754 encoding: `4 + 4n` bytes.
    fn wire_size(&self) -> usize {
        4 + 4 * self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let buf = encode_f32_slice(&values);
        assert_eq!(buf.len(), values.wire_size());
        let back = decode_f32_slice(&buf).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn empty_slice() {
        let buf = encode_f32_slice(&[]);
        assert_eq!(buf.len(), 4);
        assert_eq!(decode_f32_slice(&buf).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn rejects_truncated() {
        let buf = encode_f32_slice(&[1.0, 2.0]);
        assert!(decode_f32_slice(&buf[..buf.len() - 1]).is_none());
        assert!(decode_f32_slice(&[]).is_none());
        assert!(decode_f32_slice(&[0, 0]).is_none());
    }

    #[test]
    fn rejects_bad_length_prefix() {
        let mut buf = encode_f32_slice(&[1.0]).to_vec();
        buf[3] = 9; // claims 9 floats, carries 1
        assert!(decode_f32_slice(&buf).is_none());
    }
}
