//! Property-based tests for the network simulator: transport accounting
//! and determinism must hold for arbitrary topologies, latency/loss
//! settings and workloads — on both the instant event loop and the
//! bounded-transport reactor (where determinism must additionally hold
//! across worker-thread counts).

use gdsearch_graph::{generators, NodeId};
use gdsearch_sim::churn::ChurnSchedule;
use gdsearch_sim::trace::Trace;
use gdsearch_sim::{
    LatencyModel, NetStats, Network, NetworkConfig, NodeApi, NodeHandler, Reactor, TransportConfig,
    WireMessage,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A counter token relayed to a deterministic neighbor until it hits zero.
#[derive(Clone, Debug)]
struct Token(u32);

impl WireMessage for Token {
    fn wire_size(&self) -> usize {
        4
    }
}

#[derive(Default)]
struct Relay {
    received: u32,
}

impl NodeHandler<Token> for Relay {
    fn handle(&mut self, _from: Option<NodeId>, msg: Token, api: &mut NodeApi<'_, Token>) {
        self.received += 1;
        if msg.0 > 0 {
            if let Some(next) = api.random_neighbor() {
                api.send(next, Token(msg.0 - 1));
            }
        }
    }
}

fn run_network(
    seed: u64,
    n: u32,
    extra: u32,
    loss: f64,
    latency_mean: f64,
    tokens: u32,
    hops: u32,
) -> (NetStats, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::random_connected(n, extra, &mut rng).unwrap();
    let handlers: Vec<Relay> = (0..n).map(|_| Relay::default()).collect();
    let mut cfg = NetworkConfig::default()
        .with_seed(seed ^ 0xbeef)
        .with_loss_probability(loss)
        .unwrap();
    if latency_mean > 0.0 {
        cfg = cfg.with_latency(LatencyModel::exponential(latency_mean).unwrap());
    }
    let mut net = Network::new(graph, handlers, cfg).unwrap();
    for t in 0..tokens {
        net.inject(NodeId::new(t % n), Token(hops)).unwrap();
    }
    net.run_to_completion(5_000_000).unwrap();
    let total_received = (0..n)
        .map(|u| net.handler(NodeId::new(u)).unwrap().received)
        .sum();
    (*net.stats(), total_received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transport accounting always balances: every transported message is
    /// delivered, lost or dropped; deliveries equal handler invocations.
    #[test]
    fn accounting_balances(
        seed in 0u64..10_000,
        n in 2u32..40,
        extra in 0u32..30,
        loss in 0.0f64..0.9,
        latency in 0.0f64..0.5,
        tokens in 1u32..10,
        hops in 0u32..30,
    ) {
        let (stats, received) = run_network(seed, n, extra, loss, latency, tokens, hops);
        prop_assert_eq!(
            stats.sent + u64::from(tokens),
            stats.delivered + stats.lost + stats.dropped_down,
            "accounting must balance: {:?}", stats
        );
        prop_assert_eq!(u64::from(received), stats.delivered);
        prop_assert_eq!(stats.bytes_sent, stats.sent * 4);
    }

    /// Without loss, a relay chain delivers exactly `hops` messages.
    #[test]
    fn lossless_chains_complete(
        seed in 0u64..10_000,
        n in 2u32..30,
        hops in 0u32..40,
    ) {
        let (stats, _) = run_network(seed, n, 10, 0.0, 0.1, 1, hops);
        prop_assert_eq!(stats.sent, u64::from(hops));
        prop_assert_eq!(stats.delivered, u64::from(hops) + 1);
        prop_assert_eq!(stats.lost, 0);
    }

    /// The simulator is deterministic per seed.
    #[test]
    fn deterministic_per_seed(
        seed in 0u64..10_000,
        n in 2u32..30,
        loss in 0.0f64..0.5,
    ) {
        let a = run_network(seed, n, 8, loss, 0.2, 4, 15);
        let b = run_network(seed, n, 8, loss, 0.2, 4, 15);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Deterministic replay of the reactor: the same seed yields the same
    /// trace, stats, handler states and tick count for *every* worker
    /// thread count, on arbitrary topologies with loss, churn, narrow
    /// links and short queues.
    #[test]
    fn reactor_replay_is_identical_across_thread_counts(
        seed in 0u64..10_000,
        n in 3u32..30,
        extra in 0u32..20,
        loss in 0.0f64..0.4,
        bandwidth in 1u64..64,
        queue in 1usize..8,
        tokens in 1u32..8,
        hops in 0u32..25,
    ) {
        let run = |threads: usize| -> (NetStats, Trace, Vec<u32>, u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = generators::random_connected(n, extra, &mut rng).unwrap();
            let churn = ChurnSchedule::random_failures(n, 0.2, 30.0, 4.0, &mut rng).unwrap();
            let handlers: Vec<Relay> = (0..n).map(|_| Relay::default()).collect();
            let cfg = TransportConfig::default()
                .with_seed(seed ^ 0xfeed)
                .with_loss_probability(loss).unwrap()
                .with_bandwidth(bandwidth).unwrap()
                .with_queue_capacity(queue).unwrap()
                .with_threads(threads).unwrap()
                .with_churn(churn)
                .with_trace_capacity(1 << 14);
            let mut net = Reactor::new(graph, handlers, cfg).unwrap();
            for t in 0..tokens {
                net.inject(NodeId::new(t % n), Token(hops)).unwrap();
            }
            net.run_to_completion(1_000_000).unwrap();
            let received = (0..n)
                .map(|u| net.handler(NodeId::new(u)).unwrap().received)
                .collect();
            (*net.stats(), net.trace().clone(), received, net.now_tick())
        };
        let reference = run(1);
        for threads in [2usize, 4] {
            let replay = run(threads);
            prop_assert_eq!(&replay.0, &reference.0, "stats diverged at {} threads", threads);
            prop_assert_eq!(&replay.1, &reference.1, "trace diverged at {} threads", threads);
            prop_assert_eq!(&replay.2, &reference.2);
            prop_assert_eq!(replay.3, reference.3);
        }
    }

    /// Churn under backpressure: accounting still balances exactly — every
    /// transported message is delivered, lost, dropped at a down node,
    /// dropped by a full queue or dropped for lack of a route.
    #[test]
    fn reactor_accounting_balances_under_churn_and_backpressure(
        seed in 0u64..10_000,
        n in 2u32..30,
        extra in 0u32..20,
        loss in 0.0f64..0.6,
        bandwidth in 1u64..32,
        queue in 1usize..4,
        tokens in 1u32..10,
        hops in 0u32..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::random_connected(n, extra, &mut rng).unwrap();
        let churn = ChurnSchedule::random_failures(n, 0.3, 50.0, 7.0, &mut rng).unwrap();
        let handlers: Vec<Relay> = (0..n).map(|_| Relay::default()).collect();
        let cfg = TransportConfig::default()
            .with_seed(seed ^ 0xabcd)
            .with_loss_probability(loss).unwrap()
            .with_bandwidth(bandwidth).unwrap()
            .with_queue_capacity(queue).unwrap()
            .with_threads(2).unwrap()
            .with_churn(churn);
        let mut net = Reactor::new(graph, handlers, cfg).unwrap();
        for t in 0..tokens {
            net.inject(NodeId::new(t % n), Token(hops)).unwrap();
        }
        net.run_to_completion(1_000_000).unwrap();
        let stats = net.stats();
        prop_assert!(net.is_idle());
        prop_assert_eq!(
            stats.sent + u64::from(tokens),
            stats.delivered + stats.dropped_total(),
            "accounting must balance: {:?}", stats
        );
        let received: u64 = (0..n)
            .map(|u| u64::from(net.handler(NodeId::new(u)).unwrap().received))
            .sum();
        prop_assert_eq!(received, stats.delivered);
        prop_assert_eq!(stats.bytes_sent, stats.sent * 4);
        // Bounded queues can never exceed their capacity.
        prop_assert!(stats.max_queue_depth <= queue as u64);
    }

    /// Virtual time never runs backwards.
    #[test]
    fn time_is_monotone(seed in 0u64..5_000, n in 3u32..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::random_connected(n, 5, &mut rng).unwrap();
        let handlers: Vec<Relay> = (0..n).map(|_| Relay::default()).collect();
        let cfg = NetworkConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::exponential(0.3).unwrap());
        let mut net = Network::new(graph, handlers, cfg).unwrap();
        net.inject(NodeId::new(0), Token(20)).unwrap();
        let mut last = net.now();
        while let Some(t) = net.step() {
            prop_assert!(t >= last, "time went backwards: {t} < {last}");
            last = t;
        }
    }
}
