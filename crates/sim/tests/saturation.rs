//! Saturation and backpressure scenarios for the bounded-transport
//! reactor: link capacity must actually gate throughput, queues must
//! build and drain as bandwidth dictates, and the backpressure API must
//! let adaptive senders avoid the drops that blind senders suffer.

use gdsearch_graph::{generators, NodeId};
use gdsearch_sim::churn::{ChurnEvent, ChurnKind, ChurnSchedule};
use gdsearch_sim::{
    NodeApi, NodeHandler, Reactor, SimError, SimTime, TransportConfig, WireMessage,
};

/// A fixed-size payload message.
#[derive(Clone, Debug)]
struct Chunk;

impl WireMessage for Chunk {
    fn wire_size(&self) -> usize {
        100
    }
}

/// Sends `burst` chunks to the first neighbor on activation, then counts
/// deliveries.
struct Source {
    burst: u32,
}

impl NodeHandler<Chunk> for Source {
    fn handle(&mut self, from: Option<NodeId>, _msg: Chunk, api: &mut NodeApi<'_, Chunk>) {
        if from.is_none() {
            for _ in 0..self.burst {
                let next = api.neighbors()[0];
                api.send(next, Chunk);
            }
        }
    }
}

fn sink() -> Source {
    Source { burst: 0 }
}

/// Drives a 2-node burst through one link at the given bandwidth;
/// returns (ticks to drain, stats).
fn burst_through_link(burst: u32, bytes_per_tick: u64) -> (u64, gdsearch_sim::NetStats) {
    let g = generators::path(2);
    let cfg = TransportConfig::default()
        .with_bandwidth(bytes_per_tick)
        .unwrap()
        .with_queue_capacity(1024)
        .unwrap();
    let mut net = Reactor::new(g, vec![Source { burst }, sink()], cfg).unwrap();
    net.inject(NodeId::new(0), Chunk).unwrap();
    let ticks = net.run_to_completion(1_000_000).unwrap();
    (ticks, *net.stats())
}

#[test]
fn drain_time_scales_inversely_with_bandwidth() {
    // 50 chunks of 100 bytes = 5000 bytes on the wire.
    let (slow_ticks, slow) = burst_through_link(50, 100); // 1 msg/tick
    let (mid_ticks, mid) = burst_through_link(50, 500); // 5 msgs/tick
    let (fast_ticks, fast) = burst_through_link(50, 5_000); // whole burst/tick
    for s in [&slow, &mid, &fast] {
        assert_eq!(s.delivered, 51);
        assert_eq!(s.dropped_total(), 0);
    }
    // Serialization dominates: ~50, ~10, ~1 service ticks respectively.
    assert!(slow_ticks > mid_ticks && mid_ticks > fast_ticks);
    assert!(slow_ticks >= 50);
    // Queue delay likewise shrinks with bandwidth, in total and at the
    // tail.
    assert!(slow.queue_delay.sum() > mid.queue_delay.sum());
    assert!(slow.p99_queue_delay_ticks() > mid.p99_queue_delay_ticks());
    assert!(fast.queue_delay.sum() == 0);
    // The queue high-water mark is the full burst in every case (all 50
    // messages are enqueued in one activation).
    assert_eq!(slow.max_queue_depth, 50);
}

#[test]
fn throughput_never_exceeds_link_bandwidth() {
    let (ticks, stats) = burst_through_link(64, 300);
    // 64 × 100 bytes over a 300 B/tick link needs ≥ ⌈6400 / 300⌉ ticks of
    // wire time.
    assert!(
        ticks as f64 >= (stats.bytes_sent as f64 / 300.0).floor(),
        "{ticks} ticks moved {} bytes over a 300 B/tick link",
        stats.bytes_sent
    );
}

#[test]
fn blind_senders_drop_where_adaptive_senders_wait() {
    // Blind: shove 20 chunks into a queue of 4 → 16 backpressure drops.
    let g = generators::path(2);
    let cfg = TransportConfig::default()
        .with_bandwidth(100)
        .unwrap()
        .with_queue_capacity(4)
        .unwrap();
    let mut blind =
        Reactor::new(g.clone(), vec![Source { burst: 20 }, sink()], cfg.clone()).unwrap();
    blind.inject(NodeId::new(0), Chunk).unwrap();
    blind.run_to_completion(10_000).unwrap();
    assert_eq!(blind.stats().dropped_backpressure, 16);
    assert_eq!(blind.stats().delivered, 1 + 4);

    // Adaptive: poll readiness and keep unsent work locally, re-kicking
    // itself each activation until everything fit through the queue.
    #[derive(Debug)]
    struct Adaptive {
        remaining: u32,
    }
    impl NodeHandler<Chunk> for Adaptive {
        fn handle(&mut self, _from: Option<NodeId>, _msg: Chunk, api: &mut NodeApi<'_, Chunk>) {
            let next = api.neighbors()[0];
            while self.remaining > 0 && api.try_send(next, Chunk).is_ok() {
                self.remaining -= 1;
            }
        }
    }
    // The sink echoes one chunk back per activation so the sender keeps
    // getting activated to flush its backlog (a self-clocking window, the
    // way real protocols ride acks).
    #[derive(Debug)]
    struct Echo;
    impl NodeHandler<Chunk> for Echo {
        fn handle(&mut self, from: Option<NodeId>, _msg: Chunk, api: &mut NodeApi<'_, Chunk>) {
            if let Some(parent) = from {
                api.send(parent, Chunk);
            }
        }
    }
    #[derive(Debug)]
    enum Either {
        Sender(Adaptive),
        Sink(Echo),
    }
    impl NodeHandler<Chunk> for Either {
        fn handle(&mut self, from: Option<NodeId>, msg: Chunk, api: &mut NodeApi<'_, Chunk>) {
            match self {
                Either::Sender(h) => h.handle(from, msg, api),
                Either::Sink(h) => h.handle(from, msg, api),
            }
        }
    }
    let mut adaptive = Reactor::new(
        g,
        vec![
            Either::Sender(Adaptive { remaining: 20 }),
            Either::Sink(Echo),
        ],
        cfg,
    )
    .unwrap();
    adaptive.inject(NodeId::new(0), Chunk).unwrap();
    adaptive.run_to_completion(10_000).unwrap();
    assert_eq!(adaptive.stats().dropped_backpressure, 0);
    match adaptive.handler(NodeId::new(0)).unwrap() {
        Either::Sender(h) => assert_eq!(h.remaining, 0, "backlog fully flushed"),
        Either::Sink(_) => unreachable!("node 0 is the sender"),
    }
}

#[test]
fn churn_under_backpressure_drops_queued_traffic_cleanly() {
    // The sink dies while a saturated queue is still draining towards it:
    // in-flight messages arriving at a down node must become
    // dropped_down, and accounting must still balance.
    let g = generators::path(2);
    let churn = ChurnSchedule::from_events(vec![ChurnEvent {
        time: SimTime::new(3.0).unwrap(),
        node: NodeId::new(1),
        kind: ChurnKind::Down,
    }]);
    let cfg = TransportConfig::default()
        .with_bandwidth(100)
        .unwrap() // 1 chunk per tick
        .with_queue_capacity(64)
        .unwrap()
        .with_churn(churn);
    let mut net = Reactor::new(g, vec![Source { burst: 10 }, sink()], cfg).unwrap();
    net.inject(NodeId::new(0), Chunk).unwrap();
    net.run_to_completion(10_000).unwrap();
    let stats = net.stats();
    // Injection + 10 sends, all transported (queue was deep enough).
    assert_eq!(stats.sent, 10);
    assert_eq!(stats.dropped_backpressure, 0);
    assert!(stats.dropped_down > 0, "late arrivals must die: {stats:?}");
    assert_eq!(
        stats.sent + 1,
        stats.delivered + stats.dropped_total(),
        "accounting out of balance: {stats:?}"
    );
}

#[test]
fn degenerate_transport_configs_return_errors_not_panics() {
    assert!(matches!(
        TransportConfig::default().with_bandwidth(0),
        Err(SimError::InvalidParameter { .. })
    ));
    assert!(matches!(
        TransportConfig::default().with_queue_capacity(0),
        Err(SimError::InvalidParameter { .. })
    ));
    assert!(matches!(
        TransportConfig::default().with_threads(0),
        Err(SimError::InvalidParameter { .. })
    ));
    assert!(matches!(
        TransportConfig::default().with_loss_probability(-0.1),
        Err(SimError::InvalidParameter { .. })
    ));
}
