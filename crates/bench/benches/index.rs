//! Criterion benches for the nearest-neighbor indexes: exact brute force
//! vs. HNSW vs. LSH, over a clustered synthetic corpus — the ANN trade-off
//! the paper's §III-A references.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch_embed::index::{BruteForceIndex, HnswIndex, LshIndex, VectorIndex};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::{Embedding, Similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn corpus_vectors(n: usize, dim: usize) -> Vec<Embedding> {
    let mut rng = StdRng::seed_from_u64(3);
    SyntheticCorpus::builder()
        .vocab_size(n)
        .dim(dim)
        .num_topics(n / 40 + 2)
        .generate(&mut rng)
        .expect("valid corpus parameters")
        .embeddings()
        .to_vec()
}

fn bench_search(c: &mut Criterion) {
    let dim = 64;
    let mut group = c.benchmark_group("index_search_top10");
    for n in [1_000usize, 10_000] {
        let items = corpus_vectors(n, dim);
        let query = items[0].clone();

        let brute = BruteForceIndex::build(items.clone(), Similarity::Cosine).unwrap();
        group.bench_with_input(BenchmarkId::new("brute", n), &query, |b, q| {
            b.iter(|| brute.search(black_box(q), 10).unwrap())
        });

        let mut rng = StdRng::seed_from_u64(5);
        let hnsw = HnswIndex::builder()
            .max_connections(16)
            .ef_construction(100)
            .ef_search(64)
            .build(items.clone(), Similarity::Cosine, &mut rng)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("hnsw", n), &query, |b, q| {
            b.iter(|| hnsw.search(black_box(q), 10).unwrap())
        });

        let mut rng = StdRng::seed_from_u64(6);
        let lsh = LshIndex::builder()
            .num_tables(16)
            .bits(8)
            .build(items.clone(), &mut rng)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("lsh", n), &query, |b, q| {
            b.iter(|| lsh.search(black_box(q), 10).unwrap())
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let dim = 64;
    let items = corpus_vectors(2_000, dim);
    let mut group = c.benchmark_group("index_build_2k");
    group.sample_size(10);
    group.bench_function("brute", |b| {
        b.iter(|| BruteForceIndex::build(black_box(items.clone()), Similarity::Cosine).unwrap())
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            HnswIndex::builder()
                .build(black_box(items.clone()), Similarity::Cosine, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("lsh", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            LshIndex::builder()
                .build(black_box(items.clone()), &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_build);
criterion_main!(benches);
