//! Criterion benches for the graph substrate: generator throughput and
//! BFS, the two setup-phase costs of every experiment iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch_graph::algo::bfs;
use gdsearch_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_1k_nodes");
    group.sample_size(20);
    group.bench_function("erdos_renyi", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::erdos_renyi(black_box(1000), 0.04, &mut rng).unwrap()
        })
    });
    group.bench_function("watts_strogatz", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            generators::watts_strogatz(black_box(1000), 40, 0.1, &mut rng).unwrap()
        })
    });
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            generators::barabasi_albert(black_box(1000), 20, &mut rng).unwrap()
        })
    });
    group.bench_function("holme_kim_social", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            generators::social_circles_like_scaled(black_box(1000), &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    for n in [1000u32, 4039] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::social_circles_like_scaled(n, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("distances", n), &g, |b, g| {
            b.iter(|| bfs::distances(black_box(g), NodeId::new(0)))
        });
        group.bench_with_input(BenchmarkId::new("rings_radius8", n), &g, |b, g| {
            b.iter(|| bfs::distance_rings(black_box(g), NodeId::new(0), 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators, bench_bfs);
criterion_main!(benches);
