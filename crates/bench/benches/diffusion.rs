//! Criterion benches for the diffusion engines: dense power iteration vs.
//! per-source decomposition across teleport probabilities and source
//! counts. Quantifies the sparse-E0 crossover that `DiffusionEngine::Auto`
//! exploits (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch_diffusion::{per_source, power, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn test_graph(n: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generators::social_circles_like_scaled(n, &mut rng).expect("valid generator parameters")
}

fn sparse_sources(n: u32, count: usize, dim: usize) -> Vec<(NodeId, Embedding)> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..count)
        .map(|_| {
            (
                NodeId::new(rng.random_range(0..n)),
                Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
            )
        })
        .collect()
}

fn bench_power_iteration_alpha(c: &mut Criterion) {
    let graph = test_graph(1000);
    let dim = 32;
    let sources = sparse_sources(1000, 64, dim);
    let e0 = Signal::from_sparse_rows(1000, dim, &sources).expect("valid rows");
    let mut group = c.benchmark_group("power_iteration_alpha");
    for alpha in [0.1f32, 0.5, 0.9] {
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &cfg, |b, cfg| {
            b.iter(|| power::diffuse(black_box(&graph), black_box(&e0), cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_engine_crossover(c: &mut Criterion) {
    // Sweep the number of document-hosting nodes at fixed dim: per-source
    // wins when |sources| << dim, dense wins beyond the crossover.
    let graph = test_graph(1000);
    let dim = 32;
    let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap();
    let mut group = c.benchmark_group("engine_crossover");
    for count in [4usize, 16, 64, 256] {
        let sources = sparse_sources(1000, count, dim);
        group.bench_with_input(
            BenchmarkId::new("per_source", count),
            &sources,
            |b, sources| {
                b.iter(|| {
                    per_source::diffuse_sparse(black_box(&graph), dim, sources, &cfg).unwrap()
                })
            },
        );
        let e0 = Signal::from_sparse_rows(1000, dim, &sources).unwrap();
        group.bench_with_input(BenchmarkId::new("dense", count), &e0, |b, e0| {
            b.iter(|| power::diffuse(black_box(&graph), e0, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_single_ppr_vector(c: &mut Criterion) {
    let graph = test_graph(4039); // full Facebook scale
    let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap();
    c.bench_function("ppr_vector_facebook_scale", |b| {
        b.iter(|| per_source::ppr_vector(black_box(&graph), NodeId::new(17), &cfg).unwrap())
    });
}

criterion_group!(
    benches,
    bench_power_iteration_alpha,
    bench_engine_crossover,
    bench_single_ppr_vector
);
criterion_main!(benches);
