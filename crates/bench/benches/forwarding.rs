//! Criterion benches for the per-hop forwarding decision — the operation
//! every node performs on every query message, so its throughput bounds
//! the simulated network's query capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch::forwarding::{select_next_hops, ForwardContext};
use gdsearch::PolicyKind;
use gdsearch_diffusion::Signal;
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = generators::social_circles_like_scaled(1000, &mut rng).unwrap();
    let dim = 64;
    let mut embeddings = Signal::zeros(1000, dim);
    for u in 0..1000 {
        for x in embeddings.row_mut(u) {
            *x = rng.random::<f32>() - 0.5;
        }
    }
    let query = Embedding::new((0..dim).map(|_| rng.random::<f32>() - 0.5).collect());
    // A hub node: many candidates, the expensive case.
    let hub = graph
        .node_ids()
        .max_by_key(|&u| graph.degree(u))
        .expect("non-empty graph");
    let candidates: Vec<NodeId> = graph.neighbors(hub).collect();

    let mut group = c.benchmark_group("forwarding_decision");
    group.throughput(criterion::Throughput::Elements(1));
    for (name, policy) in [
        ("ppr_greedy", PolicyKind::PprGreedy),
        ("random_walk", PolicyKind::RandomWalk),
        ("degree_biased", PolicyKind::DegreeBiased),
        ("hybrid", PolicyKind::Hybrid { epsilon: 0.2 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, candidates.len()),
            &policy,
            |b, &policy| {
                let mut walk_rng = StdRng::seed_from_u64(4);
                b.iter(|| {
                    let ctx = ForwardContext {
                        node: hub,
                        candidates: black_box(&candidates),
                        query: &query,
                        node_embeddings: &embeddings,
                        graph: &graph,
                        fanout: 1,
                        scores: None,
                    };
                    select_next_hops(policy, &ctx, &mut walk_rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
