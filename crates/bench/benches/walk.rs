//! Criterion benches for end-to-end query walks: the full per-query cost
//! of the scheme (local retrieval + candidate filtering + policy) at
//! paper-like scale, and the network build (personalization + diffusion)
//! it amortizes over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::WordId;
use gdsearch_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_walk_and_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let graph = generators::social_circles_like_scaled(1000, &mut rng).unwrap();
    let corpus = SyntheticCorpus::builder()
        .vocab_size(2000)
        .dim(64)
        .num_topics(50)
        .generate(&mut rng)
        .unwrap();

    let mut group = c.benchmark_group("scheme");
    group.sample_size(20);
    for docs in [10usize, 100] {
        let words: Vec<WordId> = (0..docs as u32).map(WordId::new).collect();
        let placement = Placement::uniform(&graph, &words, &mut rng).unwrap();
        let config = SchemeConfig::default();

        group.bench_with_input(
            BenchmarkId::new("build_network", docs),
            &placement,
            |b, placement| {
                b.iter(|| {
                    let mut build_rng = StdRng::seed_from_u64(2);
                    SearchNetwork::build(
                        black_box(&graph),
                        &corpus,
                        placement,
                        &config,
                        &mut build_rng,
                    )
                    .unwrap()
                })
            },
        );

        let mut build_rng = StdRng::seed_from_u64(2);
        let network =
            SearchNetwork::build(&graph, &corpus, &placement, &config, &mut build_rng).unwrap();
        let query = corpus.embedding(WordId::new(500));
        group.bench_with_input(
            BenchmarkId::new("query_walk_ttl50", docs),
            &network,
            |b, network| {
                let mut walk_rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    network
                        .query(black_box(query), NodeId::new(7), &mut walk_rng)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_walk_and_build);
criterion_main!(benches);
