//! Criterion benches for the forward-push engine against the sweep
//! engines: single-source columns at growing graph size (push work tracks
//! the pushed mass, sweeps pay `O(iters · E)` regardless) and the batched
//! multi-source driver across worker counts. Quantifies the crossover that
//! `per_source::auto_diffuse` exploits when routing sparse
//! personalizations to `push::diffuse_sparse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdsearch_diffusion::push::{self, PushConfig};
use gdsearch_diffusion::{per_source, power, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Preferential-attachment topology: hub-heavy like real P2P overlays,
/// cheap to generate at bench scale.
fn ba_graph(n: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generators::barabasi_albert(n, 5, &mut rng).expect("valid generator parameters")
}

fn sparse_sources(n: u32, count: usize, dim: usize) -> Vec<(NodeId, Embedding)> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..count)
        .map(|_| {
            (
                NodeId::new(rng.random_range(0..n)),
                Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
            )
        })
        .collect()
}

fn bench_single_source_engines(c: &mut Criterion) {
    let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap();
    let mut group = c.benchmark_group("single_source_engines");
    for n in [1_000u32, 10_000] {
        let graph = ba_graph(n);
        let source = NodeId::new(17);
        let push_cfg = PushConfig::new(cfg);
        group.bench_with_input(BenchmarkId::new("push", n), &graph, |b, g| {
            b.iter(|| push::ppr_vector(black_box(g), source, &push_cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("per_source", n), &graph, |b, g| {
            b.iter(|| per_source::ppr_vector(black_box(g), source, &cfg).unwrap())
        });
        let mut e0 = Signal::zeros(n as usize, 1);
        e0.row_mut(source.index())[0] = 1.0;
        group.bench_with_input(BenchmarkId::new("power_dense", n), &graph, |b, g| {
            b.iter(|| power::diffuse(black_box(g), &e0, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_push_batch_threads(c: &mut Criterion) {
    // The batched driver's scaling across workers; the output is identical
    // for every thread count, so this measures pure scheduling overhead
    // and parallel speedup.
    let graph = ba_graph(10_000);
    let dim = 16;
    let sources = sparse_sources(10_000, 32, dim);
    let cfg = PprConfig::new(0.5).unwrap().with_tolerance(1e-5).unwrap();
    let mut group = c.benchmark_group("push_batch_threads");
    for threads in [1usize, 2, 4] {
        let push_cfg = PushConfig::new(cfg).with_threads(threads).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &push_cfg,
            |b, push_cfg| {
                b.iter(|| push::diffuse_sparse(black_box(&graph), dim, &sources, push_cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_source_engines,
    bench_push_batch_threads
);
criterion_main!(benches);
