//! Shared plumbing for the `gdsearch` experiment binaries: a tiny
//! dependency-free CLI argument parser and workbench construction helpers.
//!
//! Every binary accepts the common flags
//!
//! ```text
//! --seed N          RNG seed (default 2022)
//! --nodes N         graph size (default 4039, the Facebook graph's size)
//! --vocab N         corpus vocabulary (default scales with --docs)
//! --dim N           embedding dimension (default 64; paper uses 300)
//! --ttl N           walk TTL (default 50)
//! --iterations N    placements per configuration
//! --anisotropy G    corpus anisotropy (default 0.3, GloVe-like; 0 = clean)
//! --graph PATH      load a real edge list (e.g. SNAP facebook_combined.txt)
//! --csv PATH        also write results as CSV
//! ```

// Harness code: CLI flag map is membership-only, and wall-clock timing
// is the measurement itself — neither reaches a reproducible result.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use gdsearch::experiment::{Workbench, WorkbenchSpec};
use gdsearch::SearchError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parsed `--key value` command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`, treating every `--key value` pair as an
    /// entry. A trailing `--key` without value is stored as `"true"`.
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (used by tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), value);
            }
        }
        Args { values }
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list value of `key`, or `default`.
    pub fn get_list_or<T: std::str::FromStr + Clone>(&self, key: &str, default: &[T]) -> Vec<T> {
        match self.get(key) {
            Some(v) => v
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect(),
            None => default.to_vec(),
        }
    }

    /// Whether a bare `--key` flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// Builds the experimental environment from common CLI flags.
///
/// `min_vocab` lets binaries enforce a vocabulary large enough for their
/// document counts (e.g. `M = 10000` needs > 10k irrelevant words).
///
/// # Errors
///
/// Propagates workbench construction failures (bad graph file, starved
/// query generation, ...).
pub fn workbench_from_args(args: &Args, min_vocab: usize) -> Result<Workbench, SearchError> {
    let seed: u64 = args.get_or("seed", 2022);
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: u32 = args.get_or("nodes", gdsearch_graph::generators::FACEBOOK_NODES);
    let vocab: usize = args.get_or("vocab", min_vocab.max(12_000));
    let dim: usize = args.get_or("dim", 64);
    let spec = WorkbenchSpec {
        nodes,
        vocab,
        dim,
        topics: (vocab / 50).max(10),
        num_queries: args.get_or("queries-pool", 1000),
        min_cosine: args.get_or("min-cosine", 0.6),
        anisotropy: args.get_or("anisotropy", 0.3),
    };
    match args.get("graph") {
        Some(path) => {
            let graph = gdsearch_graph::io::read_edge_list_path(path)?;
            Workbench::with_graph(graph, &spec, &mut rng)
        }
        None => Workbench::generate(&spec, &mut rng),
    }
}

/// Runs `f` once and returns `(elapsed milliseconds, result)` — the
/// stopwatch the ablation binaries share.
pub fn timed<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let t0 = std::time::Instant::now();
    let value = f();
    (t0.elapsed().as_secs_f64() * 1e3, value)
}

/// Writes `content` to `--csv PATH` when the flag is present; reports the
/// destination on stdout.
pub fn maybe_write_csv(args: &Args, content: &str) {
    if let Some(path) = args.get("csv") {
        match std::fs::write(path, content) {
            Ok(()) => println!("\ncsv written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Writes `report` as `gdsearch.bench.v1` JSON to `--json PATH` when the
/// flag is present (a bare `--json` uses `default_path`). The emitted text
/// is validated against the schema first, so a bin can never ship a
/// malformed artifact; reports the destination on stdout.
pub fn maybe_write_json(
    args: &Args,
    default_path: &str,
    report: &gdsearch_obs::bench::BenchReport,
) {
    let Some(value) = args.get("json") else {
        return;
    };
    let path = if value == "true" { default_path } else { value };
    let text = report.to_json();
    if let Err(e) = gdsearch_obs::bench::validate(&text) {
        eprintln!("refusing to write {path}: schema violation: {e}");
        std::process::exit(2);
    }
    match std::fs::write(path, &text) {
        Ok(()) => println!("\njson written to {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args("--docs 100 --alphas 0.1,0.5 --fast");
        assert_eq!(a.get_or("docs", 0usize), 100);
        assert_eq!(a.get_list_or::<f32>("alphas", &[]), vec![0.1, 0.5]);
        assert!(a.has("fast"));
        assert!(!a.has("slow"));
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.get_or("docs", 7usize), 7);
        assert_eq!(a.get_list_or("alphas", &[0.5f32]), vec![0.5]);
    }

    #[test]
    fn malformed_values_fall_back() {
        let a = args("--docs banana");
        assert_eq!(a.get_or("docs", 3usize), 3);
    }

    #[test]
    fn json_flag_writes_validated_reports() {
        use gdsearch_obs::bench::{validate, BenchReport, BenchRow};
        let path = std::env::temp_dir()
            .join("gdsearch_bench_json_flag_test.json")
            .to_string_lossy()
            .to_string();
        let a = Args::parse_from(["--json".to_string(), path.clone()]);
        let mut report = BenchReport::new("test");
        report.push_row(BenchRow::new().label("k", "v").value("x", 1.0));
        maybe_write_json(&a, "unused.json", &report);
        let text = std::fs::read_to_string(&path).unwrap();
        validate(&text).unwrap();
        std::fs::remove_file(&path).ok();
        // Absent flag writes nothing.
        maybe_write_json(&Args::default(), &path, &report);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn zipf_is_skewed_and_uniform_at_zero() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let hot = Zipf::new(100, 1.1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[hot.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > 10 * counts[50].max(1),
            "rank 0 must dominate rank 50: {} vs {}",
            counts[0],
            counts[50]
        );
        let flat = Zipf::new(100, 0.0);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[flat.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max < &(min * 3), "s=0 must be near-uniform: {min}..{max}");
    }

    #[test]
    fn ci_sized_workbench_via_args() {
        let a = args("--nodes 120 --vocab 300 --dim 16 --queries-pool 20");
        let wb = workbench_from_args(&a, 100).unwrap();
        assert_eq!(wb.graph.num_nodes(), 120);
        assert_eq!(wb.corpus.len(), 300);
    }
}

/// A Zipf-skewed sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^s`. Built once as an
/// inverse-CDF table, sampled by binary search — the serving harness
/// uses it to model hot/cold query mixes (`s = 0` degenerates to
/// uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with skew `s` (`n` must be nonzero).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Aggregate outcome of a sweep of uniformly-started queries, used by the
/// ablation binaries to compare configurations on equal footing.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Walks that retrieved the gold document.
    pub successes: usize,
    /// Walks issued.
    pub samples: usize,
    /// Total forward messages spent across all walks.
    pub total_messages: u64,
    /// Hop at which each successful walk reached the gold host.
    pub success_hops: Vec<u32>,
}

impl SweepOutcome {
    /// Success rate over issued walks.
    pub fn success_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.successes as f64 / self.samples as f64
        }
    }

    /// Mean messages per walk.
    pub fn mean_messages(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.samples as f64
        }
    }

    /// Mean hop count of successful walks, if any.
    pub fn mean_success_hops(&self) -> Option<f64> {
        gdsearch::metrics::hop_stats(&self.success_hops).map(|s| s.mean)
    }
}

/// Appends a [`SweepOutcome`]'s standard measurements to a report row.
#[must_use]
pub fn sweep_row(
    row: gdsearch_obs::bench::BenchRow,
    outcome: &SweepOutcome,
) -> gdsearch_obs::bench::BenchRow {
    let row = row
        .value("success_rate", outcome.success_rate())
        .value("successes", outcome.successes as f64)
        .value("samples", outcome.samples as f64)
        .value("mean_messages", outcome.mean_messages());
    match outcome.mean_success_hops() {
        Some(h) => row.value("mean_success_hops", h),
        None => row,
    }
}

/// Runs `iterations` placements × `queries_per_iteration` uniformly-started
/// walks under `config`, with a caller-supplied placement strategy
/// (uniform, topic-correlated, …). The gold document is `DocId` 0.
///
/// # Errors
///
/// Propagates placement/build/query failures; fails fast when the
/// irrelevant pool cannot supply `total_docs − 1` words.
pub fn uniform_query_sweep<F>(
    workbench: &Workbench,
    config: &gdsearch::SchemeConfig,
    total_docs: usize,
    iterations: usize,
    queries_per_iteration: usize,
    rng: &mut StdRng,
    mut place: F,
) -> Result<SweepOutcome, SearchError>
where
    F: FnMut(
        &Workbench,
        &[gdsearch_embed::WordId],
        &mut StdRng,
    ) -> Result<gdsearch::Placement, SearchError>,
{
    use rand::seq::IndexedRandom;
    use rand::Rng as _;
    let irrelevant_needed = total_docs.saturating_sub(1);
    if workbench.queries.irrelevant().len() < irrelevant_needed {
        return Err(SearchError::InvalidParameter {
            reason: format!(
                "irrelevant pool ({}) cannot supply {} documents",
                workbench.queries.irrelevant().len(),
                irrelevant_needed
            ),
        });
    }
    let n = workbench.graph.num_nodes() as u32;
    let mut outcome = SweepOutcome::default();
    for _ in 0..iterations {
        let pair = workbench.queries.pairs()[rng.random_range(0..workbench.queries.len())];
        let mut words = vec![pair.gold];
        words.extend(
            workbench
                .queries
                .irrelevant()
                .choose_multiple(rng, irrelevant_needed)
                .copied(),
        );
        let placement = place(workbench, &words, rng)?;
        let engine_config = gdsearch::EngineConfig::builder()
            .scheme(config.clone())
            .build()?;
        let engine = gdsearch::QueryEngine::build(
            &workbench.graph,
            &workbench.corpus,
            &placement,
            engine_config,
            rng,
        )?;
        let query = workbench.corpus.embedding(pair.query);
        for _ in 0..queries_per_iteration {
            let start = gdsearch_graph::NodeId::new(rng.random_range(0..n));
            let walk = engine.execute_with_rng(query, start, rng)?;
            outcome.samples += 1;
            outcome.total_messages += u64::from(walk.hops);
            if let Some(hop) = walk.hop_of(0) {
                outcome.successes += 1;
                outcome.success_hops.push(hop);
            }
        }
    }
    Ok(outcome)
}
