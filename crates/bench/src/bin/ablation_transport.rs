//! **Ablation T — transport backends.** The paper's argument against
//! flooding is about *bandwidth*, so this binary runs the full
//! message-passing protocol (PPR-greedy diffusion search vs. TTL-bounded
//! flooding) over the bounded-transport reactor with 1–100 KB/s links and
//! compares bytes moved, recall, queueing delay and backpressure drops —
//! the regimes the instant event loop cannot show. An instant-backend row
//! per policy gives the infinite-bandwidth baseline.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_transport -- \
//!     --nodes 10000 --docs 100 --dim 64 --queries 20 --ttl 50 \
//!     --flood-ttl 3 --bandwidths 1000,10000,100000 --queue 64 --threads 4
//! ```
//!
//! Bandwidth is in bytes per tick; one tick is the reactor's virtual
//! second, so `--bandwidths 1000` models 1 KB/s links.

use gdsearch::experiment::report;
use gdsearch::protocol::{ProtocolNetwork, SimBackend};
use gdsearch::{Placement, PolicyKind, SchemeConfig, SearchNetwork};
use gdsearch_bench::{maybe_write_csv, maybe_write_json, workbench_from_args, Args};
use gdsearch_graph::NodeId;
use gdsearch_obs::bench::{BenchReport, BenchRow};
use gdsearch_sim::{NetStats, TransportConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One measured configuration.
struct Row {
    label: String,
    stats: NetStats,
    recall: f64,
    issued: usize,
    virtual_secs: f64,
}

fn run_policy(
    scheme: &SearchNetwork<'_>,
    backend: SimBackend,
    origins: &[NodeId],
    query: &gdsearch_embed::Embedding,
    ttl: u32,
    tick_budget: usize,
    label: String,
) -> Row {
    let mut net = ProtocolNetwork::build(scheme, backend).expect("protocol network builds");
    for (i, &origin) in origins.iter().enumerate() {
        net.issue_query(origin, i as u64, query.clone(), ttl)
            .expect("origins are valid nodes");
    }
    if net.run_to_completion(tick_budget).is_err() {
        eprintln!("  [{label}] budget of {tick_budget} exhausted with work remaining");
    }
    let mut hits = 0usize;
    for (i, &origin) in origins.iter().enumerate() {
        let completed = net.completed(origin).expect("origin is valid");
        if completed
            .iter()
            .any(|q| q.query_id == i as u64 && q.results.iter().any(|(doc, _, _)| *doc == 0))
        {
            hits += 1;
        }
    }
    Row {
        label,
        stats: *net.stats(),
        recall: hits as f64 / origins.len().max(1) as f64,
        issued: origins.len(),
        virtual_secs: net.now_secs(),
    }
}

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 100);
    let queries: usize = args.get_or("queries", 20);
    let ttl: u32 = args.get_or("ttl", 50);
    let flood_ttl: u32 = args.get_or("flood-ttl", 3);
    let bandwidths: Vec<u64> = args.get_list_or("bandwidths", &[1_000, 10_000, 100_000]);
    let queue: usize = args.get_or("queue", 64);
    let threads: usize = args.get_or("threads", 4);
    let tick_budget: usize = args.get_or("tick-budget", 50_000_000);
    let seed: u64 = args.get_or("seed", 2022);

    let workbench = workbench_from_args(&args, docs + 50).expect("workbench builds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0074_7261_6e73);
    let n = workbench.graph.num_nodes() as u32;
    let pair = workbench.queries.pairs()[0];
    let mut words = vec![pair.gold];
    words.extend(
        workbench
            .queries
            .irrelevant()
            .iter()
            .copied()
            .take(docs.saturating_sub(1)),
    );
    let placement =
        Placement::uniform(&workbench.graph, &words, &mut rng).expect("placement fits graph");
    // Fig.-3 style conditioning: query origins start within `--origin-distance`
    // hops of the gold host (default 3), so recall is measurable for both
    // policies at this scale and the comparison is at comparable recall.
    let origin_distance: u32 = args.get_or("origin-distance", 3);
    let gold_host = placement.host(0);
    let candidates: Vec<NodeId> =
        gdsearch_graph::algo::bfs::distance_rings(&workbench.graph, gold_host, origin_distance)
            .into_iter()
            .skip(1) // not the host itself
            .flatten()
            .collect();
    let origins: Vec<NodeId> = (0..queries)
        .map(|_| {
            if candidates.is_empty() {
                NodeId::new(rng.random_range(0..n))
            } else {
                candidates[rng.random_range(0..candidates.len())]
            }
        })
        .collect();
    let query = workbench.corpus.embedding(pair.query);

    println!(
        "# Ablation: transport backends — N = {} nodes, {} edges, M = {} documents, \
         {} concurrent queries from ≤ {origin_distance} hops of the gold host, \
         queue capacity {queue}, {threads} reactor threads",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
        docs,
        queries,
    );
    println!(
        "\ndiffusion search: PPR-greedy, TTL {ttl} · flooding: TTL {flood_ttl} \
         (bounded so its recall is comparable, per the paper's bandwidth argument)"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (policy, policy_ttl, name) in [
        (PolicyKind::PprGreedy, ttl, "diffusion"),
        (PolicyKind::Flooding, flood_ttl, "flooding"),
    ] {
        let cfg = SchemeConfig::builder()
            .policy(policy)
            .ttl(policy_ttl)
            .build()
            .expect("valid scheme config");
        let scheme = SearchNetwork::build(
            &workbench.graph,
            &workbench.corpus,
            &placement,
            &cfg,
            &mut rng,
        )
        .expect("scheme builds");
        rows.push(run_policy(
            &scheme,
            SimBackend::Instant,
            &origins,
            query,
            policy_ttl,
            tick_budget,
            format!("{name} @ instant"),
        ));
        for &bandwidth in &bandwidths {
            let transport = TransportConfig::default()
                .with_bandwidth(bandwidth)
                .expect("positive bandwidth")
                .with_queue_capacity(queue)
                .expect("positive capacity")
                .with_threads(threads)
                .expect("positive threads")
                .with_seed(seed);
            rows.push(run_policy(
                &scheme,
                SimBackend::Bounded(transport),
                &origins,
                query,
                policy_ttl,
                tick_budget,
                format!("{name} @ {bandwidth} B/s"),
            ));
        }
    }

    println!("\n## Transport accounting\n");
    let labeled: Vec<(&str, &NetStats)> =
        rows.iter().map(|r| (r.label.as_str(), &r.stats)).collect();
    print!("{}", report::transport_markdown(&labeled));

    println!("\n## Search outcome\n");
    println!(
        "| configuration | recall | bytes/query | messages/query | \
         queue wait p50/p99/p999 | virtual time |"
    );
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.2} ({}/{}) | {:.0} | {:.0} | {}/{}/{} | {:.0}s |",
            r.label,
            r.recall,
            (r.recall * r.issued as f64).round() as u64,
            r.issued,
            r.stats.bytes_sent as f64 / r.issued.max(1) as f64,
            r.stats.sent as f64 / r.issued.max(1) as f64,
            r.stats.p50_queue_delay_ticks(),
            r.stats.p99_queue_delay_ticks(),
            r.stats.p999_queue_delay_ticks(),
            r.virtual_secs,
        );
    }

    maybe_write_csv(&args, &report::transport_csv(&labeled));

    let mut bench = BenchReport::new("ablation_transport");
    bench
        .meta("seed", seed)
        .meta("docs", docs)
        .meta("queries", queries)
        .meta("ttl", ttl)
        .meta("flood_ttl", flood_ttl)
        .meta("queue", queue)
        .meta("nodes", workbench.graph.num_nodes());
    for r in &rows {
        bench.push_row(
            BenchRow::new()
                .label("configuration", &r.label)
                .value("recall", r.recall)
                .value("bytes_sent", r.stats.bytes_sent as f64)
                .value("messages_sent", r.stats.sent as f64)
                .value("delivered", r.stats.delivered as f64)
                .value("dropped_backpressure", r.stats.dropped_backpressure as f64)
                .value("mean_queue_delay_ticks", r.stats.mean_queue_delay_ticks())
                .value(
                    "p50_queue_delay_ticks",
                    r.stats.p50_queue_delay_ticks() as f64,
                )
                .value(
                    "p99_queue_delay_ticks",
                    r.stats.p99_queue_delay_ticks() as f64,
                )
                .value(
                    "p999_queue_delay_ticks",
                    r.stats.p999_queue_delay_ticks() as f64,
                )
                .value("virtual_secs", r.virtual_secs),
        );
    }
    maybe_write_json(&args, "BENCH_transport.json", &bench);
}
