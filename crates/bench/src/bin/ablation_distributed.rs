//! **Ablation D — distributed sharded diffusion.** Runs the sharded
//! engines with every shard on its own simulated machine
//! ([`gdsearch_dist`]): halo columns and cross-shard residual mass travel
//! as wire frames over bounded links, and this bin measures what the
//! interconnect costs — convergence time (reactor ticks and wall clock),
//! bytes on the wire per iteration, and retrieval recall — across
//! bandwidth tiers from 1 KB/tick to 1 MB/tick, plus a lossy tier showing
//! per-round retransmission recovering the exact fixed point.
//!
//! The default workload is 10⁵ nodes on both a Barabási–Albert graph
//! (hub-heavy, fat halos) and a ring (two cut edges per shard):
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_distributed -- \
//!     --nodes 100000 --dim 8 --shards 4 --threads 4 \
//!     --bandwidths 1024,8192,65536,1048576 --loss 0.2 --tolerance 1e-4
//! ```
//!
//! The process exits nonzero if any distributed result drifts bitwise
//! from the in-process sharded engines, if the transport's byte
//! accounting disagrees with the driver's frame ledger, or if recall
//! against the in-process reference drops below 1 — so CI runs it as the
//! distributed smoke test.

use std::fmt::Write as _;

use gdsearch_bench::{maybe_write_csv, maybe_write_json, timed, Args};
use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{PprConfig, Signal};
use gdsearch_dist::{DistConfig, ExchangeStats};
use gdsearch_graph::{generators, Graph, NodeId, ShardedGraph};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use gdsearch_sim::TransportConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Top-`k` node ids by score, ties broken by node id (total order, so the
/// comparison between runs is exact).
fn top_k(scores: &[f32], k: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids
}

fn recall(reference: &[u32], got: &[f32]) -> f64 {
    let got = top_k(got, reference.len());
    let hits = reference.iter().filter(|id| got.contains(id)).count();
    hits as f64 / reference.len().max(1) as f64
}

struct TierOutcome {
    power_ok: bool,
    push_ok: bool,
    recall: f64,
    power_stats: ExchangeStats,
    push_stats: ExchangeStats,
    power_ms: f64,
    push_ms: f64,
    power_iterations: usize,
}

/// One bandwidth tier: distributed power + push against the in-process
/// references; `None` when the transport layer itself errors.
#[allow(clippy::too_many_arguments)]
fn run_tier(
    sharded_graph: &ShardedGraph,
    e0: &Signal,
    source: NodeId,
    scfg: &ShardedConfig,
    transport: TransportConfig,
    power_ref: &Signal,
    push_ref: &[f32],
    gold: &[u32],
) -> Result<TierOutcome, String> {
    let dcfg = DistConfig::new(*scfg).with_transport(transport);
    let (power_ms, power_out) =
        timed(|| gdsearch_dist::diffuse_partitioned(sharded_graph, e0, &dcfg));
    let (power_out, power_stats) = power_out.map_err(|e| format!("power: {e}"))?;
    let (push_ms, push_out) =
        timed(|| gdsearch_dist::ppr_vector_partitioned(sharded_graph, source, &dcfg));
    let (push_out, push_stats) = push_out.map_err(|e| format!("push: {e}"))?;
    Ok(TierOutcome {
        power_ok: power_out.signal.as_slice() == power_ref.as_slice(),
        push_ok: push_out == push_ref,
        recall: recall(gold, &push_out),
        power_stats,
        push_stats,
        power_ms,
        push_ms,
        power_iterations: power_out.iterations,
    })
}

#[allow(clippy::too_many_lines)]
fn run_family(
    name: &str,
    key: &str,
    graph: &Graph,
    args: &Args,
    csv: &mut String,
    report: &mut BenchReport,
) -> bool {
    let dim: usize = args.get_or("dim", 8);
    let shards: usize = args.get_or("shards", 4);
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let alpha: f32 = args.get_or("alpha", 0.5);
    let tolerance: f32 = args.get_or("tolerance", 1e-4);
    let bandwidths: Vec<u64> = args.get_list_or("bandwidths", &[1024u64, 8192, 65536, 1024 * 1024]);
    let loss: f64 = args.get_or("loss", 0.2);
    let n = graph.num_nodes();

    let ppr = PprConfig::new(alpha)
        .expect("valid alpha")
        .with_tolerance(tolerance)
        .expect("valid tolerance");
    let scfg = ShardedConfig::new(ppr)
        .with_shards(shards)
        .expect("valid shards")
        .with_threads(threads)
        .expect("valid threads");

    println!(
        "\n## {name}: N = {n}, E = {} (mean degree {:.1}), {shards} shard machines",
        graph.num_edges(),
        graph.mean_degree()
    );

    let sharded_graph = ShardedGraph::from_graph(graph, shards).expect("partition");
    let halo_total: usize = sharded_graph
        .shards()
        .iter()
        .map(gdsearch_graph::GraphShard::halo_bytes)
        .sum();
    println!(
        "partition: {} shards, halo {:.0} KB total, peer links: {}",
        sharded_graph.num_shards(),
        halo_total as f64 / 1024.0,
        (0..sharded_graph.num_shards())
            .map(|s| sharded_graph.peers_of(s).len())
            .sum::<usize>()
            / 2,
    );

    // A mid-range source whose diffusion crosses shard boundaries.
    let source = NodeId::new((n as u32 / 2).max(1) - 1);
    let mut e0 = Signal::zeros(n, dim);
    for d in 0..dim {
        e0.row_mut(source.index())[d] = 1.0 + d as f32 * 0.25;
    }

    // In-process sharded references (the distributed runs must reproduce
    // them bit for bit).
    let (ref_power_ms, power_ref) = timed(|| {
        sharded::diffuse_partitioned(&sharded_graph, &e0, &scfg).expect("in-process power")
    });
    let (ref_push_ms, push_ref) = timed(|| {
        sharded::ppr_vector_partitioned(&sharded_graph, source, &scfg).expect("in-process push")
    });
    let gold = top_k(&push_ref, 10);
    println!(
        "in-process reference: power {ref_power_ms:.0} ms ({} iterations), \
         push {ref_push_ms:.0} ms",
        power_ref.iterations,
    );
    println!();
    println!(
        "| tier | B/tick | loss | power ms | power ticks | power B/iter | push ms | \
         push ticks | push B | retx | recall@10 | bitwise | bytes ok |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    let mut all_ok = true;
    let mut tiers: Vec<(String, u64, f64)> = bandwidths
        .iter()
        .map(|&b| (format!("{} KB/tick", b / 1024), b, 0.0))
        .collect();
    // The adversarial tier: mid bandwidth with random frame loss; the
    // barrier's retransmission must still reach the exact fixed point.
    if loss > 0.0 {
        let mid = bandwidths
            .get(bandwidths.len() / 2)
            .copied()
            .unwrap_or(65536);
        tiers.push((format!("{} KB/tick lossy", mid / 1024), mid, loss));
    }
    for (label, bandwidth, tier_loss) in tiers {
        let transport = TransportConfig::default()
            .with_bandwidth(bandwidth)
            .expect("positive bandwidth")
            .with_queue_capacity(4096)
            .expect("positive queue")
            .with_loss_probability(tier_loss)
            .expect("valid loss")
            .with_seed(args.get_or("seed", 2022));
        let outcome = match run_tier(
            &sharded_graph,
            &e0,
            source,
            &scfg,
            transport,
            &power_ref.signal,
            &push_ref,
            &gold,
        ) {
            Ok(outcome) => outcome,
            Err(e) => {
                // Pad the row to the full column count so the uploaded
                // markdown report stays a valid table on failure.
                println!(
                    "| {label} | {bandwidth} | {tier_loss} | – | – | – | – | – | – | – | – | \
                     NO | NO |"
                );
                eprintln!("tier '{label}' FAILED: {e}");
                all_ok = false;
                continue;
            }
        };
        // Byte accounting is verified inside finish(); re-assert here so
        // the table column is an explicit check, not an assumption.
        let bytes_ok = outcome.power_stats.verify_byte_accounting().is_ok()
            && outcome.push_stats.verify_byte_accounting().is_ok();
        let bitwise = outcome.power_ok && outcome.push_ok;
        let tier_ok = bitwise && bytes_ok && outcome.recall >= 1.0;
        all_ok &= tier_ok;
        let power_bytes_per_iter =
            outcome.power_stats.frame_bytes / (outcome.power_iterations.max(1) as u64);
        let retx =
            outcome.power_stats.retransmitted_frames + outcome.push_stats.retransmitted_frames;
        println!(
            "| {label} | {bandwidth} | {tier_loss} | {:.0} | {} | {} | {:.0} | {} | {} | \
             {retx} | {:.2} | {} | {} |",
            outcome.power_ms,
            outcome.power_stats.ticks,
            power_bytes_per_iter,
            outcome.push_ms,
            outcome.push_stats.ticks,
            outcome.push_stats.frame_bytes,
            outcome.recall,
            if bitwise { "yes" } else { "NO" },
            if bytes_ok { "yes" } else { "NO" },
        );
        let _ = writeln!(
            csv,
            "{key},{bandwidth},{tier_loss},{},{},{power_bytes_per_iter},{},{},{},{retx},{:.3},\
             {bitwise},{bytes_ok}",
            outcome.power_ms,
            outcome.power_stats.ticks,
            outcome.push_ms,
            outcome.push_stats.ticks,
            outcome.push_stats.frame_bytes,
            outcome.recall,
        );
        report.push_row(
            BenchRow::new()
                .label("family", key)
                .label("tier", &label)
                .value("bytes_per_tick", bandwidth as f64)
                .value("loss", tier_loss)
                .value("power_ms", outcome.power_ms)
                .value("power_ticks", outcome.power_stats.ticks as f64)
                .value("power_bytes_per_iter", power_bytes_per_iter as f64)
                .value("push_ms", outcome.push_ms)
                .value("push_ticks", outcome.push_stats.ticks as f64)
                .value("push_bytes", outcome.push_stats.frame_bytes as f64)
                .value("retransmits", retx as f64)
                .value("recall_at_10", outcome.recall)
                .value("bitwise", f64::from(u8::from(bitwise)))
                .value("bytes_ok", f64::from(u8::from(bytes_ok))),
        );
    }
    all_ok
}

fn main() {
    let args = Args::from_env();
    let nodes: u32 = args.get_or("nodes", 100_000);
    let seed: u64 = args.get_or("seed", 2022);
    let family = args.get("family").unwrap_or("both").to_string();

    println!("# Ablation: distributed sharded diffusion over simulated links");
    let mut csv = String::from(
        "family,bytes_per_tick,loss,power_ms,power_ticks,power_bytes_per_iter,push_ms,\
         push_ticks,push_bytes,retransmits,recall_at_10,bitwise,bytes_ok\n",
    );

    let mut report = BenchReport::new("ablation_distributed");
    report
        .meta("seed", seed)
        .meta("nodes", nodes)
        .meta("family", &family)
        .meta("shards", args.get_or("shards", 4usize))
        .meta("tolerance", args.get_or("tolerance", 1e-4f32));
    let mut ok = true;
    if family == "both" || family == "ba" {
        let mut rng = StdRng::seed_from_u64(seed);
        let (gen_ms, graph) =
            timed(|| generators::barabasi_albert(nodes, 5, &mut rng).expect("valid BA parameters"));
        println!("\n(BA generation: {gen_ms:.0} ms)");
        ok &= run_family(
            "Barabási–Albert m=5",
            "ba",
            &graph,
            &args,
            &mut csv,
            &mut report,
        );
    }
    if family == "both" || family == "ring" {
        let graph = generators::ring(nodes).expect("valid ring size");
        ok &= run_family("ring", "ring", &graph, &args, &mut csv, &mut report);
    }
    maybe_write_csv(&args, &csv);
    maybe_write_json(&args, "BENCH_distributed.json", &report);
    if !ok {
        eprintln!("distributed ablation FAILED: bitwise, byte-accounting or recall check violated");
        std::process::exit(1);
    }
    println!("\nEvery tier reproduced the in-process sharded results bit for bit with exact byte accounting.");
}
