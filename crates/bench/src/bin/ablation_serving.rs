//! **Ablation S — concurrent serving latency.** Runs the scheme's query
//! path as a long-lived engine under closed-loop client load: each
//! client issues a query, waits for the walk to complete, and
//! immediately issues the next one, over a Zipf-skewed query mix (hot
//! sources dominate) and a uniform mix (every source cold). Per-query
//! end-to-end latency lands in the shared log2 histograms and is
//! reported as p50/p99/p999 plus queries/sec `gdsearch.bench.v1` rows —
//! the latency story behind the ROADMAP's "millions of users" serving
//! bullet.
//!
//! A separate sequential observed pass records the query-path flight
//! recorder (`obs::trace`) with wall-clock annotation and reports the
//! per-phase breakdown (personalization / diffusion / walk) from the
//! trace; `--trace PATH` exports it as Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_serving -- \
//!     --nodes 4039 --docs 100 --dim 32 --requests 200 \
//!     --clients-list 1,4,8 --zipf-s 1.1 \
//!     --json BENCH_serving.json --trace trace.json
//! ```

// Harness code: wall-clock timing is the measurement itself.
#![allow(clippy::disallowed_methods)]

use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_bench::{maybe_write_json, workbench_from_args, Args, Zipf};
use gdsearch_graph::NodeId;
use gdsearch_obs::bench::{BenchReport, BenchRow};
use gdsearch_obs::trace::{chrome_trace_json, Stamp, TraceKind, TraceLog};
use gdsearch_obs::{Histogram, MetricsRegistry, Observer, Profiler, WallStamper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Latency/throughput aggregate of one `(mix, clients)` cell.
struct Cell {
    mix: String,
    clients: usize,
    latency_ns: Histogram,
    hits: u64,
    queries: u64,
    wall_secs: f64,
}

impl Cell {
    fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.queries as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn hit_rate(&self) -> f64 {
        if self.queries > 0 {
            self.hits as f64 / self.queries as f64
        } else {
            0.0
        }
    }
}

/// Runs `clients` closed-loop clients, each issuing `requests` queries
/// drawn from `mix` (a sampler over placed-document ranks).
#[allow(clippy::too_many_arguments)]
fn run_cell(
    network: &SearchNetwork<'_>,
    corpus: &gdsearch_embed::Corpus,
    pairs: &[gdsearch_embed::querygen::QueryGoldPair],
    mix_name: &str,
    mix: &Zipf,
    clients: usize,
    requests: usize,
    seed: u64,
) -> Cell {
    let n = network.graph().num_nodes() as u32;
    let t0 = std::time::Instant::now();
    let per_client: Vec<(Histogram, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7276 ^ ((c as u64) << 32));
                    let mut latency = Histogram::new();
                    let mut hits = 0u64;
                    for _ in 0..requests {
                        let rank = mix.sample(&mut rng);
                        let pair = pairs[rank];
                        let query = corpus.embedding(pair.query);
                        let start = NodeId::new(rng.random_range(0..n));
                        let q0 = std::time::Instant::now();
                        let walk = network
                            .query(query, start, &mut rng)
                            .expect("serving query succeeds");
                        let ns = u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latency.record(ns);
                        // Document `rank` hosts this pair's gold word.
                        if walk.contains(rank) {
                            hits += 1;
                        }
                    }
                    (latency, hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut latency_ns = Histogram::new();
    let mut hits = 0u64;
    for (h, c) in &per_client {
        latency_ns.merge(h);
        hits += c;
    }
    Cell {
        mix: mix_name.to_string(),
        clients,
        latency_ns,
        hits,
        queries: (clients * requests) as u64,
        wall_secs,
    }
}

/// Sums wall-annotated `Begin`→`End` durations per phase from a trace:
/// `(phase, total_ns, spans)` in first-seen order.
fn phase_breakdown(log: &TraceLog, wall: &WallStamper) -> Vec<(String, u64, u64)> {
    let ns_at = |index: u64| -> Option<u64> {
        let stamps = wall.stamps();
        let at = stamps.binary_search_by_key(&index, |&(i, _)| i).ok()?;
        stamps.get(at).map(|&(_, ns)| ns)
    };
    let mut totals: Vec<(String, u64, u64)> = Vec::new();
    let mut open: Vec<(String, u64)> = Vec::new();
    for (index, event) in log.events().iter().enumerate() {
        if !matches!(event.stamp, Stamp::Seq(_)) {
            continue;
        }
        match event.kind {
            TraceKind::Begin => {
                if let Some(ns) = ns_at(index as u64) {
                    open.push((event.phase.clone(), ns));
                }
            }
            TraceKind::End => {
                let Some(at) = open.iter().rposition(|(p, _)| *p == event.phase) else {
                    continue;
                };
                let (phase, began) = open.remove(at);
                let Some(ended) = ns_at(index as u64) else {
                    continue;
                };
                let spent = ended.saturating_sub(began);
                match totals.iter_mut().find(|(p, _, _)| *p == phase) {
                    Some((_, total, spans)) => {
                        *total += spent;
                        *spans += 1;
                    }
                    None => totals.push((phase, spent, 1)),
                }
            }
            TraceKind::Point => {}
        }
    }
    totals
}

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 100);
    let requests: usize = args.get_or("requests", 200);
    let clients_list: Vec<usize> = args.get_list_or("clients-list", &[1, 4]);
    let zipf_s: f64 = args.get_or("zipf-s", 1.1);
    let ttl: u32 = args.get_or("ttl", 50);
    let seed: u64 = args.get_or("seed", 2022);
    let observed_queries: usize = args.get_or("observed-queries", 32);

    let workbench = workbench_from_args(&args, docs + 50).expect("workbench builds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0073_6572_7669_6e67);
    // Document i hosts pairs[i].gold, so a mix over ranks 0..docs is a
    // mix over placed documents and `walk.contains(rank)` is the hit
    // test. Hot ranks are low ranks.
    let pairs: Vec<gdsearch_embed::querygen::QueryGoldPair> = workbench
        .queries
        .pairs()
        .iter()
        .copied()
        .cycle()
        .take(docs)
        .collect();
    let words: Vec<gdsearch_embed::WordId> = pairs.iter().map(|p| p.gold).collect();
    let placement =
        Placement::uniform(&workbench.graph, &words, &mut rng).expect("placement fits graph");
    let config = SchemeConfig::builder()
        .ttl(ttl)
        .build()
        .expect("valid scheme config");
    let network = SearchNetwork::build(
        &workbench.graph,
        &workbench.corpus,
        &placement,
        &config,
        &mut rng,
    )
    .expect("scheme builds");

    println!(
        "# Ablation: serving latency — N = {} nodes, {} edges, M = {docs} documents, \
         closed-loop clients × {requests} requests, mixes: zipf(s={zipf_s}) and uniform",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
    );

    let mixes = [
        ("hot".to_string(), Zipf::new(docs, zipf_s)),
        ("uniform".to_string(), Zipf::new(docs, 0.0)),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (name, mix) in &mixes {
        for &clients in &clients_list {
            cells.push(run_cell(
                &network,
                &workbench.corpus,
                &pairs,
                name,
                mix,
                clients,
                requests,
                seed,
            ));
        }
    }

    println!("\n## End-to-end latency (closed loop)\n");
    println!("| mix | clients | queries | p50 µs | p99 µs | p999 µs | qps | hit rate |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    for c in &cells {
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.0} | {:.2} |",
            c.mix,
            c.clients,
            c.queries,
            c.latency_ns.quantile(0.5) as f64 / 1e3,
            c.latency_ns.quantile(0.99) as f64 / 1e3,
            c.latency_ns.quantile(0.999) as f64 / 1e3,
            c.qps(),
            c.hit_rate(),
        );
    }

    // Sequential observed pass: flight recorder + wall annotation gives
    // the per-phase breakdown and the exportable trace.
    let mut registry = MetricsRegistry::new();
    let mut profiler = Profiler::new();
    let mut log = TraceLog::new();
    let mut wall = WallStamper::new();
    {
        let mut obs = Observer::new(Some(&mut registry), Some(&mut profiler))
            .with_trace(&mut log)
            .with_wall(&mut wall);
        let observed = SearchNetwork::build_observed(
            &workbench.graph,
            &workbench.corpus,
            &placement,
            &config,
            &mut rng,
            &mut obs,
        )
        .expect("observed build succeeds");
        let mix = Zipf::new(docs, zipf_s);
        for q in 0..observed_queries {
            let rank = mix.sample(&mut rng);
            let pair = pairs[rank];
            let start = NodeId::new(rng.random_range(0..workbench.graph.num_nodes() as u32));
            obs.set_query(q as u64 + 1);
            observed
                .query_observed(
                    workbench.corpus.embedding(pair.query),
                    start,
                    &mut rng,
                    &mut obs,
                )
                .expect("observed query succeeds");
        }
    }
    let phases = phase_breakdown(&log, &wall);
    println!("\n## Per-phase breakdown (sequential observed pass, from the trace)\n");
    println!("| phase | spans | total ms |");
    println!("|---|---:|---:|");
    for (phase, total_ns, spans) in &phases {
        println!("| {phase} | {spans} | {:.3} |", *total_ns as f64 / 1e6);
    }

    if let Some(path) = args.get("trace") {
        let text = chrome_trace_json(&log, Some(wall.stamps()));
        match std::fs::write(path, &text) {
            Ok(()) => println!("\ntrace written to {path} (load in chrome://tracing)"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut bench = BenchReport::new("ablation_serving");
    bench
        .meta("seed", seed)
        .meta("nodes", workbench.graph.num_nodes())
        .meta("docs", docs)
        .meta("requests", requests)
        .meta("zipf_s", zipf_s)
        .meta("ttl", ttl);
    for c in &cells {
        bench.push_row(
            BenchRow::new()
                .label("mix", &c.mix)
                .label("clients", c.clients)
                .value("queries", c.queries as f64)
                .value("p50_latency_us", c.latency_ns.quantile(0.5) as f64 / 1e3)
                .value("p99_latency_us", c.latency_ns.quantile(0.99) as f64 / 1e3)
                .value("p999_latency_us", c.latency_ns.quantile(0.999) as f64 / 1e3)
                .value("qps", c.qps())
                .value("hit_rate", c.hit_rate()),
        );
    }
    for (phase, total_ns, spans) in &phases {
        bench.push_row(
            BenchRow::new()
                .label("mix", "observed")
                .label("phase", phase)
                .value("spans", *spans as f64)
                .value("wall_ms", *total_ns as f64 / 1e6),
        );
    }
    bench.attach_metrics(registry);
    bench.attach_spans(profiler.tree());
    maybe_write_json(&args, "BENCH_serving.json", &bench);
}
