//! **Ablation S — concurrent serving latency.** Drives the serving
//! [`QueryEngine`] (admission queue + batched dispatch + hot-column
//! cache) under two load models:
//!
//! - **Closed loop**: each client issues a query, waits for the walk,
//!   and immediately issues the next — cells sweep (mix × clients ×
//!   cache on/off), so the hot-column cache's p50 effect on a Zipf mix
//!   is directly visible against the uncached cell.
//! - **Open loop**: requests arrive at a fixed offered rate λ
//!   (arrival `i` is scheduled at `i/λ`), are admitted through
//!   [`QueryEngine::submit`] and served by a dispatcher looping
//!   [`QueryEngine::step`]; latency is completion minus *scheduled*
//!   arrival, so queueing delay under overload is part of the number.
//!   Cells sweep the offered load.
//!
//! Before any measurement the binary self-checks the engine's
//! determinism contract: batched + cached execution must match the
//! sequential uncached [`SearchNetwork::query`] bitwise, and the hot
//! closed-loop cell must show a nonzero cache hit rate — any violation
//! exits nonzero, so CI runs of this bench double as a smoke test.
//!
//! A separate sequential observed pass records the query-path flight
//! recorder (`obs::trace`) with wall-clock annotation and reports the
//! per-phase breakdown (personalization / diffusion / walk) from the
//! trace; `--trace PATH` exports it as Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_serving -- \
//!     --nodes 4039 --docs 100 --dim 32 --requests 200 \
//!     --clients-list 1,4,8 --offered-qps-list 200,1000 --zipf-s 1.1 \
//!     --json BENCH_serving.json --trace trace.json
//! ```

// Harness code: wall-clock timing is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gdsearch::engine::{CacheCapacity, EngineConfig, QueryEngine, QueryRequest};
use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_bench::{maybe_write_json, workbench_from_args, Args, Zipf};
use gdsearch_graph::NodeId;
use gdsearch_obs::bench::{BenchReport, BenchRow};
use gdsearch_obs::trace::{chrome_trace_json, Stamp, TraceKind, TraceLog};
use gdsearch_obs::{Histogram, MetricsRegistry, Observer, Profiler, WallStamper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Latency/throughput aggregate of one cell.
struct Cell {
    mode: &'static str,
    mix: String,
    cache: &'static str,
    clients: usize,
    offered_qps: Option<f64>,
    latency_ns: Histogram,
    hits: u64,
    queries: u64,
    rejected: u64,
    cache_hits: u64,
    cache_lookups: u64,
    wall_secs: f64,
}

impl Cell {
    fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.queries as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn hit_rate(&self) -> f64 {
        if self.queries > 0 {
            self.hits as f64 / self.queries as f64
        } else {
            0.0
        }
    }

    fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups > 0 {
            self.cache_hits as f64 / self.cache_lookups as f64
        } else {
            0.0
        }
    }
}

/// Engine configuration of one cell: default serving knobs with the
/// cache policy under test.
fn engine_config(scheme: &SchemeConfig, cache: CacheCapacity) -> EngineConfig {
    EngineConfig::builder()
        .scheme(scheme.clone())
        .cache_capacity(cache)
        .build()
        .expect("valid engine config")
}

/// Runs `clients` closed-loop clients against a shared engine, each
/// issuing `requests` queries drawn from `mix` (a sampler over
/// placed-document ranks).
#[allow(clippy::too_many_arguments)]
fn closed_loop_cell(
    engine: &QueryEngine<'_>,
    corpus: &gdsearch_embed::Corpus,
    pairs: &[gdsearch_embed::querygen::QueryGoldPair],
    mix_name: &str,
    mix: &Zipf,
    cache_name: &'static str,
    clients: usize,
    requests: usize,
    seed: u64,
) -> Cell {
    let n = engine.network().graph().num_nodes() as u32;
    let t0 = Instant::now();
    let per_client: Vec<(Histogram, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7276 ^ ((c as u64) << 32));
                    let mut latency = Histogram::new();
                    let mut hits = 0u64;
                    for _ in 0..requests {
                        let rank = mix.sample(&mut rng);
                        let pair = pairs[rank];
                        let query = corpus.embedding(pair.query);
                        let start = NodeId::new(rng.random_range(0..n));
                        let walk_seed: u64 = rng.random();
                        let q0 = Instant::now();
                        let response = engine
                            .execute(QueryRequest::new(query.clone(), start, walk_seed))
                            .expect("serving query succeeds");
                        let ns = u64::try_from(q0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        latency.record(ns);
                        // Document `rank` hosts this pair's gold word.
                        if response.outcome.contains(rank) {
                            hits += 1;
                        }
                    }
                    (latency, hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread completes"))
            .collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut latency_ns = Histogram::new();
    let mut hits = 0u64;
    for (h, c) in &per_client {
        latency_ns.merge(h);
        hits += c;
    }
    let stats = engine.stats();
    Cell {
        mode: "closed",
        mix: mix_name.to_string(),
        cache: cache_name,
        clients,
        offered_qps: None,
        latency_ns,
        hits,
        queries: (clients * requests) as u64,
        rejected: 0,
        cache_hits: stats.cache.hits,
        cache_lookups: stats.cache.hits + stats.cache.misses,
        wall_secs,
    }
}

/// Open-loop cell: a generator thread submits `requests` arrivals at the
/// offered rate through the engine's admission queue (dropping on
/// `QueueFull`), while a dispatcher loops [`QueryEngine::step`]. Latency
/// is completion minus the *scheduled* arrival instant.
#[allow(clippy::too_many_arguments)]
fn open_loop_cell(
    engine: &QueryEngine<'_>,
    corpus: &gdsearch_embed::Corpus,
    pairs: &[gdsearch_embed::querygen::QueryGoldPair],
    mix_name: &str,
    mix: &Zipf,
    cache_name: &'static str,
    offered_qps: f64,
    requests: usize,
    seed: u64,
) -> Cell {
    let n = engine.network().graph().num_nodes() as u32;
    let gap_ns = (1e9 / offered_qps.max(1.0)) as u64;
    // (scheduled arrival ns, gold rank) per admitted id, in id order —
    // ids are monotone from a fresh engine, so a Vec indexes by id.
    let admitted: Mutex<Vec<(u64, usize)>> = Mutex::new(Vec::with_capacity(requests));
    let done_generating = AtomicBool::new(false);
    let mut rejected = 0u64;

    let t0 = Instant::now();
    let (latency_ns, hits, queries) = std::thread::scope(|scope| {
        let admitted_ref = &admitted;
        let done_ref = &done_generating;
        let generator = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x6f70_656e);
            let mut dropped = 0u64;
            for i in 0..requests {
                let arrival_ns = (i as u64) * gap_ns;
                let rank = mix.sample(&mut rng);
                let pair = pairs[rank];
                let start = NodeId::new(rng.random_range(0..n));
                let walk_seed: u64 = rng.random();
                // Hold the request until its scheduled arrival.
                let target = Duration::from_nanos(arrival_ns);
                loop {
                    let now = t0.elapsed();
                    if now >= target {
                        break;
                    }
                    let gap = target - now;
                    if gap > Duration::from_micros(500) {
                        std::thread::sleep(gap - Duration::from_micros(400));
                    } else {
                        std::hint::spin_loop();
                    }
                }
                let request =
                    QueryRequest::new(corpus.embedding(pair.query).clone(), start, walk_seed);
                match engine.submit(request) {
                    Ok(_id) => {
                        admitted_ref
                            .lock()
                            .expect("generator lock")
                            .push((arrival_ns, rank));
                    }
                    Err(_) => dropped += 1,
                }
            }
            done_ref.store(true, Ordering::Release);
            dropped
        });

        // Dispatcher: serve batches until the generator finishes and the
        // queue drains.
        let mut latency = Histogram::new();
        let mut hits = 0u64;
        let mut queries = 0u64;
        loop {
            let responses = engine.step().expect("serving step succeeds");
            if responses.is_empty() {
                if done_ref.load(Ordering::Acquire) && engine.pending() == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            let completed_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let admitted = admitted_ref.lock().expect("dispatcher lock");
            for response in &responses {
                let Ok(index) = usize::try_from(response.id) else {
                    continue;
                };
                let Some(&(arrival_ns, rank)) = admitted.get(index) else {
                    continue;
                };
                latency.record(completed_ns.saturating_sub(arrival_ns));
                queries += 1;
                if response.outcome.contains(rank) {
                    hits += 1;
                }
            }
        }
        rejected = generator.join().expect("generator thread completes");
        (latency, hits, queries)
    });
    let wall_secs = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    Cell {
        mode: "open",
        mix: mix_name.to_string(),
        cache: cache_name,
        clients: engine.config().threads(),
        offered_qps: Some(offered_qps),
        latency_ns,
        hits,
        queries,
        rejected,
        cache_hits: stats.cache.hits,
        cache_lookups: stats.cache.hits + stats.cache.misses,
        wall_secs,
    }
}

/// The determinism contract, checked in-process before any measurement:
/// engine execution (cold, then cache-hot, then batched) must match the
/// sequential uncached walk bitwise. Returns an error message on the
/// first divergence.
fn verify_engine_matches_sequential(
    network: &SearchNetwork<'_>,
    scheme: &SchemeConfig,
    corpus: &gdsearch_embed::Corpus,
    pairs: &[gdsearch_embed::querygen::QueryGoldPair],
    docs: usize,
) -> Result<(), String> {
    let engine = QueryEngine::from_network(
        network.clone(),
        engine_config(scheme, CacheCapacity::Bounded(64)),
    );
    let n = network.graph().num_nodes() as u32;
    // Two passes over the same requests: pass 0 misses, pass 1 hits.
    for pass in 0..2u64 {
        for i in 0..8usize {
            let rank = i % docs;
            let pair = pairs[rank];
            let query = corpus.embedding(pair.query);
            let start = NodeId::new((i as u32 * 37) % n);
            let seed = 0xABC0 + i as u64;
            let response = engine
                .execute(QueryRequest::new(query.clone(), start, seed))
                .map_err(|e| format!("engine execute failed: {e}"))?;
            let mut rng = StdRng::seed_from_u64(seed);
            let baseline = network
                .query(query, start, &mut rng)
                .map_err(|e| format!("sequential query failed: {e}"))?;
            if response.outcome.results != baseline.results
                || response.outcome.path != baseline.path
                || response.outcome.hops != baseline.hops
            {
                return Err(format!(
                    "engine/sequential divergence (pass {pass}, rank {rank}, start {start}, \
                     verdict {:?})",
                    response.verdict
                ));
            }
        }
    }
    // Batched path: submit all, step, compare in admission order.
    let engine = QueryEngine::from_network(
        network.clone(),
        engine_config(scheme, CacheCapacity::Bounded(64)),
    );
    let mut expected = Vec::new();
    for i in 0..8usize {
        let pair = pairs[i % docs];
        let query = corpus.embedding(pair.query);
        let start = NodeId::new((i as u32 * 53) % n);
        let seed = 0xDEF0 + i as u64;
        engine
            .submit(QueryRequest::new(query.clone(), start, seed))
            .map_err(|e| format!("submit failed: {e}"))?;
        let mut rng = StdRng::seed_from_u64(seed);
        expected.push(
            network
                .query(query, start, &mut rng)
                .map_err(|e| format!("sequential query failed: {e}"))?,
        );
    }
    let mut responses = Vec::new();
    while responses.len() < expected.len() {
        let step = engine.step().map_err(|e| format!("step failed: {e}"))?;
        if step.is_empty() {
            return Err("engine queue drained early".to_string());
        }
        responses.extend(step);
    }
    for (response, baseline) in responses.iter().zip(&expected) {
        if response.outcome.results != baseline.results || response.outcome.path != baseline.path {
            return Err(format!(
                "batched divergence at id {} (verdict {:?})",
                response.id, response.verdict
            ));
        }
    }
    Ok(())
}

/// Sums wall-annotated `Begin`→`End` durations per phase from a trace:
/// `(phase, total_ns, spans)` in first-seen order.
fn phase_breakdown(log: &TraceLog, wall: &WallStamper) -> Vec<(String, u64, u64)> {
    let ns_at = |index: u64| -> Option<u64> {
        let stamps = wall.stamps();
        let at = stamps.binary_search_by_key(&index, |&(i, _)| i).ok()?;
        stamps.get(at).map(|&(_, ns)| ns)
    };
    let mut totals: Vec<(String, u64, u64)> = Vec::new();
    let mut open: Vec<(String, u64)> = Vec::new();
    for (index, event) in log.events().iter().enumerate() {
        if !matches!(event.stamp, Stamp::Seq(_)) {
            continue;
        }
        match event.kind {
            TraceKind::Begin => {
                if let Some(ns) = ns_at(index as u64) {
                    open.push((event.phase.clone(), ns));
                }
            }
            TraceKind::End => {
                let Some(at) = open.iter().rposition(|(p, _)| *p == event.phase) else {
                    continue;
                };
                let (phase, began) = open.remove(at);
                let Some(ended) = ns_at(index as u64) else {
                    continue;
                };
                let spent = ended.saturating_sub(began);
                match totals.iter_mut().find(|(p, _, _)| *p == phase) {
                    Some((_, total, spans)) => {
                        *total += spent;
                        *spans += 1;
                    }
                    None => totals.push((phase, spent, 1)),
                }
            }
            TraceKind::Point => {}
        }
    }
    totals
}

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 100);
    let requests: usize = args.get_or("requests", 200);
    let clients_list: Vec<usize> = args.get_list_or("clients-list", &[1, 4]);
    let offered_qps_list: Vec<u64> = args.get_list_or("offered-qps-list", &[200, 1000]);
    let zipf_s: f64 = args.get_or("zipf-s", 1.1);
    let ttl: u32 = args.get_or("ttl", 50);
    let seed: u64 = args.get_or("seed", 2022);
    let observed_queries: usize = args.get_or("observed-queries", 32);

    let workbench = workbench_from_args(&args, docs + 50).expect("workbench builds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0073_6572_7669_6e67);
    // Document i hosts pairs[i].gold, so a mix over ranks 0..docs is a
    // mix over placed documents and `contains(rank)` is the hit test.
    // Hot ranks are low ranks.
    let pairs: Vec<gdsearch_embed::querygen::QueryGoldPair> = workbench
        .queries
        .pairs()
        .iter()
        .copied()
        .cycle()
        .take(docs)
        .collect();
    let words: Vec<gdsearch_embed::WordId> = pairs.iter().map(|p| p.gold).collect();
    let placement =
        Placement::uniform(&workbench.graph, &words, &mut rng).expect("placement fits graph");
    let scheme = SchemeConfig::builder()
        .ttl(ttl)
        .build()
        .expect("valid scheme config");
    let network = SearchNetwork::build(
        &workbench.graph,
        &workbench.corpus,
        &placement,
        &scheme,
        &mut rng,
    )
    .expect("scheme builds");

    // The determinism gate: refuse to report numbers from an engine that
    // does not reproduce the sequential walk bitwise.
    if let Err(message) =
        verify_engine_matches_sequential(&network, &scheme, &workbench.corpus, &pairs, docs)
    {
        eprintln!("ENGINE EQUIVALENCE FAILURE: {message}");
        std::process::exit(1);
    }
    println!("# engine ≡ sequential smoke check passed (cold, cached, batched)");

    println!(
        "# Ablation: serving latency — N = {} nodes, {} edges, M = {docs} documents, \
         closed-loop clients × {requests} requests + open-loop offered-load sweep, \
         mixes: zipf(s={zipf_s}) and uniform",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
    );

    let mixes = [
        ("hot".to_string(), Zipf::new(docs, zipf_s)),
        ("uniform".to_string(), Zipf::new(docs, 0.0)),
    ];
    let caches = [
        ("on", CacheCapacity::Bounded(256)),
        ("off", CacheCapacity::Disabled),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (name, mix) in &mixes {
        for &(cache_name, cache) in &caches {
            for &clients in &clients_list {
                // A fresh engine per cell keeps cache state and counters
                // attributable to the cell.
                let engine =
                    QueryEngine::from_network(network.clone(), engine_config(&scheme, cache));
                cells.push(closed_loop_cell(
                    &engine,
                    &workbench.corpus,
                    &pairs,
                    name,
                    mix,
                    cache_name,
                    clients,
                    requests,
                    seed,
                ));
            }
        }
    }

    // Open loop: hot mix, cache on, sweeping the offered rate.
    for &offered in &offered_qps_list {
        let engine = QueryEngine::from_network(
            network.clone(),
            engine_config(&scheme, CacheCapacity::Bounded(256)),
        );
        cells.push(open_loop_cell(
            &engine,
            &workbench.corpus,
            &pairs,
            "hot",
            &Zipf::new(docs, zipf_s),
            "on",
            offered as f64,
            requests,
            seed,
        ));
    }

    // The serving claim itself: the hot mix with the cache on must
    // actually hit the cache.
    let hot_cached_hits: u64 = cells
        .iter()
        .filter(|c| c.mix == "hot" && c.cache == "on")
        .map(|c| c.cache_hits)
        .sum();
    if hot_cached_hits == 0 {
        eprintln!("SERVING CACHE FAILURE: hot Zipf mix with the cache on recorded zero hits");
        std::process::exit(1);
    }

    println!("\n## End-to-end latency\n");
    println!(
        "| mode | mix | cache | clients | offered qps | queries | rejected | p50 µs | p99 µs | \
         p999 µs | qps | hit rate | cache hit rate |"
    );
    println!("|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for c in &cells {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.0} | {:.2} | {:.2} |",
            c.mode,
            c.mix,
            c.cache,
            c.clients,
            c.offered_qps.map_or("-".to_string(), |q| format!("{q:.0}")),
            c.queries,
            c.rejected,
            c.latency_ns.quantile(0.5) as f64 / 1e3,
            c.latency_ns.quantile(0.99) as f64 / 1e3,
            c.latency_ns.quantile(0.999) as f64 / 1e3,
            c.qps(),
            c.hit_rate(),
            c.cache_hit_rate(),
        );
    }

    // Sequential observed pass: flight recorder + wall annotation gives
    // the per-phase breakdown and the exportable trace. Queries route
    // through the engine's observed path, so `engine.cache` spans and
    // hit/miss counters land in the registry alongside the walk's.
    let mut registry = MetricsRegistry::new();
    let mut profiler = Profiler::new();
    let mut log = TraceLog::new();
    let mut wall = WallStamper::new();
    {
        let mut obs = Observer::new(Some(&mut registry), Some(&mut profiler))
            .with_trace(&mut log)
            .with_wall(&mut wall);
        let observed = QueryEngine::build_observed(
            &workbench.graph,
            &workbench.corpus,
            &placement,
            engine_config(&scheme, CacheCapacity::Bounded(256)),
            &mut rng,
            &mut obs,
        )
        .expect("observed build succeeds");
        let mix = Zipf::new(docs, zipf_s);
        for _ in 0..observed_queries {
            let rank = mix.sample(&mut rng);
            let pair = pairs[rank];
            let start = NodeId::new(rng.random_range(0..workbench.graph.num_nodes() as u32));
            let walk_seed: u64 = rng.random();
            observed
                .execute_observed(
                    QueryRequest::new(
                        workbench.corpus.embedding(pair.query).clone(),
                        start,
                        walk_seed,
                    ),
                    &mut obs,
                )
                .expect("observed query succeeds");
        }
    }
    let phases = phase_breakdown(&log, &wall);
    println!("\n## Per-phase breakdown (sequential observed pass, from the trace)\n");
    println!("| phase | spans | total ms |");
    println!("|---|---:|---:|");
    for (phase, total_ns, spans) in &phases {
        println!("| {phase} | {spans} | {:.3} |", *total_ns as f64 / 1e6);
    }

    if let Some(path) = args.get("trace") {
        let text = chrome_trace_json(&log, Some(wall.stamps()));
        match std::fs::write(path, &text) {
            Ok(()) => println!("\ntrace written to {path} (load in chrome://tracing)"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut bench = BenchReport::new("ablation_serving");
    bench
        .meta("seed", seed)
        .meta("nodes", workbench.graph.num_nodes())
        .meta("docs", docs)
        .meta("requests", requests)
        .meta("zipf_s", zipf_s)
        .meta("ttl", ttl);
    for c in &cells {
        let mut row = BenchRow::new()
            .label("mode", c.mode)
            .label("mix", &c.mix)
            .label("cache", c.cache)
            .label("clients", c.clients);
        if let Some(offered) = c.offered_qps {
            // A label, not a value: bench_diff pairs rows by label set, and
            // the open-loop sweep differs only in the offered rate.
            row = row.label("offered_qps", format!("{offered:.0}"));
        }
        row = row
            .value("queries", c.queries as f64)
            .value("rejected", c.rejected as f64)
            .value("p50_latency_us", c.latency_ns.quantile(0.5) as f64 / 1e3)
            .value("p99_latency_us", c.latency_ns.quantile(0.99) as f64 / 1e3)
            .value("p999_latency_us", c.latency_ns.quantile(0.999) as f64 / 1e3)
            .value("qps", c.qps())
            .value("hit_rate", c.hit_rate())
            .value("cache_hit_rate", c.cache_hit_rate());
        bench.push_row(row);
    }
    for (phase, total_ns, spans) in &phases {
        bench.push_row(
            BenchRow::new()
                .label("mix", "observed")
                .label("phase", phase)
                .value("spans", *spans as f64)
                .value("wall_ms", *total_ns as f64 / 1e6),
        );
    }
    bench.attach_metrics(registry);
    bench.attach_spans(profiler.tree());
    maybe_write_json(&args, "BENCH_serving.json", &bench);
}
