//! **Ablation B — forwarding policies.** Compares the paper's PPR-guided
//! greedy walk against the blind baselines its related-work section
//! discusses (uniform random walk, flooding) and two common heuristics
//! (degree-biased, ε-greedy hybrid), at equal TTL, on success rate and
//! message cost.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_policies -- \
//!     --docs 100 --iterations 30 --queries 10 --ttl 50 --flood-ttl 3
//! ```
//!
//! Flooding gets its own (much smaller) TTL: at TTL 50 it would visit the
//! entire graph and trivially win on accuracy while losing by orders of
//! magnitude on bandwidth — exactly the trade-off the paper motivates.

use gdsearch::{Placement, PolicyKind, SchemeConfig};
use gdsearch_bench::{maybe_write_json, sweep_row, uniform_query_sweep, workbench_from_args, Args};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 100);
    let iterations: usize = args.get_or("iterations", 30);
    let queries: usize = args.get_or("queries", 10);
    let ttl: u32 = args.get_or("ttl", 50);
    let flood_ttl: u32 = args.get_or("flood-ttl", 3);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let seed: u64 = args.get_or("seed", 2022);

    let workbench = match workbench_from_args(&args, docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Ablation: forwarding policies — M = {docs}, ttl = {ttl} (flooding: {flood_ttl}), alpha = {alpha}"
    );
    println!("| policy | success rate | mean messages / query | mean hops to gold |");
    println!("|---|---|---|---|");
    let mut report = BenchReport::new("ablation_policies");
    report
        .meta("seed", seed)
        .meta("docs", docs)
        .meta("iterations", iterations)
        .meta("queries", queries)
        .meta("ttl", ttl)
        .meta("flood_ttl", flood_ttl)
        .meta("alpha", alpha);

    let policies: Vec<(&str, PolicyKind, u32)> = vec![
        ("ppr-greedy (paper)", PolicyKind::PprGreedy, ttl),
        ("random walk", PolicyKind::RandomWalk, ttl),
        ("degree-biased", PolicyKind::DegreeBiased, ttl),
        ("hybrid ε=0.2", PolicyKind::Hybrid { epsilon: 0.2 }, ttl),
        ("flooding", PolicyKind::Flooding, flood_ttl),
    ];
    for (name, policy, policy_ttl) in policies {
        let config = SchemeConfig::builder()
            .alpha(alpha)
            .policy(policy)
            .ttl(policy_ttl)
            .build()
            .expect("valid configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = uniform_query_sweep(
            &workbench,
            &config,
            docs,
            iterations,
            queries,
            &mut rng,
            |wb, words, r| Placement::uniform(&wb.graph, words, r),
        )
        .unwrap_or_else(|e| {
            eprintln!("policy {name} failed: {e}");
            std::process::exit(1);
        });
        println!(
            "| {name} | {:.3} ({}/{}) | {:.1} | {} |",
            outcome.success_rate(),
            outcome.successes,
            outcome.samples,
            outcome.mean_messages(),
            outcome
                .mean_success_hops()
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| "–".into()),
        );
        report.push_row(sweep_row(
            BenchRow::new()
                .label("policy", name)
                .value("ttl", f64::from(policy_ttl)),
            &outcome,
        ));
    }
    maybe_write_json(&args, "BENCH_policies.json", &report);
}
