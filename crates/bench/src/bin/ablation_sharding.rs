//! **Ablation S — graph sharding.** Partitions large graphs by node range
//! ([`gdsearch_graph::ShardedGraph`]) and measures what the sharded
//! diffusion engines deliver: per-shard adjacency memory versus the ideal
//! `total / shards` split (plus the halo overhead that pays for it),
//! wall-clock of the sharded power sweep and sharded push, and a bitwise
//! check that every shard count produces identical scores.
//!
//! The default workload is the ROADMAP's 10⁶-node target on both a
//! Barabási–Albert graph (hub-heavy, large halos) and a ring (the
//! best-case partition: two cut edges per shard):
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_sharding -- \
//!     --nodes 1000000 --dim 8 --shards 1,2,4,8 --threads 4 \
//!     --alpha 0.5 --tolerance 1e-5
//! ```
//!
//! The process exits nonzero if any shard's adjacency memory exceeds
//! `total_csr_bytes / shards + halo_bytes` or any sharded result drifts
//! from the unsharded reference — so CI can run it as a smoke test.

use gdsearch_bench::{maybe_write_json, timed, Args};
use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{power, PprConfig, Signal};
use gdsearch_graph::{generators, Graph, NodeId, ShardedGraph};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kb(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

#[allow(clippy::too_many_lines)]
fn run_family(name: &str, graph: &Graph, args: &Args, report: &mut BenchReport) -> bool {
    let dim: usize = args.get_or("dim", 8);
    let shard_counts: Vec<usize> = args.get_list_or("shards", &[1usize, 2, 4, 8]);
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let alpha: f32 = args.get_or("alpha", 0.5);
    let tolerance: f32 = args.get_or("tolerance", 1e-5);
    let n = graph.num_nodes();
    let ppr = PprConfig::new(alpha)
        .expect("valid alpha")
        .with_tolerance(tolerance)
        .expect("valid tolerance");

    println!(
        "\n## {name}: N = {n}, E = {} (mean degree {:.1})",
        graph.num_edges(),
        graph.mean_degree()
    );

    // A mid-range source: its diffusion crosses shard boundaries in both
    // directions whatever the partition.
    let source = NodeId::new((n as u32 / 2).max(1) - 1);

    // The byte-balanced partitioner guarantees per-shard adjacency within
    // total/S plus one unsplittable row (and the sentinel offsets entry);
    // the memory check allows exactly that documented slack on top of the
    // halo overhead.
    let max_degree = (0..n as u32)
        .map(|u| graph.degree(NodeId::new(u)))
        .max()
        .unwrap_or(0);
    let row_slack = 2 * std::mem::size_of::<usize>() + 4 * max_degree;

    // Unsharded references.
    let mut e0 = Signal::zeros(n, dim);
    for d in 0..dim {
        e0.row_mut(source.index())[d] = 1.0 + d as f32 * 0.25;
    }
    let (dense_ms, dense_ref) =
        timed(|| power::diffuse(graph, &e0, &ppr).expect("dense diffusion"));
    let single_shard = ShardedGraph::from_graph(graph, 1).expect("single shard");
    let total_bytes = single_shard.shard(0).adjacency_bytes();
    println!(
        "total CSR: {:.0} KB; unsharded dense sweep: {dense_ms:.0} ms \
         ({} iterations); unsplittable-row slack: {row_slack} B",
        kb(total_bytes),
        dense_ref.iterations
    );
    println!();
    println!(
        "| shards | max shard adj KB | ideal KB (total/S) | max halo KB | \
         cut entries | mem ok | power ms | push ms | bitwise |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");

    let mut all_ok = true;
    let mut push_ref: Option<Vec<f32>> = None;
    for &shards in &shard_counts {
        let sharded_graph = ShardedGraph::from_graph(graph, shards).expect("partition");
        let actual_shards = sharded_graph.num_shards();
        let ideal = total_bytes / actual_shards;
        let mut mem_ok = true;
        let mut max_adj = 0usize;
        let mut max_halo = 0usize;
        let mut cut = 0usize;
        for shard in sharded_graph.shards() {
            max_adj = max_adj.max(shard.adjacency_bytes());
            max_halo = max_halo.max(shard.halo_bytes());
            cut += shard.cut_entries();
            if shard.adjacency_bytes() > ideal + shard.halo_bytes() + row_slack {
                mem_ok = false;
            }
        }
        let scfg = ShardedConfig::new(ppr)
            .with_shards(shards)
            .expect("valid shards")
            .with_threads(threads)
            .expect("valid threads");
        let (power_ms, power_out) = timed(|| {
            sharded::diffuse_partitioned(&sharded_graph, &e0, &scfg).expect("sharded power")
        });
        let (push_ms, push_out) = timed(|| {
            sharded::ppr_vector_partitioned(&sharded_graph, source, &scfg).expect("sharded push")
        });
        let power_bitwise = power_out.signal.as_slice() == dense_ref.signal.as_slice();
        let push_bitwise = match &push_ref {
            Some(reference) => &push_out == reference,
            None => {
                push_ref = Some(push_out);
                true
            }
        };
        let bitwise = power_bitwise && push_bitwise;
        all_ok &= mem_ok && bitwise;
        println!(
            "| {actual_shards} | {:.0} | {:.0} | {:.0} | {cut} | {} | {power_ms:.0} | \
             {push_ms:.0} | {} |",
            kb(max_adj),
            kb(ideal),
            kb(max_halo),
            if mem_ok { "yes" } else { "NO" },
            if bitwise { "yes" } else { "NO" },
        );
        report.push_row(
            BenchRow::new()
                .label("family", name)
                .value("shards", actual_shards as f64)
                .value("max_adj_bytes", max_adj as f64)
                .value("ideal_bytes", ideal as f64)
                .value("max_halo_bytes", max_halo as f64)
                .value("cut_entries", cut as f64)
                .value("power_ms", power_ms)
                .value("push_ms", push_ms)
                .value("mem_ok", f64::from(u8::from(mem_ok)))
                .value("bitwise_identical", f64::from(u8::from(bitwise))),
        );
    }
    all_ok
}

fn main() {
    let args = Args::from_env();
    let nodes: u32 = args.get_or("nodes", 1_000_000);
    let seed: u64 = args.get_or("seed", 2022);
    let family = args.get("family").unwrap_or("both").to_string();

    println!("# Ablation: graph sharding — diffusion on partitioned state");
    let mut report = BenchReport::new("ablation_sharding");
    report
        .meta("seed", seed)
        .meta("nodes", nodes)
        .meta("family", &family);

    let mut ok = true;
    if family == "both" || family == "ba" {
        let mut rng = StdRng::seed_from_u64(seed);
        let (gen_ms, graph) =
            timed(|| generators::barabasi_albert(nodes, 5, &mut rng).expect("valid BA parameters"));
        println!("\n(BA generation: {gen_ms:.0} ms)");
        ok &= run_family("Barabási–Albert m=5", &graph, &args, &mut report);
    }
    if family == "both" || family == "ring" {
        let graph = generators::ring(nodes).expect("valid ring size");
        ok &= run_family("ring", &graph, &args, &mut report);
    }
    maybe_write_json(&args, "BENCH_sharding.json", &report);
    if !ok {
        eprintln!("sharding ablation FAILED: memory bound or bitwise check violated");
        std::process::exit(1);
    }
    println!("\nAll shard counts met the memory bound and produced identical scores.");
}
