//! **Ablation A — personalization aggregation.** The paper's §VI calls
//! "more sophisticated aggregation methods" its current line of research;
//! this binary compares the paper's sum against mean, L2-normalized and
//! degree-scaled aggregation on the standard uniform-query protocol.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_aggregation -- \
//!     --docs 1000 --iterations 30 --queries 10
//! ```

use gdsearch::{Aggregation, Placement, SchemeConfig};
use gdsearch_bench::{maybe_write_json, sweep_row, uniform_query_sweep, workbench_from_args, Args};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 1000);
    let iterations: usize = args.get_or("iterations", 30);
    let queries: usize = args.get_or("queries", 10);
    let ttl: u32 = args.get_or("ttl", 50);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let seed: u64 = args.get_or("seed", 2022);

    let workbench = match workbench_from_args(&args, docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!("# Ablation: personalization aggregation — M = {docs}, alpha = {alpha}, ttl = {ttl}");
    println!("| aggregation | success rate | mean hops to gold |");
    println!("|---|---|---|");
    let mut report = BenchReport::new("ablation_aggregation");
    report
        .meta("seed", seed)
        .meta("docs", docs)
        .meta("iterations", iterations)
        .meta("queries", queries)
        .meta("ttl", ttl)
        .meta("alpha", alpha);

    for (name, aggregation) in [
        ("sum (paper)", Aggregation::Sum),
        ("mean", Aggregation::Mean),
        ("l2-normalized", Aggregation::L2Normalized),
        ("degree-scaled", Aggregation::DegreeScaled),
    ] {
        let config = SchemeConfig::builder()
            .alpha(alpha)
            .ttl(ttl)
            .aggregation(aggregation)
            .build()
            .expect("valid configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = uniform_query_sweep(
            &workbench,
            &config,
            docs,
            iterations,
            queries,
            &mut rng,
            |wb, words, r| Placement::uniform(&wb.graph, words, r),
        )
        .unwrap_or_else(|e| {
            eprintln!("aggregation {name} failed: {e}");
            std::process::exit(1);
        });
        println!(
            "| {name} | {:.3} ({}/{}) | {} |",
            outcome.success_rate(),
            outcome.successes,
            outcome.samples,
            outcome
                .mean_success_hops()
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| "–".into()),
        );
        report.push_row(sweep_row(
            BenchRow::new().label("aggregation", name),
            &outcome,
        ));
    }
    maybe_write_json(&args, "BENCH_aggregation.json", &report);
}
