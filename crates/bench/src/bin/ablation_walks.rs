//! **Ablation C — parallel walks.** The paper evaluates a single random
//! walk ("the most challenging case") and notes the scheme "can be easily
//! extended to parallel walks" (§V-B). This binary quantifies that
//! extension: success rate vs. message cost for fanout 1, 2 and 4.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_walks -- \
//!     --docs 100 --iterations 30 --queries 10 --fanouts 1,2,4
//! ```

use gdsearch::{Placement, SchemeConfig};
use gdsearch_bench::{maybe_write_json, sweep_row, uniform_query_sweep, workbench_from_args, Args};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 100);
    let iterations: usize = args.get_or("iterations", 30);
    let queries: usize = args.get_or("queries", 10);
    let fanouts: Vec<usize> = args.get_list_or("fanouts", &[1, 2, 4]);
    let ttl: u32 = args.get_or("ttl", 50);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let seed: u64 = args.get_or("seed", 2022);

    let workbench = match workbench_from_args(&args, docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!("# Ablation: parallel walks — M = {docs}, alpha = {alpha}, ttl = {ttl}");
    println!("| fanout | success rate | mean messages / query | mean hops to gold |");
    println!("|---|---|---|---|");
    let mut report = BenchReport::new("ablation_walks");
    report
        .meta("seed", seed)
        .meta("docs", docs)
        .meta("iterations", iterations)
        .meta("queries", queries)
        .meta("ttl", ttl)
        .meta("alpha", alpha);

    for fanout in fanouts {
        let config = SchemeConfig::builder()
            .alpha(alpha)
            .ttl(ttl)
            .fanout(fanout)
            .build()
            .expect("valid configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = uniform_query_sweep(
            &workbench,
            &config,
            docs,
            iterations,
            queries,
            &mut rng,
            |wb, words, r| Placement::uniform(&wb.graph, words, r),
        )
        .unwrap_or_else(|e| {
            eprintln!("fanout {fanout} failed: {e}");
            std::process::exit(1);
        });
        println!(
            "| {fanout} | {:.3} ({}/{}) | {:.1} | {} |",
            outcome.success_rate(),
            outcome.successes,
            outcome.samples,
            outcome.mean_messages(),
            outcome
                .mean_success_hops()
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| "–".into()),
        );
        report.push_row(sweep_row(BenchRow::new().label("fanout", fanout), &outcome));
    }
    maybe_write_json(&args, "BENCH_walks.json", &report);
}
