//! Reproduces **Table I** of the paper: success rate and hop-count
//! statistics of successful walks, at `α = 0.5`, across document counts.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin table1
//! cargo run -p gdsearch-bench --release --bin table1 -- \
//!     --iterations 500 --queries 10 --docs 10,100,1000,10000 \
//!     --csv target/table1.csv
//! ```
//!
//! The paper uses 500 iterations × 10 queries = 5,000 samples per row;
//! the default here is 100 × 10 = 1,000 samples so the table regenerates
//! in minutes — pass `--iterations 500` for the full protocol.

// Harness code: wall-clock timing is progress reporting, not a result.
#![allow(clippy::disallowed_methods)]

use gdsearch::experiment::{hops, report};
use gdsearch::SchemeConfig;
use gdsearch_bench::{maybe_write_csv, workbench_from_args, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let doc_counts: Vec<usize> = args.get_list_or("docs", &[10, 100, 1000, 10_000]);
    let iterations: usize = args.get_or("iterations", 100);
    let queries_per_iteration: usize = args.get_or("queries", 10);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let ttl: u32 = args.get_or("ttl", 50);
    let seed: u64 = args.get_or("seed", 2022);

    let max_docs = doc_counts.iter().copied().max().unwrap_or(10);
    let workbench = match workbench_from_args(&args, max_docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Table I reproduction — graph: {} nodes / {} edges, corpus: {} words ({}-d)",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
        workbench.corpus.len(),
        workbench.corpus.dim(),
    );
    println!(
        "# alpha = {alpha}, ttl = {ttl}, {iterations} iterations x {queries_per_iteration} queries, seed = {seed}\n"
    );

    let base = SchemeConfig::builder()
        .alpha(alpha)
        .ttl(ttl)
        .build()
        .expect("alpha/ttl flags must be valid");
    let mut rows = Vec::new();
    for (i, &docs) in doc_counts.iter().enumerate() {
        let cfg = hops::HopCountConfig {
            total_docs: docs,
            iterations,
            queries_per_iteration,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let started = std::time::Instant::now();
        match hops::run(&workbench, &cfg, &base, &mut rng) {
            Ok(row) => {
                eprintln!(
                    "M = {docs}: {}/{} successes in {:.1}s",
                    row.successes,
                    row.samples,
                    started.elapsed().as_secs_f64()
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("row M = {docs} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{}", report::hops_markdown(&rows));
    maybe_write_csv(&args, &report::hops_csv(&rows));
}
