//! **Ablation E — diffusion engines.** Compares dense power iteration,
//! per-source decomposition, the forward-push residual engine and the
//! sharded engines over an `engine × N × alpha` grid on the same
//! workloads: wall-clock, deterministic work counters (sweeps, pushes,
//! frontier peaks — recorded through `gdsearch-obs`), and max-abs
//! deviation from a tight-tolerance reference. This is the measurement
//! behind the `DiffusionEngine::Auto` crossover model and the
//! `BENCH_engines.json` perf-trajectory artifact CI tracks.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_engines -- \
//!     --nodes-list 1000,10000 --alphas 0.2,0.5 --dim 8 --sources 4 \
//!     --tolerance 1e-5 --threads 4 --repeats 3 --json BENCH_engines.json
//! ```

// Harness code: wall-clock timing is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use gdsearch_bench::{maybe_write_json, Args};
use gdsearch_diffusion::push::{self, PushConfig};
use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{per_source, power, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, Graph, NodeId};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use gdsearch_obs::{MetricValue, MetricsRegistry, Sink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` `repeats` times and returns (best wall-clock in ms, last output).
fn timed<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one repeat"))
}

fn print_row(name: &str, ms: f64, baseline_ms: f64, err: f32, extra: &str) {
    println!(
        "| {name} | {ms:.2} | {:.2}x | {err:.2e} | {extra} |",
        baseline_ms / ms
    );
}

/// Reads a counter back out of a registry (0 when absent).
fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    match reg.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        _ => 0,
    }
}

/// Knobs shared by every grid cell.
struct Cell {
    nodes: u32,
    alpha: f32,
    dim: usize,
    num_sources: usize,
    tolerance: f32,
    threads: usize,
    repeats: usize,
    seed: u64,
}

impl Cell {
    /// Starts a report row carrying this cell's grid coordinates.
    fn row(&self, workload: &str, engine: &str) -> BenchRow {
        BenchRow::new()
            .label("workload", workload)
            .label("engine", engine)
            .label("nodes", self.nodes)
            .label("alpha", self.alpha)
    }
}

/// Runs both workloads for one `(nodes, alpha)` grid cell, printing the
/// markdown tables and appending `gdsearch.bench.v1` rows.
#[allow(clippy::too_many_lines)]
fn run_cell(cell: &Cell, report: &mut BenchReport) {
    let mut rng = StdRng::seed_from_u64(cell.seed);
    let graph: Graph =
        generators::barabasi_albert(cell.nodes, 5, &mut rng).expect("valid generator parameters");
    let cfg = PprConfig::new(cell.alpha)
        .unwrap()
        .with_tolerance(cell.tolerance)
        .unwrap();
    // Reference at 100× tighter tolerance: deviations below `tolerance`
    // from it certify engine interchangeability.
    let tight = cfg
        .with_tolerance((cell.tolerance * 1e-2).max(1e-7))
        .unwrap();
    let (nodes, dim, num_sources, threads, repeats) = (
        cell.nodes,
        cell.dim,
        cell.num_sources,
        cell.threads,
        cell.repeats,
    );
    println!(
        "\n# Engines — N = {nodes} (Barabási–Albert m=5, {} edges), \
         alpha = {}, tolerance = {:.0e}",
        graph.num_edges(),
        cell.alpha,
        cell.tolerance
    );

    // ---- Workload A: single-source PPR column --------------------------
    let source = NodeId::new(17);
    let reference = per_source::ppr_vector(&graph, source, &tight).unwrap();
    let max_err = |h: &[f32]| -> f32 {
        h.iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    };
    println!("\n## Single-source column (source = {source})");
    println!("| engine | best ms | vs power | max err | work |");
    println!("|---|---|---|---|---|");
    let mut e0 = Signal::zeros(nodes as usize, 1);
    e0.row_mut(source.index())[0] = 1.0;
    let (power_ms, (power_out, power_reg)) = timed(repeats, || {
        let mut reg = MetricsRegistry::new();
        let out =
            power::diffuse_threaded_observed(&graph, &e0, &cfg, 1, &mut Sink::attached(&mut reg))
                .unwrap();
        (out, reg)
    });
    let power_col: Vec<f32> = (0..nodes as usize)
        .map(|u| power_out.signal.row(u)[0])
        .collect();
    print_row(
        "power (dense)",
        power_ms,
        power_ms,
        max_err(&power_col),
        &format!("{} sweeps", power_out.iterations),
    );
    report.push_row(
        cell.row("single-source", "power")
            .value("wall_ms", power_ms)
            .value("max_err", f64::from(max_err(&power_col)))
            .value(
                "sweeps",
                counter(&power_reg, "diffusion.power.sweeps") as f64,
            )
            .value("residual", f64::from(power_out.residual)),
    );
    let (scalar_ms, scalar_out) = timed(repeats, || {
        per_source::ppr_vector(&graph, source, &cfg).unwrap()
    });
    print_row(
        "per-source (scalar sweeps)",
        scalar_ms,
        power_ms,
        max_err(&scalar_out),
        "-",
    );
    report.push_row(
        cell.row("single-source", "per-source")
            .value("wall_ms", scalar_ms)
            .value("max_err", f64::from(max_err(&scalar_out))),
    );
    let push_cfg = PushConfig::new(cfg);
    let (push_ms, push_out) = timed(repeats, || {
        push::ppr_vector_detailed(&graph, source, &push_cfg).unwrap()
    });
    print_row(
        "push (forward residual)",
        push_ms,
        power_ms,
        max_err(&push_out.values),
        &format!(
            "{} pushes, {} drains, bound {:.1e}",
            push_out.pushes, push_out.drains, push_out.residual_bound
        ),
    );
    report.push_row(
        cell.row("single-source", "push")
            .value("wall_ms", push_ms)
            .value("max_err", f64::from(max_err(&push_out.values)))
            .value("pushes", push_out.pushes as f64)
            .value("drains", push_out.drains as f64)
            .value("residual", f64::from(push_out.residual_bound)),
    );

    // ---- Workload B: sparse multi-source batch -------------------------
    let sources: Vec<(NodeId, Embedding)> = (0..num_sources)
        .map(|_| {
            (
                NodeId::new(rng.random_range(0..nodes)),
                Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
            )
        })
        .collect();
    let batch_reference = per_source::diffuse_sparse(&graph, dim, &sources, &tight).unwrap();
    println!(
        "\n## Batch: {num_sources} sources × dim {dim} (the paper's sparse-personalization shape)"
    );
    println!("| engine | best ms | vs power | max err | work |");
    println!("|---|---|---|---|---|");
    let e0 = Signal::from_sparse_rows(nodes as usize, dim, &sources).unwrap();
    let (bpower_ms, (bpower_out, bpower_reg)) = timed(repeats, || {
        let mut reg = MetricsRegistry::new();
        let out =
            power::diffuse_threaded_observed(&graph, &e0, &cfg, 1, &mut Sink::attached(&mut reg))
                .unwrap();
        (out, reg)
    });
    print_row(
        "power (dense)",
        bpower_ms,
        bpower_ms,
        bpower_out.signal.max_abs_diff(&batch_reference).unwrap(),
        &format!("{} sweeps", bpower_out.iterations),
    );
    report.push_row(
        cell.row("batch", "power")
            .value("wall_ms", bpower_ms)
            .value(
                "max_err",
                f64::from(bpower_out.signal.max_abs_diff(&batch_reference).unwrap()),
            )
            .value(
                "sweeps",
                counter(&bpower_reg, "diffusion.power.sweeps") as f64,
            )
            .value("residual", f64::from(bpower_out.residual)),
    );
    let (bpowern_ms, bpowern_out) = timed(repeats, || {
        power::diffuse_threaded(&graph, &e0, &cfg, threads).unwrap()
    });
    print_row(
        &format!("power ×{threads} threads"),
        bpowern_ms,
        bpower_ms,
        bpowern_out.signal.max_abs_diff(&batch_reference).unwrap(),
        &format!(
            "identical to ×1: {}",
            if bpowern_out.signal == bpower_out.signal {
                "yes"
            } else {
                "NO"
            }
        ),
    );
    report.push_row(
        cell.row("batch", "power-threaded")
            .value("wall_ms", bpowern_ms)
            .value(
                "max_err",
                f64::from(bpowern_out.signal.max_abs_diff(&batch_reference).unwrap()),
            )
            .value(
                "bitwise_identical",
                f64::from(u8::from(bpowern_out.signal == bpower_out.signal)),
            )
            .value("residual", f64::from(bpowern_out.residual)),
    );
    let (bscalar_ms, bscalar_out) = timed(repeats, || {
        per_source::diffuse_sparse(&graph, dim, &sources, &cfg).unwrap()
    });
    print_row(
        "per-source (scalar sweeps)",
        bscalar_ms,
        bpower_ms,
        bscalar_out.max_abs_diff(&batch_reference).unwrap(),
        "-",
    );
    report.push_row(
        cell.row("batch", "per-source")
            .value("wall_ms", bscalar_ms)
            .value(
                "max_err",
                f64::from(bscalar_out.max_abs_diff(&batch_reference).unwrap()),
            ),
    );
    let (bpush1_ms, (bpush1_out, bpush1_reg)) = timed(repeats, || {
        let mut reg = MetricsRegistry::new();
        let out = push::diffuse_sparse_observed(
            &graph,
            dim,
            &sources,
            &push_cfg,
            &mut Sink::attached(&mut reg),
        )
        .unwrap();
        (out, reg)
    });
    print_row(
        "push ×1 thread",
        bpush1_ms,
        bpower_ms,
        bpush1_out.max_abs_diff(&batch_reference).unwrap(),
        &format!("{} pushes", counter(&bpush1_reg, "diffusion.push.pushes")),
    );
    report.push_row(
        cell.row("batch", "push")
            .value("wall_ms", bpush1_ms)
            .value(
                "max_err",
                f64::from(bpush1_out.max_abs_diff(&batch_reference).unwrap()),
            )
            .value(
                "pushes",
                counter(&bpush1_reg, "diffusion.push.pushes") as f64,
            ),
    );
    let push_mt = push_cfg.with_threads(threads).unwrap();
    let (bpushn_ms, bpushn_out) = timed(repeats, || {
        push::diffuse_sparse(&graph, dim, &sources, &push_mt).unwrap()
    });
    print_row(
        &format!("push ×{threads} threads"),
        bpushn_ms,
        bpower_ms,
        bpushn_out.max_abs_diff(&batch_reference).unwrap(),
        &format!(
            "identical to ×1: {}",
            if bpushn_out == bpush1_out {
                "yes"
            } else {
                "NO"
            }
        ),
    );
    report.push_row(
        cell.row("batch", "push-threaded")
            .value("wall_ms", bpushn_ms)
            .value(
                "max_err",
                f64::from(bpushn_out.max_abs_diff(&batch_reference).unwrap()),
            )
            .value(
                "bitwise_identical",
                f64::from(u8::from(bpushn_out == bpush1_out)),
            ),
    );
    let scfg = ShardedConfig::new(cfg)
        .with_shards(4)
        .unwrap()
        .with_threads(threads)
        .unwrap();
    let (bshard_ms, (bshard_out, bshard_reg)) = timed(repeats, || {
        let mut reg = MetricsRegistry::new();
        let out = sharded::diffuse_sparse_observed(
            &graph,
            dim,
            &sources,
            &scfg,
            &mut Sink::attached(&mut reg),
        )
        .unwrap();
        (out, reg)
    });
    print_row(
        &format!("sharded push 4×{threads}"),
        bshard_ms,
        bpower_ms,
        bshard_out.max_abs_diff(&batch_reference).unwrap(),
        &format!(
            "{} pushes, {} halo B",
            counter(&bshard_reg, "diffusion.sharded.pushes"),
            counter(&bshard_reg, "graph.sharded.halo_bytes"),
        ),
    );
    report.push_row(
        cell.row("batch", "sharded")
            .value("wall_ms", bshard_ms)
            .value(
                "max_err",
                f64::from(bshard_out.max_abs_diff(&batch_reference).unwrap()),
            )
            .value(
                "pushes",
                counter(&bshard_reg, "diffusion.sharded.pushes") as f64,
            )
            .value(
                "halo_bytes",
                counter(&bshard_reg, "graph.sharded.halo_bytes") as f64,
            ),
    );
}

fn main() {
    let args = Args::from_env();
    let nodes_list: Vec<u32> = args.get_list_or("nodes-list", &[args.get_or("nodes", 10_000)]);
    let alphas: Vec<f32> = args.get_list_or("alphas", &[args.get_or("alpha", 0.5)]);
    let dim: usize = args.get_or("dim", 8);
    let num_sources: usize = args.get_or("sources", 4);
    let tolerance: f32 = args.get_or("tolerance", 1e-5);
    let threads: usize = args.get_or("threads", 4);
    let repeats: usize = args.get_or("repeats", 3);
    let seed: u64 = args.get_or("seed", 2022);

    let mut report = BenchReport::new("ablation_engines");
    report
        .meta("seed", seed)
        .meta("dim", dim)
        .meta("sources", num_sources)
        .meta("tolerance", tolerance)
        .meta("threads", threads)
        .meta("repeats", repeats)
        .meta("nodes_list", format!("{nodes_list:?}"))
        .meta("alphas", format!("{alphas:?}"));
    for &nodes in &nodes_list {
        for &alpha in &alphas {
            run_cell(
                &Cell {
                    nodes,
                    alpha,
                    dim,
                    num_sources,
                    tolerance,
                    threads,
                    repeats,
                    seed,
                },
                &mut report,
            );
        }
    }
    maybe_write_json(&args, "BENCH_engines.json", &report);
}
